#!/usr/bin/env python3
"""Scaling regression gate over BENCH_scaling.json.

Fails (exit 1) if shards=4 ever scales *worse* than shards=2 — for every
gated (mode, n_objects, threads) group, the shards=4
speedup_vs_1_shard must reach at least the shards=2 speedup minus a
small noise tolerance.

Which bench points are gated (DESIGN.md §15, "Reading
BENCH_scaling.json"):

- `sustained` rows: always. Steady-state ingest amortizes scheduling
  overhead, so more shards must never hurt, even on one core.
- `batch` rows: only legs that actually run the pipelined engine on
  hardware that can host it, i.e. 2 <= threads <= host cores. threads=1
  routes to the sequential fallback, where 4-way kNN probe work grows
  intrinsically and shards=4 legitimately trails shards=2 at small N;
  legs wider than the core count measure the scheduler, not the engine.

Everything else is printed as info so the artifact stays inspectable.

Usage: check_scaling.py [BENCH_scaling.json]
"""

import json
import os
import sys

# Runner-noise allowance on the speedup ratio: 4-shard must reach at
# least (1 - TOLERANCE) of the 2-shard speedup.
TOLERANCE = 0.05


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_scaling.json"
    with open(path) as f:
        rows = json.load(f)

    cores = os.cpu_count() or 1
    groups = {}
    for r in rows:
        key = (r["mode"], r["n_objects"], r["threads"])
        groups.setdefault(key, {})[r["shards"]] = r["speedup_vs_1_shard"]

    failures = []
    gated = 0
    for (mode, n, t), by_shards in sorted(groups.items()):
        if 2 not in by_shards or 4 not in by_shards:
            continue
        s2, s4 = by_shards[2], by_shards[4]
        if mode == "sustained":
            enforced, why = True, "gated"
        elif t < 2:
            enforced, why = False, "info only (sequential fallback leg)"
        elif t > cores:
            enforced, why = False, f"info only (threads={t} > {cores} cores)"
        else:
            enforced, why = True, "gated"
        verdict = "ok" if s4 >= s2 * (1.0 - TOLERANCE) else "REGRESSION"
        print(
            f"{mode:>9} n={n:<7} threads={t}: "
            f"shards=2 {s2:5.2f}x  shards=4 {s4:5.2f}x  [{verdict}, {why}]"
        )
        if enforced:
            gated += 1
            if verdict != "ok":
                failures.append((mode, n, t, s2, s4))

    if not gated:
        print("error: no bench point was gated — artifact empty or malformed")
        return 1
    if failures:
        print(f"\n{len(failures)} scaling regression(s): shards=4 fell below "
              f"shards=2 (tolerance {TOLERANCE:.0%})")
        return 1
    print(f"\nall {gated} gated bench points pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
