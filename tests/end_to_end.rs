//! Cross-crate integration tests through the `srb` facade: the full stack
//! (geometry → index → framework → mobility → simulator) wired together the
//! way a downstream user would.

use srb::core::{FnProvider, ObjectId, Quarantine, QuerySpec, Server, ServerConfig};
use srb::geom::{Point, Rect};
use srb::mobility::{MobilityConfig, Trajectory};
use srb::sim::{run_scheme, Scheme, SimConfig};

#[test]
fn trajectory_driven_monitoring_stays_exact() {
    // Drive the core server with real random-waypoint trajectories (no
    // simulator): the facade-level version of the protocol oracle.
    let n = 80;
    let mob = MobilityConfig { mean_speed: 0.02, mean_period: 0.5, ..Default::default() };
    let mut trajs: Vec<Trajectory> =
        (0..n).map(|i| Trajectory::random_waypoint(404, i as u64, mob, 0.0)).collect();

    let mut server = Server::new(ServerConfig::default());
    let mut snapshot: Vec<Point> = trajs.iter_mut().map(|t| t.position(0.0)).collect();
    {
        let ps = snapshot.clone();
        let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
        for (i, &pos) in snapshot.iter().enumerate() {
            server.add_object(ObjectId(i as u32), pos, &mut provider, 0.0).expect("fresh id");
        }
        server.register_query(
            QuerySpec::range(Rect::centered(Point::new(0.5, 0.5), 0.1, 0.1)),
            &mut provider,
            0.0,
        );
        server.register_query(QuerySpec::knn(Point::new(0.25, 0.75), 4), &mut provider, 0.0);
        server.register_query(
            QuerySpec::knn_unordered(Point::new(0.8, 0.2), 3),
            &mut provider,
            0.0,
        );
    }

    let steps = 400;
    for step in 1..=steps {
        let t = step as f64 * 0.01;
        for i in 0..n {
            snapshot[i] = trajs[i].position(t);
            let oid = ObjectId(i as u32);
            let sr = server.safe_region(oid).unwrap();
            if !sr.contains_point(snapshot[i]) {
                let ps = snapshot.clone();
                let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
                server
                    .handle_location_update(oid, snapshot[i], &mut provider, t)
                    .expect("registered object");
            }
        }
        if step % 50 == 0 {
            // Brute-force verification of all three queries.
            for qid in server.query_ids().collect::<Vec<_>>() {
                let got = server.results(qid).unwrap().to_vec();
                match server.quarantine(qid).unwrap() {
                    Quarantine::Rect(rect) => {
                        let want: Vec<ObjectId> = (0..n as u32)
                            .map(ObjectId)
                            .filter(|o| rect.contains_point(snapshot[o.index()]))
                            .collect();
                        let mut g = got.clone();
                        g.sort_unstable();
                        assert_eq!(g, want, "range mismatch at step {step}");
                    }
                    Quarantine::Circle(c) => {
                        // Every result must be within the quarantine circle.
                        for o in &got {
                            assert!(
                                c.contains(snapshot[o.index()]),
                                "result {o} escaped quarantine at step {step}"
                            );
                        }
                    }
                }
            }
            server.check_invariants();
        }
    }
    assert!(server.costs().source_updates > 0);
}

#[test]
fn simulator_matches_core_guarantee() {
    let cfg = SimConfig {
        n_objects: 200,
        n_queries: 10,
        duration: 3.0,
        min_reaction: 0.0,
        ..SimConfig::paper_defaults()
    };
    let m = run_scheme(Scheme::Srb, &cfg);
    assert_eq!(m.accuracy, 1.0, "facade SRB run must be exact: {m:?}");
    let o = run_scheme(Scheme::Opt, &cfg);
    assert!(o.comm_cost <= m.comm_cost);
}

#[test]
fn geometry_reexports_are_usable() {
    use srb::geom::{irlp_circle, Circle, OrdinaryPerimeter};
    let c = Circle::new(Point::new(0.5, 0.5), 0.2);
    let cell = Rect::centered(Point::new(0.5, 0.5), 0.3, 0.3);
    let r = irlp_circle(&c, Point::new(0.5, 0.5), &cell, &OrdinaryPerimeter).unwrap();
    assert!(c.contains_rect(&r));
}

#[test]
fn index_reexports_are_usable() {
    use srb::index::{RStarTree, TreeConfig};
    let mut t = RStarTree::new(TreeConfig::default());
    for i in 0..100u64 {
        t.insert(i, Rect::point(Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0)));
    }
    assert_eq!(t.nearest_iter(Point::new(0.0, 0.0)).next().unwrap().id, 0);
}
