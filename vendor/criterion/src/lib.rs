//! Offline subset of the `criterion` 0.5 API: `Criterion`,
//! `benchmark_group`, `bench_function`, `iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical engine it runs a bounded timing loop and prints a mean
//! ns/iter — enough to compare hot paths locally without a registry.

#![deny(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration batching mode for [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small setup outputs: batch many iterations per setup run.
    SmallInput,
    /// Large setup outputs: one setup per iteration.
    LargeInput,
    /// Setup output per iteration (alias of `LargeInput` in this subset).
    PerIteration,
}

/// Timing budget shared by all benchmarks in this subset.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self { total: Duration::ZERO, iters: 0 }
    }

    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup.
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_BUDGET {
            black_box(routine());
        }
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh inputs produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_BUDGET {
            black_box(routine(setup()));
        }
        let started = Instant::now();
        while started.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<40} (no iterations)");
            return;
        }
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        println!("bench {name:<40} {ns:>14.1} ns/iter  ({} iters)", self.iters);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the subset's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finish the group (no-op; groups report eagerly).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _parent: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(id);
        self
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
