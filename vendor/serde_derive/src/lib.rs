//! No-op `Serialize` / `Deserialize` derives. The vendored `serde` crate
//! blanket-implements both marker traits, so the derives only need to accept
//! the attribute grammar and emit nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
