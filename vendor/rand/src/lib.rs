//! Offline subset of the `rand` 0.8 API used by this workspace: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`rngs::StdRng`], and the
//! `Standard` distribution. Float generation follows rand 0.8's convention
//! (`(next_u64 >> 11) * 2^-53`), so sequences are reproducible.

#![deny(unsafe_code)]

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    //! The `Standard` distribution and the [`Distribution`] trait.

    use rand_core::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Sample a value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution (uniform floats in `[0, 1)`, uniform
    /// integers over the full range, fair bools).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // rand 0.8: 53 random mantissa bits scaled into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
}

use distributions::{Distribution, Standard};

mod range {
    use rand_core::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range usable with [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Sample a single value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end - self.start) as u64;
                    // Modulo sampling: bias is < 2^-32 for the workspace's
                    // small spans, acceptable for a vendored test shim.
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi - lo) as u64 + 1;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range!(usize, u64, u32, i64, i32);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    float_range!(f64, f32);
}

pub use range::SampleRange;

/// Extension trait providing convenient sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Standard generators.

    use rand_core::{RngCore, SeedableRng};

    /// The standard RNG: ChaCha with 12 rounds, as in rand 0.8.
    #[derive(Clone, Debug)]
    pub struct StdRng(rand_chacha::ChaCha12Rng);

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(rand_chacha::ChaCha12Rng::from_seed(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }
}
