//! Offline subset of `serde_json`: a [`Value`] tree, the [`json!`] macro for
//! flat literals, and JSON-escaped `Display` rendering. Covers the
//! machine-readable row emission this workspace does; it is not a general
//! serializer.

#![deny(unsafe_code)]

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; stored as `f64` (integers round-trip exactly to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
        write!(f, "\"")?;
        for c in s.chars() {
            match c {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        write!(f, "\"")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => Self::write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    Self::write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(v as f64) }
        }
    )*};
}
from_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Render a value as a JSON string (infallible in this subset).
pub fn to_string<T: Into<Value>>(value: T) -> Result<String, fmt::Error> {
    Ok(value.into().to_string())
}

/// Build a [`Value`] from a JSON-like literal. Supports `null`, scalars,
/// arrays of expressions, and flat objects with literal keys.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_flat_object() {
        let v = json!({ "figure": "E1", "x": 2.5, "uplinks": 42u64, "flag": true });
        assert_eq!(v.to_string(), r#"{"figure":"E1","x":2.5,"uplinks":42,"flag":true}"#);
    }

    #[test]
    fn escapes_strings() {
        let v = json!({ "msg": "a\"b\\c\n" });
        assert_eq!(v.to_string(), r#"{"msg":"a\"b\\c\n"}"#);
    }
}
