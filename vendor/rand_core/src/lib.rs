//! Offline, dependency-free subset of the `rand_core` 0.6 API.
//!
//! This workspace vendors the handful of trait definitions it relies on so
//! that builds never touch a registry. The algorithms that matter for
//! determinism (ChaCha, SplitMix64 seeding) follow the published upstream
//! semantics bit-for-bit; anything the workspace does not use is omitted.

#![deny(unsafe_code)]

/// The core of a random number generator: a source of random 32/64-bit words.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Seed type, typically `[u8; N]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a new instance seeded from a `u64`, expanding the state with
    /// SplitMix64 exactly as upstream `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion (identical to rand_core 0.6).
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Helpers mirroring `rand_core::impls` used by block-based generators.
pub mod impls {
    use super::RngCore;

    /// Implement `next_u64` from two `next_u32` calls, low word first.
    pub fn next_u64_via_u32<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        let lo = rng.next_u32() as u64;
        let hi = rng.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Implement `fill_bytes` from repeated `next_u32` calls (little-endian).
    pub fn fill_bytes_via_next<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&rng.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = rng.next_u32().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}
