//! Offline stand-in for the `rayon` API surface this workspace uses (see
//! `vendor/README.md`): structured fork–join parallelism built directly on
//! `std::thread::scope` instead of a work-stealing pool.
//!
//! Semantics match rayon where it matters to callers:
//!
//! - [`join`] runs both closures, in parallel when more than one thread is
//!   configured, and returns both results; panics propagate.
//! - [`scope`] spawns tasks that all complete before `scope` returns.
//! - [`current_num_threads`] reports the configured parallelism:
//!   `RAYON_NUM_THREADS` if set and positive, else
//!   `std::thread::available_parallelism()`.
//!
//! With one configured thread everything runs inline on the caller's
//! thread, so single-threaded executions are deterministic and
//! allocation-order-identical to a sequential program.

use std::num::NonZeroUsize;

/// The number of threads structured operations may use:
/// `RAYON_NUM_THREADS` if set to a positive integer, else the machine's
/// available parallelism (1 if unknown).
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
///
/// Like rayon's `join`, `a` runs on the current thread; `b` runs on a
/// scoped thread when more than one thread is configured. A panic in
/// either closure propagates to the caller after both have stopped.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A scope handle for spawning tasks that must finish before the scope
/// ends. Thin wrapper over [`std::thread::Scope`]; with one configured
/// thread, spawns run inline immediately.
pub struct Scope<'scope, 'env: 'scope> {
    inner: Option<&'scope std::thread::Scope<'scope, 'env>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task into the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        match self.inner {
            Some(s) => {
                let child = Scope { inner: Some(s) };
                s.spawn(move || f(&child));
            }
            None => f(self),
        }
    }
}

/// Creates a scope in which tasks can be spawned; returns when every
/// spawned task has completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    if current_num_threads() <= 1 {
        return f(&Scope { inner: None });
    }
    std::thread::scope(|s| f(&Scope { inner: Some(s) }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn scope_runs_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn join_mutates_disjoint_slices() {
        let mut v = vec![0u32; 64];
        let (left, right) = v.split_at_mut(32);
        join(|| left.iter_mut().for_each(|x| *x += 1), || right.iter_mut().for_each(|x| *x += 2));
        assert!(v[..32].iter().all(|&x| x == 1));
        assert!(v[32..].iter().all(|&x| x == 2));
    }
}
