//! Offline marker-trait subset of `serde`.
//!
//! The workspace only uses serde derives as annotations (the JSON it emits
//! goes through the vendored `serde_json::json!`, which is `Display`-based),
//! so `Serialize`/`Deserialize` are blanket-implemented marker traits and the
//! derive macros are accepted but generate nothing.

#![deny(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` with the owned-deserialization marker.
pub mod de {
    pub use super::DeserializeOwned;
}
