//! Offline subset of the `proptest` 1.x API.
//!
//! Implements the strategy combinators, macros, and runner surface this
//! workspace uses. Case generation is fully deterministic: every test derives
//! its RNG stream from a hash of its module path and name, so failures
//! reproduce exactly across runs and machines. Differences from upstream:
//! no shrinking (failures report the full generated input instead) and no
//! persistence of regression seeds.

#![deny(unsafe_code)]

pub mod test_runner {
    //! Deterministic runner: RNG, config, and case errors.

    /// Splitmix64-based RNG driving all strategy generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create a generator from a raw seed.
        pub fn new(seed: u64) -> Self {
            Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Fair coin flip.
        pub fn flip(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Runner configuration (subset of upstream's fields).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
        /// Total rejection budget (`prop_assume!`) per test.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        /// Config requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case's inputs were rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected input.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Run `body` on `config.cases` generated inputs. Panics on the first
    /// failing case, printing the generated input (no shrinking).
    pub fn execute<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, body: F)
    where
        S: crate::strategy::Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(test_name.as_bytes());
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut sequence = 0u64;
        while case < config.cases {
            let mut rng = TestRng::new(base ^ sequence.wrapping_mul(0xA076_1D64_78BD_642F));
            sequence += 1;
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            match body(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest {test_name}: exceeded {} rejected inputs",
                            config.max_global_rejects
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {test_name}: case #{case} failed: {msg}\n\
                         input: {shown}\n\
                         (deterministic: rerun reproduces this case)"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Strategies: value generators composable with `prop_map`.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among equally-weighted alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs alternatives");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // Include the upper endpoint with small probability so
                    // `..=` differs observably from `..`.
                    if rng.next_u64() % 4096 == 0 {
                        hi
                    } else {
                        lo + (rng.next_f64() as $t) * (hi - lo)
                    }
                }
            }
        )*};
    }
    float_strategy!(f64, f32);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`] (half-open).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy yielding `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from `values` (must be non-empty).
    pub fn select<T: Clone + std::fmt::Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty set");
        Select { values }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len())].clone()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some(inner)` three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod arbitrary {
    //! Canonical strategies per type (`any::<T>()`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generate one canonical value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// The canonical strategy for `A`.
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// Canonical strategy constructor, e.g. `any::<bool>()`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};

    /// Module-style access (`prop::collection::vec`, `prop::sample::select`).
    pub use crate as prop;
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(pat in
/// strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::execute(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                &strategy,
                |($($pat,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Compose named strategies: `prop_compose! { fn name()(x in s, ...) -> T { expr } }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($outer:tt)*)
        ($($pat:pat in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a proptest body; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
