//! Offline subset of `rand_chacha` 0.3: `ChaCha8Rng` / `ChaCha12Rng` /
//! `ChaCha20Rng` built on the real ChaCha keystream (RFC 8439 block function
//! with a 64-bit block counter, as upstream uses). Word output order matches
//! upstream: the keystream is consumed as little-endian `u32` words in block
//! order, and `next_u64` combines two consecutive words (low first).

#![deny(unsafe_code)]

pub use rand_core;
use rand_core::{impls, RngCore, SeedableRng};

#[derive(Clone, Debug)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (state[4..12]).
    key: [u32; 8],
    /// 64-bit block counter (state[12..14]).
    counter: u64,
    /// Stream / nonce words (state[14..16]).
    stream: [u32; 2],
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        Self { key, counter: 0, stream: [0, 0] }
    }

    /// Generate the next 16-word keystream block and advance the counter.
    fn block(&mut self) -> [u32; 16] {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream[0];
        state[15] = self.stream[1];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial.iter()) {
            *s = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        state
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
            buffer: [u32; 16],
            index: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                Self { core: ChaChaCore::from_seed(seed), buffer: [0; 16], index: 16 }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.buffer = self.core.block();
                    self.index = 0;
                }
                let w = self.buffer[self.index];
                self.index += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                impls::next_u64_via_u32(self)
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                impls::fill_bytes_via_next(self, dest)
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds (fast, simulation-grade).");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds (rand's StdRng core).");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds (full-strength).");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_rfc8439_block() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, counter 1,
        // nonce 00:00:00:09:00:00:00:4a:00:00:00:00.
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut core: ChaChaCore<20> = ChaChaCore::from_seed(seed);
        // rand_chacha packs a 64-bit counter in words 12..14; the RFC vector
        // uses counter=1 in word 12 and the nonce split across 13..16. Emulate
        // by setting counter low word via the 64-bit counter and the remaining
        // nonce words through `stream`.
        core.counter = 1 | ((0x0900_0000u64) << 32);
        core.stream = [0x4a00_0000, 0x0000_0000];
        let block = core.block();
        assert_eq!(block[0], 0xe4e7_f110);
        assert_eq!(block[15], 0x4e3c_50a2);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaCha8Rng::seed_from_u64(2005);
        let mut b = ChaCha8Rng::seed_from_u64(2005);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(2006);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
