//! # srb — Safe-Region-Based Monitoring of Continuous Spatial Queries
//!
//! A from-scratch Rust reproduction of Hu, Xu & Lee, *A Generic Framework
//! for Monitoring Continuous Spatial Queries over Moving Objects*
//! (SIGMOD 2005).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! - [`geom`] — geometry primitives and the Ir-lp safe-region math (§5);
//! - [`index`] — the R\*-tree object index with bottom-up updates (§3.2);
//! - [`core`] — the monitoring framework itself: [`core::Server`],
//!   queries, quarantine areas, safe regions, probes (§3–§6);
//! - [`mobility`] — random-waypoint trajectories and client logic (§7.1);
//! - [`sim`] — the discrete event-driven simulator and the SRB/OPT/PRD
//!   schemes of the paper's evaluation (§7);
//! - [`obs`] — the zero-overhead telemetry layer (counters, histograms,
//!   spans) wired through every layer above; compiled out entirely when
//!   the default `obs` cargo feature is disabled.
//!
//! ## Quickstart
//!
//! ```
//! use srb::core::{FnProvider, ObjectId, QuerySpec, Server};
//! use srb::geom::{Point, Rect};
//!
//! let positions = vec![Point::new(0.2, 0.2), Point::new(0.7, 0.7)];
//! let mut provider = FnProvider(|id: ObjectId| positions[id.index()]);
//! let mut server = Server::with_defaults();
//! for (i, &p) in positions.iter().enumerate() {
//!     server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).expect("fresh id");
//! }
//! let reg = server.register_query(
//!     QuerySpec::range(Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5))),
//!     &mut provider,
//!     0.0,
//! );
//! assert_eq!(reg.results, vec![ObjectId(0)]);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/srb-bench`
//! for the harness that regenerates every figure of the paper's §7.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use srb_core as core;
pub use srb_geom as geom;
pub use srb_index as index;
pub use srb_mobility as mobility;
pub use srb_obs as obs;
pub use srb_sim as sim;
