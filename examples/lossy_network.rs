//! Lossy network demo: what happens to safe-region monitoring when the
//! wireless channel starts eating messages — and how the hardened protocol
//! (sequence numbers, leases, client retransmission with exponential
//! backoff) recovers.
//!
//! Runs the same world three times:
//!
//! 1. ideal channel (the paper's assumption) — the reference figures;
//! 2. 10% loss with the fault handling *disabled* (no lease, no retries) —
//!    dropped exit reports silently corrupt results forever;
//! 3. 10% loss with leases + retries — accuracy recovers to within a few
//!    percent of the ideal run, paid for in extra uplinks and probes.
//!
//! ```bash
//! cargo run --release --example lossy_network
//! ```

use srb::mobility::RetryPolicy;
use srb::sim::{run_scheme, ChannelConfig, RunMetrics, Scheme, SimConfig};

fn report(label: &str, m: &RunMetrics) {
    println!(
        "{label:<28} accuracy={:>7.4}  comm={:>9.3}  sent={:>6}  delivered={:>6}",
        m.accuracy, m.comm_cost, m.uplinks_sent, m.uplinks
    );
    println!(
        "{:<28} drops={}  retransmissions={}  stale-seq drops={}  lease probes={}  regrants={}",
        "", m.channel_drops, m.retransmissions, m.stale_seq_drops, m.lease_probes, m.regrants
    );
}

fn main() {
    let ideal =
        SimConfig { n_objects: 1_000, n_queries: 20, duration: 6.0, ..SimConfig::paper_defaults() };
    println!(
        "world: N={} objects, W={} queries, {} time units, seed {}\n",
        ideal.n_objects, ideal.n_queries, ideal.duration, ideal.seed
    );

    // 1. The paper's reliable channel.
    let m = run_scheme(Scheme::Srb, &ideal);
    report("ideal channel", &m);

    // 2. Pull the rug: 10% of all messages (uplink exit reports *and*
    //    downlink safe-region grants) vanish. No recovery machinery: a
    //    client whose report is lost retries, but without a lease the
    //    server never second-guesses a silent client, and a client whose
    //    grant is lost at registration... stays silent.
    let lossy = SimConfig { channel: ChannelConfig::lossy(0.10), ..ideal };
    let m = run_scheme(Scheme::Srb, &lossy);
    report("10% loss, retries only", &m);

    // 3. Full hardening: 1-time-unit leases make the server probe any
    //    client it has not heard from, repairing results the lost reports
    //    corrupted; retries with exponential backoff recover most lost
    //    uplinks much sooner than the lease can.
    let hardened = SimConfig {
        lease: Some(1.0),
        retry: RetryPolicy { timeout: 0.1, max_retries: 6 },
        ..lossy
    };
    let m = run_scheme(Scheme::Srb, &hardened);
    report("10% loss, lease + retries", &m);

    println!(
        "\nThe hardened run buys its accuracy back with retransmissions and lease\n\
         probes. With the paper's defaults (ideal channel, no lease) the fault path\n\
         is completely inert — no randomness drawn, no extra events — so all paper\n\
         figures are reproduced bit-for-bit."
    );
}
