//! Telemetry tour: run a small two-shard SRB simulation with the `srb-obs`
//! layer recording, then read the numbers three ways — a human-oriented
//! table, a machine-oriented JSON snapshot (written to `OBS_snapshot.json`),
//! and a per-sample timeline (`OBS_timeline.jsonl`).
//!
//! ```bash
//! cargo run --release --example telemetry
//! ```
//!
//! With `--no-default-features` the whole telemetry layer compiles away and
//! the snapshot is empty — the example prints that instead of failing.

use srb::obs;
use srb::sim::{run_srb, SimConfig};

fn main() {
    let cfg =
        SimConfig { shards: 2, timeline: Some("OBS_timeline.jsonl"), ..SimConfig::test_defaults() };
    println!(
        "running SRB: N={} W={} duration={} shards={} (telemetry compiled: {})",
        cfg.n_objects,
        cfg.n_queries,
        cfg.duration,
        cfg.shards,
        obs::compiled()
    );

    // Baseline snapshot so the report covers exactly this run, even if other
    // code in the process recorded metrics earlier.
    let before = obs::registry().snapshot();
    let metrics = run_srb(&cfg);
    let snap = obs::registry().snapshot().diff(&before);

    println!(
        "\nrun finished: accuracy={:.4}, {} uplinks, {} probes, comm_cost={:.3}",
        metrics.accuracy, metrics.uplinks, metrics.probes, metrics.comm_cost
    );

    if !obs::compiled() {
        println!("\ntelemetry is compiled out (--no-default-features); nothing to report");
        return;
    }

    // --- 1. Human-oriented table -------------------------------------------
    println!("\n{}", snap.to_table());

    // --- 2. JSON snapshot for tooling --------------------------------------
    let json = snap.to_json();
    match srb_durable::atomic::atomic_write(
        std::path::Path::new("OBS_snapshot.json"),
        format!("{json}\n").as_bytes(),
    ) {
        Ok(()) => println!("wrote OBS_snapshot.json ({} bytes)", json.len()),
        Err(e) => eprintln!("failed to write OBS_snapshot.json: {e}"),
    }

    // --- 3. Timeline: one JSON line per ground-truth sample ----------------
    match std::fs::read_to_string("OBS_timeline.jsonl") {
        Ok(body) => {
            let n = body.lines().count();
            println!("wrote OBS_timeline.jsonl ({n} samples)");
            if let Some(first) = body.lines().next() {
                let preview: String = first.chars().take(120).collect();
                println!("  first line: {preview}...");
            }
        }
        Err(e) => eprintln!("failed to read back OBS_timeline.jsonl: {e}"),
    }

    // Spot-check the acceptance surface: per-layer spans, per-shard batch
    // timings, and the R*-tree visit histogram must all be present.
    for key in ["location.recompute_safe_regions", "sharded.shard0.batch_ns", "index.search.visits"]
    {
        assert!(json.contains(key), "snapshot is missing {key}");
    }
    println!("\nsnapshot covers spans, per-shard batch timings, and index histograms ✓");
}
