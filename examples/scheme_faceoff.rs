//! Scheme face-off: run the paper's three monitoring schemes (SRB, OPT,
//! PRD) head to head on one deterministic world and print the §7.1 metrics
//! side by side. This is the programmatic entry point to the simulator —
//! everything the figure benches do is built from these calls.
//!
//! ```bash
//! cargo run --release --example scheme_faceoff            # laptop scale
//! SRB_N=10000 SRB_W=100 cargo run --release --example scheme_faceoff
//! ```

use srb::sim::{run_scheme, RunMetrics, Scheme, SimConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let cfg = SimConfig {
        n_objects: env_usize("SRB_N", 2_000),
        n_queries: env_usize("SRB_W", 20),
        duration: 8.0,
        ..SimConfig::paper_defaults()
    };
    println!(
        "world: N={} objects, W={} queries ({} range / {} kNN), {} time units, seed {}",
        cfg.n_objects,
        cfg.n_queries,
        cfg.n_queries.div_ceil(2),
        cfg.n_queries / 2,
        cfg.duration,
        cfg.seed
    );
    println!(
        "mobility: random waypoint, v̄={}, t̄v={}; grid M={}; Cl={}, Cp={}\n",
        cfg.mean_speed, cfg.mean_period, cfg.grid_m, cfg.cost.c_l, cfg.cost.c_p
    );

    let schemes = [
        ("SRB (safe regions)", Scheme::Srb),
        ("SRB + reachability", Scheme::Srb), // configured below
        ("OPT (clairvoyant)", Scheme::Opt),
        ("PRD(1)", Scheme::Prd(1.0)),
        ("PRD(0.1)", Scheme::Prd(0.1)),
    ];

    println!(
        "{:<20} {:>9} {:>10} {:>12} {:>10} {:>9}",
        "scheme", "accuracy", "comm cost", "cpu s/tu", "uplinks", "probes"
    );
    for (i, (name, scheme)) in schemes.iter().enumerate() {
        let run_cfg = if i == 1 { SimConfig { reachability: true, ..cfg } } else { cfg };
        let m: RunMetrics = run_scheme(*scheme, &run_cfg);
        println!(
            "{name:<20} {:>9.4} {:>10.4} {:>12.5} {:>10} {:>9}",
            m.accuracy, m.comm_cost, m.cpu_seconds_per_tu, m.uplinks, m.probes
        );
    }

    println!(
        "\nInterpretation (paper §7): OPT lower-bounds the communication cost;\n\
         SRB should sit between OPT and PRD(1) with (near-)perfect accuracy;\n\
         PRD trades accuracy against update rate via its interval."
    );
}
