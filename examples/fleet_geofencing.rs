//! Fleet geofencing: monitor which delivery vehicles are inside a set of
//! service zones (continuous range queries) while the fleet moves under the
//! random waypoint model. Demonstrates how few messages the safe-region
//! protocol needs compared to naive periodic polling.
//!
//! ```bash
//! cargo run --release --example fleet_geofencing
//! ```

use srb::core::{FnProvider, ObjectId, QuerySpec, Server, ServerConfig};
use srb::geom::{Point, Rect};
use srb::mobility::{MobileClient, MobilityConfig, Trajectory};

const FLEET: usize = 500;
const ZONES: usize = 12;
const DURATION: f64 = 20.0;
const TICK: f64 = 0.05;

fn main() {
    let mob = MobilityConfig {
        mean_speed: 0.02,
        mean_period: 2.0, // vehicles follow roads: long straight stretches
        ..Default::default()
    };
    let mut fleet: Vec<MobileClient> = (0..FLEET)
        .map(|i| MobileClient::new(i as u32, Trajectory::random_waypoint(7, i as u64, mob, 0.0)))
        .collect();

    let mut server = Server::new(ServerConfig {
        max_speed: Some(mob.max_speed()), // reachability enhancement (§6.1)
        ..Default::default()
    });

    // Register the fleet.
    for (i, truck) in fleet.iter_mut().enumerate() {
        let pos = truck.position(0.0);
        let mut provider = FnProvider(|_id: ObjectId| unreachable!("no probes at add"));
        let sr = server.add_object(ObjectId(i as u32), pos, &mut provider, 0.0).expect("fresh id");
        truck.receive_safe_region(sr, 0.0);
    }

    // Service zones across the city.
    let mut zones = Vec::new();
    for z in 0..ZONES {
        let cx = 0.12 + 0.76 * ((z % 4) as f64) / 3.0;
        let cy = 0.15 + 0.70 * ((z / 4) as f64) / 2.0;
        let rect = Rect::centered(Point::new(cx, cy), 0.05, 0.05);
        let resp = {
            let mut positions: Vec<Point> = Vec::new();
            for c in fleet.iter_mut() {
                positions.push(c.position(0.0));
            }
            let mut provider = FnProvider(move |id: ObjectId| positions[id.index()]);
            server.register_query(QuerySpec::range(rect), &mut provider, 0.0)
        };
        for (oid, sr) in &resp.safe_regions {
            fleet[oid.index()].receive_safe_region(*sr, 0.0);
        }
        println!("zone {z} at {rect:?}: {} vehicles inside", resp.results.len());
        zones.push(resp.id);
    }

    // Drive the world. Each tick every vehicle checks its safe region — the
    // client-side cost of the protocol is exactly this containment test.
    let mut events = 0u64;
    let mut t = TICK;
    while t <= DURATION {
        for i in 0..FLEET {
            let pos = fleet[i].position(t);
            let sr = fleet[i].safe_region().expect("registered");
            if !sr.contains_point(pos) {
                let resp = {
                    let snapshot: Vec<Point> = fleet.iter_mut().map(|c| c.position(t)).collect();
                    let mut provider = FnProvider(move |id: ObjectId| snapshot[id.index()]);
                    server
                        .handle_location_update(ObjectId(i as u32), pos, &mut provider, t)
                        .expect("registered object")
                };
                events += resp.changes.len() as u64;
                fleet[i].receive_safe_region(resp.safe_region, t);
                for (oid, sr) in resp.probed {
                    fleet[oid.index()].receive_safe_region(sr, t);
                }
            }
        }
        // Deferred probes from the reachability enhancement.
        {
            let snapshot: Vec<Point> = fleet.iter_mut().map(|c| c.position(t)).collect();
            let mut provider = FnProvider(move |id: ObjectId| snapshot[id.index()]);
            for (oid, resp) in server.process_deferred(&mut provider, t) {
                fleet[oid.index()].receive_safe_region(resp.safe_region, t);
                for (other, sr) in resp.probed {
                    fleet[other.index()].receive_safe_region(sr, t);
                }
            }
        }
        t += TICK;
    }

    let costs = server.costs();
    let naive_updates = (FLEET as f64 * DURATION / TICK) as u64;
    println!("\n--- after {DURATION} time units ---");
    for (z, qid) in zones.iter().enumerate() {
        println!("zone {z}: {} vehicles inside", server.results(*qid).unwrap().len());
    }
    println!("\nzone membership changes observed: {events}");
    println!(
        "messages: {} updates + {} probes = cost {:.0}",
        costs.source_updates,
        costs.probes,
        costs.total(&server.config().cost)
    );
    println!(
        "naive polling at the same fidelity would send {naive_updates} updates ({:.0}x more)",
        naive_updates as f64 / (costs.source_updates + costs.probes).max(1) as f64
    );
}
