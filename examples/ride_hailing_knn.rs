//! Ride hailing: each pickup point continuously monitors its k nearest
//! drivers (order-sensitive kNN — dispatch wants the ranking). Shows live
//! result maintenance, per-query quarantine areas, and the probe traffic
//! the lazy evaluation generates.
//!
//! ```bash
//! cargo run --release --example ride_hailing_knn
//! ```

use srb::core::{FnProvider, ObjectId, Quarantine, QuerySpec, Server};
use srb::geom::Point;
use srb::mobility::{MobileClient, MobilityConfig, Trajectory};

const DRIVERS: usize = 800;
const PICKUPS: usize = 6;
const K: usize = 3;
const DURATION: f64 = 10.0;
const TICK: f64 = 0.02;

fn main() {
    let mob = MobilityConfig { mean_speed: 0.03, mean_period: 1.0, ..Default::default() };
    let mut drivers: Vec<MobileClient> = (0..DRIVERS)
        .map(|i| MobileClient::new(i as u32, Trajectory::random_waypoint(99, i as u64, mob, 0.0)))
        .collect();

    let mut server = Server::with_defaults();
    for (i, driver) in drivers.iter_mut().enumerate() {
        let pos = driver.position(0.0);
        let mut provider = FnProvider(|_id: ObjectId| unreachable!());
        let sr = server.add_object(ObjectId(i as u32), pos, &mut provider, 0.0).expect("fresh id");
        driver.receive_safe_region(sr, 0.0);
    }

    // Pickup points around the city center.
    let mut pickups = Vec::new();
    for p in 0..PICKUPS {
        let angle = p as f64 / PICKUPS as f64 * std::f64::consts::TAU;
        let center = Point::new(0.5 + 0.25 * angle.cos(), 0.5 + 0.25 * angle.sin());
        let resp = {
            let snapshot: Vec<Point> = drivers.iter_mut().map(|c| c.position(0.0)).collect();
            let mut provider = FnProvider(move |id: ObjectId| snapshot[id.index()]);
            server.register_query(QuerySpec::knn(center, K), &mut provider, 0.0)
        };
        for (oid, sr) in &resp.safe_regions {
            drivers[oid.index()].receive_safe_region(*sr, 0.0);
        }
        println!("pickup {p} at {center:?}: nearest drivers {:?}", resp.results);
        pickups.push((resp.id, center));
    }

    // Drive and log dispatch-order changes for pickup 0.
    let mut changes_for_p0 = 0u64;
    let mut t = TICK;
    while t <= DURATION {
        for i in 0..DRIVERS {
            let pos = drivers[i].position(t);
            let sr = drivers[i].safe_region().expect("registered");
            if !sr.contains_point(pos) {
                let resp = {
                    let snapshot: Vec<Point> = drivers.iter_mut().map(|c| c.position(t)).collect();
                    let mut provider = FnProvider(move |id: ObjectId| snapshot[id.index()]);
                    server
                        .handle_location_update(ObjectId(i as u32), pos, &mut provider, t)
                        .expect("registered object")
                };
                drivers[i].receive_safe_region(resp.safe_region, t);
                for (oid, sr) in resp.probed {
                    drivers[oid.index()].receive_safe_region(sr, t);
                }
                for c in resp.changes {
                    if c.query == pickups[0].0 {
                        changes_for_p0 += 1;
                        if changes_for_p0 <= 8 {
                            println!("t={t:.2}: pickup 0 ranking now {:?}", c.results);
                        }
                    }
                }
            }
        }
        t += TICK;
    }

    println!("\n--- after {DURATION} time units ---");
    for (p, (qid, center)) in pickups.iter().enumerate() {
        let results = server.results(*qid).unwrap();
        let quarantine = match server.quarantine(*qid) {
            Some(Quarantine::Circle(c)) => format!("radius {:.4}", c.radius),
            _ => "?".into(),
        };
        println!(
            "pickup {p} at ({:.2}, {:.2}): top-{K} {:?} (quarantine {quarantine})",
            center.x, center.y, results
        );
    }
    let costs = server.costs();
    println!(
        "\npickup-0 ranking changed {changes_for_p0} times; total messages: {} updates, {} probes",
        costs.source_updates, costs.probes
    );
}
