//! Quickstart: monitor a range query and a kNN query over a handful of
//! moving objects, stepping the world by hand.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use srb::core::{FnProvider, ObjectId, QuerySpec, Server};
use srb::geom::{Point, Rect};

fn main() {
    // --- World state: four objects on a line ------------------------------
    let mut positions = vec![
        Point::new(0.10, 0.50),
        Point::new(0.30, 0.50),
        Point::new(0.60, 0.50),
        Point::new(0.90, 0.50),
    ];

    let mut server = Server::with_defaults();

    // Register the objects. The server hands each a safe region; a real
    // client would store it and report only when leaving it.
    {
        let ps = positions.clone();
        let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
        for (i, &p) in positions.iter().enumerate() {
            let sr =
                server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).expect("fresh id");
            println!("object o{i} at {p:?} got safe region {sr:?}");
        }
    }

    // --- Register continuous queries ---------------------------------------
    let (range_q, knn_q) = {
        let ps = positions.clone();
        let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
        let range = server.register_query(
            QuerySpec::range(Rect::new(Point::new(0.0, 0.4), Point::new(0.4, 0.6))),
            &mut provider,
            0.0,
        );
        println!("\nrange query {} initial results: {:?}", range.id, range.results);
        let knn =
            server.register_query(QuerySpec::knn(Point::new(1.0, 0.5), 2), &mut provider, 0.0);
        println!("2NN query {} initial results: {:?}", knn.id, knn.results);
        (range.id, knn.id)
    };

    // --- Move object o1 to the right, step by step -------------------------
    println!("\nmoving o1 rightward 0.05 per step:");
    for step in 1..=12 {
        let now = step as f64;
        positions[1] = Point::new(positions[1].x + 0.05, 0.5);
        let pos = positions[1];
        // Client-side logic: report only when outside the safe region.
        let sr = server.safe_region(ObjectId(1)).unwrap();
        if !sr.contains_point(pos) {
            let ps = positions.clone();
            let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
            let resp = server
                .handle_location_update(ObjectId(1), pos, &mut provider, now)
                .expect("registered object");
            for change in &resp.changes {
                println!(
                    "  t={now}: o1 at x={:.2} -> query {} results now {:?}",
                    pos.x, change.query, change.results
                );
            }
            if resp.changes.is_empty() {
                println!("  t={now}: o1 reported (left safe region), no result change");
            }
        } else {
            println!("  t={now}: o1 at x={:.2}, silent (inside safe region)", pos.x);
        }
    }

    println!(
        "\nfinal results: range {:?}, 2NN {:?}",
        server.results(range_q).unwrap(),
        server.results(knn_q).unwrap()
    );
    let costs = server.costs();
    println!(
        "communication: {} source updates, {} probes (cost {:.1})",
        costs.source_updates,
        costs.probes,
        costs.total(&server.config().cost)
    );
}
