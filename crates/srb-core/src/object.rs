//! Per-object server-side state: the safe region, the last reported
//! location, and its timestamp (needed by the reachability circle, §6.1).
//!
//! Storage is a dense generational slab: states live contiguously in slot
//! order, an `ObjectId -> slot` map (shared fast hasher, see `srb-hash`)
//! resolves lookups in one multiply-hash probe, and freed slots are recycled
//! through a free list with a bumped generation so a stale [`ObjectSlot`]
//! handle can never observe a different object that later reused the slot.
//! Steady-state report handling (`get`/`get_mut`/`set` of existing ids)
//! performs no heap allocation.

use crate::ids::ObjectId;
use srb_geom::{Point, Rect};
use srb_hash::FastMap;

/// What the server knows about one moving object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectState {
    /// Last *exactly known* location (from a source-initiated update or a
    /// probe) — the paper's `p_lst`.
    pub p_lst: Point,
    /// Timestamp of that location — the paper's `T`.
    pub t_lst: f64,
    /// Current safe region (also stored in the object R\*-tree).
    pub safe_region: Rect,
    /// Highest client sequence number accepted so far. Sequenced updates at
    /// or below this are duplicates/reorderings from an unreliable channel
    /// and are rejected idempotently.
    pub last_seq: u64,
}

/// Compact generational handle to a slot in an [`ObjectTable`].
///
/// The generation is bumped every time a slot is freed, so a handle taken
/// before a `remove` never resolves against whatever object reuses the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObjectSlot {
    idx: u32,
    gen: u32,
}

impl ObjectSlot {
    /// Dense slot index (useful for sizing side tables).
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// Reuse generation of the slot at the time the handle was taken.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

#[derive(Clone, Debug)]
struct Entry {
    gen: u32,
    occupant: Option<(ObjectId, ObjectState)>,
}

/// Dense generational slab of object states keyed by [`ObjectId`].
#[derive(Clone, Debug, Default)]
pub struct ObjectTable {
    entries: Vec<Entry>,
    free: Vec<u32>,
    slot_of: FastMap<ObjectId, u32>,
    high_water: usize,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// True when no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Most objects ever registered at once (process-lifetime high-water).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Registers or replaces an object's state.
    pub fn set(&mut self, id: ObjectId, state: ObjectState) {
        if let Some(&idx) = self.slot_of.get(&id) {
            // Replace in place; the slot keeps its generation while occupied.
            self.entries[idx as usize].occupant = Some((id, state));
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx as usize].occupant = Some((id, state));
                idx
            }
            None => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry { gen: 0, occupant: Some((id, state)) });
                idx
            }
        };
        self.slot_of.insert(id, idx);
        if self.slot_of.len() > self.high_water {
            self.high_water = self.slot_of.len();
            srb_obs::gauge!("objects.slab_high_water").set(self.high_water as u64);
        }
        srb_obs::gauge!("objects.slab_occupancy").set(self.slot_of.len() as u64);
    }

    /// The state of `id`, if registered.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectState> {
        let &idx = self.slot_of.get(&id)?;
        self.entries[idx as usize].occupant.as_ref().map(|(_, st)| st)
    }

    /// Mutable state access.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut ObjectState> {
        let &idx = self.slot_of.get(&id)?;
        self.entries[idx as usize].occupant.as_mut().map(|(_, st)| st)
    }

    /// The generational slot handle of `id`, if registered.
    pub fn slot(&self, id: ObjectId) -> Option<ObjectSlot> {
        let &idx = self.slot_of.get(&id)?;
        Some(ObjectSlot { idx, gen: self.entries[idx as usize].gen })
    }

    /// Resolves a slot handle taken earlier with [`ObjectTable::slot`].
    ///
    /// Returns `None` if the slot was freed since (even if another object
    /// has reused it — the generation check rejects stale handles).
    pub fn get_slot(&self, slot: ObjectSlot) -> Option<(ObjectId, &ObjectState)> {
        let entry = self.entries.get(slot.idx as usize)?;
        if entry.gen != slot.gen {
            return None;
        }
        entry.occupant.as_ref().map(|(id, st)| (*id, st))
    }

    /// Removes an object, returning its state. Frees the slot for reuse and
    /// bumps its generation so outstanding handles go stale.
    pub fn remove(&mut self, id: ObjectId) -> Option<ObjectState> {
        let idx = self.slot_of.remove(&id)?;
        let entry = &mut self.entries[idx as usize];
        let old = entry.occupant.take().map(|(_, st)| st);
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(idx);
        srb_obs::gauge!("objects.slab_occupancy").set(self.slot_of.len() as u64);
        old
    }

    /// Serializes the slab for a durability checkpoint. Slots are written
    /// in dense order and the free list verbatim, so a decoded table is
    /// bit-identical in structure (slot assignment, reuse order,
    /// generations) to the original — only the `slot_of` hash map is
    /// rebuilt, and it is never iterated in hash order anywhere.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        use srb_durable::codec::*;
        put_usize(out, self.entries.len());
        for e in &self.entries {
            put_u32(out, e.gen);
            match &e.occupant {
                None => put_u8(out, 0),
                Some((id, st)) => {
                    put_u8(out, 1);
                    put_u32(out, id.0);
                    put_f64(out, st.p_lst.x);
                    put_f64(out, st.p_lst.y);
                    put_f64(out, st.t_lst);
                    crate::wal::put_rect(out, &st.safe_region);
                    put_u64(out, st.last_seq);
                }
            }
        }
        put_usize(out, self.free.len());
        for &idx in &self.free {
            put_u32(out, idx);
        }
        put_usize(out, self.high_water);
    }

    /// Rebuilds a slab serialized by [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        dec: &mut srb_durable::Dec<'_>,
    ) -> Result<Self, srb_durable::DurableError> {
        use srb_durable::DurableError;
        let n = dec.len(5)?;
        let mut entries = Vec::with_capacity(n);
        let mut slot_of = FastMap::default();
        for idx in 0..n {
            let gen = dec.u32()?;
            let occupant = match dec.u8()? {
                0 => None,
                1 => {
                    let id = ObjectId(dec.u32()?);
                    let p_lst = Point::new(dec.f64()?, dec.f64()?);
                    let t_lst = dec.f64()?;
                    let safe_region = crate::wal::dec_rect(dec)?;
                    let last_seq = dec.u64()?;
                    if slot_of.insert(id, idx as u32).is_some() {
                        return Err(DurableError::Corrupt("duplicate object id"));
                    }
                    Some((id, ObjectState { p_lst, t_lst, safe_region, last_seq }))
                }
                _ => return Err(DurableError::Corrupt("bad occupant tag")),
            };
            entries.push(Entry { gen, occupant });
        }
        let n_free = dec.len(4)?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let idx = dec.u32()?;
            if idx as usize >= entries.len() || entries[idx as usize].occupant.is_some() {
                return Err(DurableError::Corrupt("free list names an occupied slot"));
            }
            free.push(idx);
        }
        let high_water = dec.usize()?;
        Ok(ObjectTable { entries, free, slot_of, high_water })
    }

    /// Iterates over registered objects in ascending-id order.
    ///
    /// This sorts a scratch vector of ids, so it is for cold paths only
    /// (coherence checks, tests) — the hot paths address states through
    /// [`ObjectTable::get`]/[`ObjectTable::get_mut`].
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectState)> {
        let mut order: Vec<u32> = self.slot_of.values().copied().collect();
        order.sort_unstable_by_key(|&idx| {
            self.entries[idx as usize].occupant.as_ref().map(|(id, _)| id.0)
        });
        order.into_iter().filter_map(|idx| {
            self.entries[idx as usize].occupant.as_ref().map(|(id, st)| (*id, st))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(x: f64) -> ObjectState {
        ObjectState {
            p_lst: Point::new(x, x),
            t_lst: 0.0,
            safe_region: Rect::point(Point::new(x, x)),
            last_seq: 0,
        }
    }

    #[test]
    fn set_get_remove() {
        let mut t = ObjectTable::new();
        assert!(t.is_empty());
        t.set(ObjectId(3), state(0.3));
        t.set(ObjectId(0), state(0.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(ObjectId(3)).unwrap().p_lst, Point::new(0.3, 0.3));
        assert!(t.get(ObjectId(1)).is_none());
        assert!(t.remove(ObjectId(3)).is_some());
        assert!(t.remove(ObjectId(3)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn set_overwrites_without_double_count() {
        let mut t = ObjectTable::new();
        t.set(ObjectId(0), state(0.1));
        t.set(ObjectId(0), state(0.2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(ObjectId(0)).unwrap().p_lst, Point::new(0.2, 0.2));
    }

    #[test]
    fn iter_visits_all() {
        let mut t = ObjectTable::new();
        for i in [5u32, 1, 9] {
            t.set(ObjectId(i), state(i as f64 / 10.0));
        }
        let ids: Vec<u32> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }

    #[test]
    fn get_mut_updates() {
        let mut t = ObjectTable::new();
        t.set(ObjectId(2), state(0.5));
        t.get_mut(ObjectId(2)).unwrap().t_lst = 7.0;
        assert_eq!(t.get(ObjectId(2)).unwrap().t_lst, 7.0);
    }

    #[test]
    fn slot_reuse_bumps_generation() {
        let mut t = ObjectTable::new();
        t.set(ObjectId(7), state(0.7));
        let slot = t.slot(ObjectId(7)).unwrap();
        assert_eq!(t.get_slot(slot).unwrap().0, ObjectId(7));

        t.remove(ObjectId(7));
        assert!(t.get_slot(slot).is_none(), "freed slot must invalidate handles");

        // The freed slot is recycled for the next registration...
        t.set(ObjectId(11), state(0.11));
        let reused = t.slot(ObjectId(11)).unwrap();
        assert_eq!(reused.index(), slot.index(), "free list should recycle the slot");
        // ...but the old handle still must not resolve to the new occupant.
        assert!(t.get_slot(slot).is_none(), "stale handle must not see the reused slot");
        assert_eq!(t.get_slot(reused).unwrap().0, ObjectId(11));
        assert!(reused.generation() > slot.generation());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut t = ObjectTable::new();
        for i in 0..4u32 {
            t.set(ObjectId(i), state(0.1));
        }
        t.remove(ObjectId(0));
        t.remove(ObjectId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.high_water(), 4);
    }
}
