//! Per-object server-side state: the safe region, the last reported
//! location, and its timestamp (needed by the reachability circle, §6.1).

use crate::ids::ObjectId;
use srb_geom::{Point, Rect};

/// What the server knows about one moving object.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectState {
    /// Last *exactly known* location (from a source-initiated update or a
    /// probe) — the paper's `p_lst`.
    pub p_lst: Point,
    /// Timestamp of that location — the paper's `T`.
    pub t_lst: f64,
    /// Current safe region (also stored in the object R\*-tree).
    pub safe_region: Rect,
    /// Highest client sequence number accepted so far. Sequenced updates at
    /// or below this are duplicates/reorderings from an unreliable channel
    /// and are rejected idempotently.
    pub last_seq: u64,
}

/// Dense table of object states, indexed by [`ObjectId`].
#[derive(Clone, Debug, Default)]
pub struct ObjectTable {
    states: Vec<Option<ObjectState>>,
    len: usize,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Registers or replaces an object's state.
    pub fn set(&mut self, id: ObjectId, state: ObjectState) {
        let idx = id.index();
        if idx >= self.states.len() {
            self.states.resize(idx + 1, None);
        }
        if self.states[idx].is_none() {
            self.len += 1;
        }
        self.states[idx] = Some(state);
    }

    /// The state of `id`, if registered.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectState> {
        self.states.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Mutable state access.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut ObjectState> {
        self.states.get_mut(id.index()).and_then(|s| s.as_mut())
    }

    /// Removes an object, returning its state.
    pub fn remove(&mut self, id: ObjectId) -> Option<ObjectState> {
        let slot = self.states.get_mut(id.index())?;
        let old = slot.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterates over registered objects.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectState)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|st| (ObjectId(i as u32), st)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(x: f64) -> ObjectState {
        ObjectState {
            p_lst: Point::new(x, x),
            t_lst: 0.0,
            safe_region: Rect::point(Point::new(x, x)),
            last_seq: 0,
        }
    }

    #[test]
    fn set_get_remove() {
        let mut t = ObjectTable::new();
        assert!(t.is_empty());
        t.set(ObjectId(3), state(0.3));
        t.set(ObjectId(0), state(0.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(ObjectId(3)).unwrap().p_lst, Point::new(0.3, 0.3));
        assert!(t.get(ObjectId(1)).is_none());
        assert!(t.remove(ObjectId(3)).is_some());
        assert!(t.remove(ObjectId(3)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn set_overwrites_without_double_count() {
        let mut t = ObjectTable::new();
        t.set(ObjectId(0), state(0.1));
        t.set(ObjectId(0), state(0.2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(ObjectId(0)).unwrap().p_lst, Point::new(0.2, 0.2));
    }

    #[test]
    fn iter_visits_all() {
        let mut t = ObjectTable::new();
        for i in [5u32, 1, 9] {
            t.set(ObjectId(i), state(i as f64 / 10.0));
        }
        let ids: Vec<u32> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }

    #[test]
    fn get_mut_updates() {
        let mut t = ObjectTable::new();
        t.set(ObjectId(2), state(0.5));
        t.get_mut(ObjectId(2)).unwrap().t_lst = 7.0;
        assert_eq!(t.get(ObjectId(2)).unwrap().t_lst, 7.0);
    }
}
