//! Incremental reevaluation of affected queries upon a source-initiated
//! location update (paper §4.3).
//!
//! Range queries flip the updated object's membership directly. An
//! order-sensitive kNN query distinguishes three cases by where the new
//! location `pos` and the previous location `p_lst` fall relative to the
//! quarantine circle; each case needs **at most one probe**. Order-
//! insensitive kNN queries are re-run as new queries (the paper's rule —
//! without a strict order there is no sequence to patch).
//!
//! The §4.3 derivation relies on the invariant that result distances are
//! strictly interleaved (`δ(o_1) ≤ Δ(o_1) ≤ δ(o_2) ≤ …`). Floating-point
//! edge cases can break it; this implementation verifies the invariant and
//! falls back to a full reevaluation when it does not hold (counted in
//! [`WorkStats::ordering_fallbacks`](crate::provider::WorkStats)).

use crate::eval::{evaluate_knn_ordered, evaluate_knn_unordered, EvalCtx};
use crate::ids::ObjectId;
use crate::query::{Quarantine, QuerySpec, QueryState};
use srb_geom::{Circle, Point, Rect};

const EPS: f64 = 1e-12;

/// Outcome of reevaluating one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Reeval {
    /// The result set (or order) changed and must be reported.
    pub results_changed: bool,
    /// The quarantine area changed and the grid index must be updated.
    pub quarantine_changed: bool,
}

/// Reevaluates `qs` after object `oid` reported a move from `p_lst` to
/// `pos`. `pos` must already be recorded in `ctx.exact` and in the object
/// tree (as a degenerate rectangle) by the caller.
pub(crate) fn reevaluate<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    qs: &mut QueryState,
    oid: ObjectId,
    pos: Point,
    p_lst: Point,
    space: &Rect,
) -> Reeval {
    match qs.spec {
        QuerySpec::Range { rect } => reevaluate_range(qs, oid, pos, rect),
        QuerySpec::Knn { center, k, order_sensitive: false } => {
            reevaluate_knn_unordered(ctx, qs, pos, p_lst, center, k, space)
        }
        QuerySpec::Knn { center, k, order_sensitive: true } => {
            reevaluate_knn_ordered(ctx, qs, oid, pos, p_lst, center, k, space)
        }
    }
}

/// Reevaluates a query affected by *several* simultaneous movers. Range
/// queries flip each mover's membership independently; kNN queries are
/// reevaluated from scratch (every mover's exact position is already in
/// `ctx.exact`, so the evaluation is consistent and probes stay lazy).
pub(crate) fn reevaluate_multi<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    qs: &mut QueryState,
    movers: &[ObjectId],
    prev: &srb_hash::FastMap<ObjectId, Point>,
    space: &Rect,
) -> Reeval {
    match qs.spec {
        QuerySpec::Range { rect } => {
            let mut changed = false;
            for &m in movers {
                let pos = ctx.exact.get(&m).copied().expect("mover is exact");
                let r = reevaluate_range(qs, m, pos, rect);
                changed |= r.results_changed;
            }
            Reeval { results_changed: changed, quarantine_changed: false }
        }
        QuerySpec::Knn { center, k, order_sensitive } => {
            // Unaffected fast path: every mover stayed on the same side of
            // the quarantine area (and outside it, for ordered queries).
            let c = quarantine_circle(qs);
            let all_clear = movers.iter().all(|&m| {
                let pos = ctx.exact.get(&m).copied().expect("mover is exact");
                let was = prev.get(&m).copied().unwrap_or(pos);
                let inside = c.contains(pos);
                let was_inside = c.contains(was);
                if order_sensitive {
                    !inside && !was_inside
                } else {
                    inside == was_inside
                }
            });
            if all_clear {
                return Reeval { results_changed: false, quarantine_changed: false };
            }
            let old = qs.results.clone();
            let old_quarantine = qs.quarantine;
            let eval = if order_sensitive {
                evaluate_knn_ordered(ctx, center, k, space, &[])
            } else {
                evaluate_knn_unordered(ctx, center, k, space, &[])
            };
            let results_changed = if order_sensitive {
                eval.results != old
            } else {
                let mut a = eval.results.clone();
                let mut b = old.clone();
                a.sort_unstable();
                b.sort_unstable();
                a != b
            };
            qs.results = eval.results;
            qs.quarantine = Quarantine::Circle(Circle::new(center, eval.radius));
            Reeval { results_changed, quarantine_changed: qs.quarantine != old_quarantine }
        }
    }
}

fn reevaluate_range(qs: &mut QueryState, oid: ObjectId, pos: Point, rect: Rect) -> Reeval {
    let inside = rect.contains_point(pos);
    let was_result = qs.is_result(oid);
    let results_changed = if inside && !was_result {
        qs.results.push(oid);
        true
    } else if !inside && was_result {
        qs.results.retain(|&o| o != oid);
        true
    } else {
        false
    };
    Reeval { results_changed, quarantine_changed: false }
}

fn quarantine_circle(qs: &QueryState) -> Circle {
    match qs.quarantine {
        Quarantine::Circle(c) => c,
        Quarantine::Rect(_) => unreachable!("kNN query with rectangular quarantine"),
    }
}

fn reevaluate_knn_unordered<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    qs: &mut QueryState,
    pos: Point,
    p_lst: Point,
    center: Point,
    k: usize,
    space: &Rect,
) -> Reeval {
    let c = quarantine_circle(qs);
    let inside = c.contains(pos);
    let was_inside = c.contains(p_lst);
    if inside == was_inside {
        return Reeval { results_changed: false, quarantine_changed: false };
    }
    let eval = evaluate_knn_unordered(ctx, center, k, space, &[]);
    let mut old_sorted: Vec<ObjectId> = qs.results.clone();
    old_sorted.sort_unstable();
    let mut new_sorted: Vec<ObjectId> = eval.results.clone();
    new_sorted.sort_unstable();
    let results_changed = old_sorted != new_sorted;
    qs.results = eval.results;
    let quarantine_changed = (eval.radius - c.radius).abs() > EPS;
    qs.quarantine = Quarantine::Circle(Circle::new(center, eval.radius));
    Reeval { results_changed, quarantine_changed }
}

#[allow(clippy::too_many_arguments)]
fn reevaluate_knn_ordered<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    qs: &mut QueryState,
    oid: ObjectId,
    pos: Point,
    p_lst: Point,
    center: Point,
    k: usize,
    space: &Rect,
) -> Reeval {
    let c = quarantine_circle(qs);
    let inside = c.contains(pos);
    let was_inside = c.contains(p_lst);
    let was_result = qs.is_result(oid);

    if !inside && !was_inside {
        // An order-sensitive query is unaffected only when both endpoints
        // are outside the quarantine area (§3.3).
        return Reeval { results_changed: false, quarantine_changed: false };
    }

    // Case 1: left the quarantine area — p stops being a result.
    if was_inside && !inside {
        if !was_result {
            // A non-result inside the quarantine area means the invariant
            // has already drifted; recover with a full reevaluation.
            return full_reevaluate(ctx, qs, center, k, space);
        }
        let old = qs.results.clone();
        qs.results.retain(|&o| o != oid);
        let remaining = qs.results.clone();
        let one = evaluate_knn_ordered(ctx, center, 1, space, &remaining);
        qs.results.extend(one.results);
        qs.quarantine = Quarantine::Circle(Circle::new(center, one.radius));
        // The leaver may be re-elected as the new k-th NN (it left the
        // quarantine circle but nothing else is closer) — no visible change.
        return Reeval { results_changed: qs.results != old, quarantine_changed: true };
    }

    // Cases 2 and 3 need the interleaved distance sequence of the current
    // results (excluding p itself for case 3).
    let old_results = qs.results.clone();
    let old_radius = c.radius;
    let mut seq: Vec<ObjectId> = qs.results.clone();
    let entering = !was_inside; // case 2
    if !entering {
        // Case 3: both inside — p must currently be a result.
        if !was_result {
            return full_reevaluate(ctx, qs, center, k, space);
        }
        seq.retain(|&o| o != oid);
    } else if was_result {
        // Entering but already a result: inconsistent.
        return full_reevaluate(ctx, qs, center, k, space);
    }

    let Some(bounds) = collect_ordered_bounds(ctx, &seq, center) else {
        ctx.work.ordering_fallbacks += 1;
        return full_reevaluate(ctx, qs, center, k, space);
    };

    let d = pos.dist(center);
    let mut idx = seq.len();
    for (j, &(dj, dd_j)) in bounds.iter().enumerate() {
        if d >= dd_j - EPS {
            continue; // p is farther than o_j for sure
        }
        if d <= dj + EPS {
            idx = j; // p precedes o_j for sure
            break;
        }
        // Ambiguous against o_j: probe it (the single probe of §4.3).
        let oj = seq[j];
        let pj = match ctx.bound_of(oj) {
            Some(b) if b.is_exact() => b,
            _ => {
                ctx.work.probes_reeval += 1;
                let pt = ctx.probe(oj);
                crate::bounds::LocBound::Exact(pt)
            }
        };
        let dj_exact = pj.raw_min_dist(center);
        idx = if d >= dj_exact { j + 1 } else { j };
        break;
    }
    if idx == seq.len() && bounds.iter().all(|&(_, dd)| d >= dd - EPS) {
        idx = seq.len();
    }

    if entering && idx == seq.len() && seq.len() == k {
        // p entered the quarantine circle but is farther than every result:
        // the result set is unchanged, but the quarantine must shrink below
        // d to restore the non-result-outside invariant. Use fresh bounds —
        // the k-th result may just have been probed above, which makes its
        // Δ exact (and ≤ d, or p would have displaced it).
        let inner = seq
            .iter()
            .map(|&o| ctx.bound_of(o).map(|b| b.raw_max_dist(center)).unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let radius = ((inner + d) * 0.5).min(old_radius);
        qs.quarantine = Quarantine::Circle(Circle::new(center, radius));
        return Reeval { results_changed: false, quarantine_changed: true };
    }

    seq.insert(idx.min(seq.len()), oid);
    let mut quarantine_changed = false;
    if entering && seq.len() > k {
        // Case 2: the old k-th NN drops out; new radius is the midpoint of
        // Δ(q, o'_k) and δ(q, o_k-dropped).
        let dropped = seq.pop().expect("non-empty");
        let inner = seq
            .iter()
            .filter_map(|&o| ctx.bound_of(o))
            .map(|b| b.raw_max_dist(center))
            .fold(d.min(old_radius), f64::max);
        let outer =
            ctx.bound_of(dropped).map(|b| b.raw_min_dist(center)).unwrap_or(inner).max(inner);
        qs.quarantine = Quarantine::Circle(Circle::new(center, (inner + outer) * 0.5));
        quarantine_changed = true;
    }
    let results_changed = seq != old_results;
    qs.results = seq;
    Reeval { results_changed, quarantine_changed }
}

fn full_reevaluate<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    qs: &mut QueryState,
    center: Point,
    k: usize,
    space: &Rect,
) -> Reeval {
    let old = qs.results.clone();
    let old_quarantine = qs.quarantine;
    let eval = evaluate_knn_ordered(ctx, center, k, space, &[]);
    let results_changed = eval.results != old;
    qs.results = eval.results;
    qs.quarantine = Quarantine::Circle(Circle::new(center, eval.radius));
    let quarantine_changed = qs.quarantine != old_quarantine;
    Reeval { results_changed, quarantine_changed }
}

/// Collects `(δ, Δ)` bounds for `seq` and verifies the §4.3 interleaving
/// invariant `δ_1 ≤ Δ_1 ≤ δ_2 ≤ Δ_2 ≤ …`. Returns `None` when an object is
/// missing or the invariant is broken.
fn collect_ordered_bounds<B: srb_index::SpatialBackend>(
    ctx: &EvalCtx<'_, B>,
    seq: &[ObjectId],
    center: Point,
) -> Option<Vec<(f64, f64)>> {
    let mut out = Vec::with_capacity(seq.len());
    let mut prev_max = 0.0f64;
    for &o in seq {
        let b = ctx.bound_of(o)?;
        let lo = b.raw_min_dist(center);
        let hi = b.raw_max_dist(center);
        if lo + EPS < prev_max {
            return None;
        }
        prev_max = hi;
        out.push((lo, hi));
    }
    Some(out)
}
