//! Query evaluation on safe regions with lazy probing (paper §4.1, §4.2).
//!
//! Objects are represented by [`LocBound`]s — safe regions, optionally
//! refined by reachability circles (§6.1), or exact points once probed. The
//! kNN evaluator follows Algorithm 2: best-first browsing with a *held*
//! object, probing only when the result is about to be emitted and still
//! ambiguous, so every probe is mandatory.

use crate::bounds::LocBound;
use crate::ids::ObjectId;
use crate::object::ObjectTable;
use crate::provider::{CostTracker, LocationProvider, WorkStats};
use srb_geom::{Circle, Point, Rect};
use srb_hash::FastMap;
use srb_index::{NearestStream, SpatialBackend};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Everything an evaluation needs from the server, bundled to keep borrows
/// manageable. `exact` accumulates every exactly-known location of the
/// current server operation (the updating object plus all probed objects);
/// the server recomputes safe regions for exactly these objects afterwards
/// (Algorithm 1 lines 14–15).
pub(crate) struct EvalCtx<'a, B: SpatialBackend> {
    pub tree: &'a B,
    pub objects: &'a ObjectTable,
    pub exact: &'a mut FastMap<ObjectId, Point>,
    pub provider: &'a mut dyn LocationProvider,
    pub costs: &'a mut CostTracker,
    pub work: &'a mut WorkStats,
    /// Deferred probes scheduled by reachability-based decisions: the
    /// earliest future instants at which those decisions could be
    /// invalidated by the growing circle (see DESIGN.md — this makes §6.1
    /// sound). The server moves these into its timer queue.
    pub deferred: &'a mut Vec<(ObjectId, f64)>,
    /// `Some(max_speed)` when the reachability enhancement is enabled.
    pub max_speed: Option<f64>,
    /// Current time (for reachability radii).
    pub now: f64,
}

/// Read-only view of the server state needed to bound object locations —
/// used by safe-region computation, which never probes.
pub(crate) struct ReadCtx<'a, B: SpatialBackend> {
    pub tree: &'a B,
    pub objects: &'a ObjectTable,
    pub exact: &'a FastMap<ObjectId, Point>,
    pub max_speed: Option<f64>,
    pub now: f64,
}

impl<B: SpatialBackend> ReadCtx<'_, B> {
    /// The location bound for an object whose stored rectangle is `sr`.
    pub fn bound(&self, id: ObjectId, sr: Rect) -> LocBound {
        if let Some(&p) = self.exact.get(&id) {
            return LocBound::Exact(p);
        }
        let reach = match (self.max_speed, self.objects.get(id)) {
            (Some(v), Some(st)) => {
                Some(Circle::new(st.p_lst, (v * (self.now - st.t_lst)).max(0.0)))
            }
            _ => None,
        };
        LocBound::Region { sr, reach }
    }

    /// The location bound for an object, looking its rectangle up in the
    /// tree.
    pub fn bound_of(&self, id: ObjectId) -> Option<LocBound> {
        if let Some(&p) = self.exact.get(&id) {
            return Some(LocBound::Exact(p));
        }
        let sr = self.tree.get(id.entry())?;
        Some(self.bound(id, sr))
    }
}

impl<B: SpatialBackend> EvalCtx<'_, B> {
    /// A read-only view sharing this context's state.
    pub fn as_read(&self) -> ReadCtx<'_, B> {
        ReadCtx {
            tree: self.tree,
            objects: self.objects,
            exact: self.exact,
            max_speed: self.max_speed,
            now: self.now,
        }
    }

    /// The location bound for an object whose stored rectangle is `sr`.
    pub fn bound(&self, id: ObjectId, sr: Rect) -> LocBound {
        self.as_read().bound(id, sr)
    }

    /// The location bound for an object, looking its rectangle up in the
    /// tree.
    pub fn bound_of(&self, id: ObjectId) -> Option<LocBound> {
        self.as_read().bound_of(id)
    }

    /// Issues a server-initiated probe (cost `c_p`) and records the result.
    pub fn probe(&mut self, id: ObjectId) -> Point {
        let p = self.provider.probe(id);
        self.costs.probes += 1;
        self.exact.insert(id, p);
        p
    }

    /// Schedules a deferred probe of `id` at the earliest time the object's
    /// reachability circle (anchored at its last report) could reach
    /// distance `threshold` from `q` — the instant a `Δ_ref(id) <= threshold`
    /// decision could stop holding.
    pub fn defer_dist_threshold(&mut self, id: ObjectId, q: Point, threshold: f64) {
        let (Some(v), Some(st)) = (self.max_speed, self.objects.get(id)) else {
            return;
        };
        let slack = threshold - st.p_lst.dist(q);
        let due = st.t_lst + slack / v;
        if due > self.now + 1e-9 {
            self.deferred.push((id, due));
            self.work.probes_avoided += 1;
        } else {
            // The anchor is already at (or past) the threshold: a deferred
            // probe would fire at this very instant — and two objects can
            // schedule each other forever at a frozen timestamp. Probe
            // inline instead; the object's safe region is recomputed at the
            // end of this operation like any other probe target.
            let _ = self.probe(id);
        }
    }

    /// Schedules a deferred probe of `id` at the earliest time the object's
    /// reachability circle could shrink its distance from `q` *below*
    /// `threshold` — the instant a `δ_ref(id) >= threshold` decision could
    /// stop holding.
    pub fn defer_min_dist_threshold(&mut self, id: ObjectId, q: Point, threshold: f64) {
        let (Some(v), Some(st)) = (self.max_speed, self.objects.get(id)) else {
            return;
        };
        let slack = st.p_lst.dist(q) - threshold;
        let due = st.t_lst + slack / v;
        if due > self.now + 1e-9 {
            self.deferred.push((id, due));
            self.work.probes_avoided += 1;
        } else {
            // See `defer_dist_threshold`: immediate-due deferrals can
            // livelock at a frozen timestamp; probe inline instead.
            let _ = self.probe(id);
        }
    }

    /// Schedules a deferred probe of `id` at the earliest time its circle
    /// could travel `dist` from the anchor — used for rectangle constraints.
    pub fn defer_travel(&mut self, id: ObjectId, dist: f64) {
        let (Some(v), Some(st)) = (self.max_speed, self.objects.get(id)) else {
            return;
        };
        let due = st.t_lst + dist.max(0.0) / v;
        if due > self.now + 1e-9 {
            self.deferred.push((id, due));
            self.work.probes_avoided += 1;
        } else {
            // See `defer_dist_threshold`: a non-positive slack means the
            // decision could already be stale, and an immediately-due
            // deferred probe both livelocks at a frozen timestamp and costs
            // an extra scheduling round-trip. Probe inline instead.
            let _ = self.probe(id);
        }
    }
}

// ---------------------------------------------------------------------
// Range queries (§4.1)
// ---------------------------------------------------------------------

/// Evaluates a new range query over safe regions, probing only objects whose
/// bound straddles the rectangle boundary.
pub(crate) fn evaluate_range<B: SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    rect: &Rect,
) -> Vec<ObjectId> {
    ctx.work.evaluations += 1;
    let mut results = Vec::new();
    let candidates = ctx.tree.search_vec(rect);
    for entry in candidates {
        let oid = ObjectId(entry.id as u32);
        let bound = ctx.bound(oid, entry.rect);
        match bound {
            LocBound::Exact(p) => {
                if rect.contains_point(p) {
                    results.push(oid);
                }
            }
            LocBound::Region { sr, .. } if rect.contains_rect(&sr) => {
                // Unconditionally inside: the safe region itself keeps the
                // object in the rectangle.
                results.push(oid);
            }
            LocBound::Region { sr, .. } if !sr.intersects(rect) => {}
            LocBound::Region { sr, .. } => {
                // Ambiguous on the raw safe region. Try the reachability
                // circle (§6.1); decisions it makes are only valid until the
                // circle grows, so each one schedules a deferred probe.
                if bound.definitely_inside(rect) {
                    results.push(oid);
                    if let Some((anchor, radius)) = reach_anchor(&bound) {
                        let escape = sr.escape_dist(anchor, rect).unwrap_or(f64::INFINITY);
                        if escape.is_finite() {
                            ctx.defer_travel(oid, escape);
                        } else {
                            ctx.work.probes_avoided += 1;
                        }
                        let _ = radius;
                    }
                } else if bound.definitely_outside(rect) {
                    if reach_anchor(&bound).is_some() {
                        let enter = sr
                            .intersection(rect)
                            .map(|cap| {
                                let anchor = reach_anchor(&bound).expect("checked").0;
                                cap.min_dist(anchor)
                            })
                            .unwrap_or(f64::INFINITY);
                        if enter.is_finite() {
                            ctx.defer_travel(oid, enter);
                        } else {
                            ctx.work.probes_avoided += 1;
                        }
                    }
                } else {
                    let p = ctx.probe(oid);
                    if rect.contains_point(p) {
                        results.push(oid);
                    }
                }
            }
        }
    }
    results
}

/// The reachability anchor (last reported location) and current radius of a
/// region bound, when the enhancement is active.
fn reach_anchor(bound: &LocBound) -> Option<(Point, f64)> {
    match bound {
        LocBound::Region { reach: Some(c), .. } => Some((c.center, c.radius)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// kNN queries (§4.2, Algorithm 2)
// ---------------------------------------------------------------------

/// Result of a kNN evaluation.
#[derive(Clone, Debug)]
pub(crate) struct KnnEval {
    /// The k nearest objects; distance-ordered for the order-sensitive
    /// variant.
    pub results: Vec<ObjectId>,
    /// Radius of the new quarantine area (midpoint between `Δ(q, o_k)` and
    /// `δ(q, o_{k+1})`).
    pub radius: f64,
}

/// A stream item: one object with its bound and sort key `key = δ(q, sr)` —
/// the *raw* safe-region distance. Pop order must use raw keys so that the
/// key of the next popped item lower-bounds the raw δ of everything still in
/// the stream (quarantine radii depend on that). The bound itself may be
/// reachability-refined and is used for membership confirmations (§6.1).
struct Item {
    key: f64,
    oid: ObjectId,
    bound: LocBound,
}

impl Item {
    fn new(oid: ObjectId, bound: LocBound, q: Point) -> Self {
        Item { key: bound.raw_min_dist(q), oid, bound }
    }
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.total_cmp(&other.key)
    }
}

/// Merges the backend's best-first browser with probed exact points pushed
/// back into the frontier, yielding objects in non-decreasing key order.
struct Stream<'a, B: SpatialBackend + 'a> {
    browser: B::Nearest<'a>,
    heap: BinaryHeap<Reverse<Item>>,
    q: Point,
}

impl<'a, B: SpatialBackend + 'a> Stream<'a, B> {
    fn new(tree: &'a B, q: Point) -> Self {
        Stream { browser: tree.nearest_iter(q), heap: BinaryHeap::new(), q }
    }

    fn push(&mut self, item: Item) {
        self.heap.push(Reverse(item));
    }

    /// Next object by key, skipping `exclude`.
    fn next(&mut self, ctx: &EvalCtx<'_, B>, exclude: &[ObjectId]) -> Option<Item> {
        loop {
            // Pull from the browser until its lower bound can no longer beat
            // the heap top.
            while let Some(d) = self.browser.peek_dist() {
                if self.heap.peek().is_none_or(|Reverse(t)| d < t.key) {
                    if let Some(n) = self.browser.next() {
                        let oid = ObjectId(n.id as u32);
                        if exclude.contains(&oid) {
                            continue;
                        }
                        let bound = ctx.bound(oid, n.rect);
                        self.heap.push(Reverse(Item::new(oid, bound, self.q)));
                    }
                } else {
                    break;
                }
            }
            let Reverse(item) = self.heap.pop()?;
            if exclude.contains(&item.oid) {
                continue;
            }
            return Some(item);
        }
    }
}

/// Radius used when no (k+1)-th object exists: extend the quarantine circle
/// to cover the whole monitored space, so nothing can invalidate the result.
fn open_radius(q: Point, space: &Rect, inner: f64) -> f64 {
    (space.max_dist(q) * 1.5).max(inner * 1.5 + 1e-9)
}

/// Evaluates a new **order-sensitive** kNN query (Algorithm 2).
pub(crate) fn evaluate_knn_ordered<B: SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    q: Point,
    k: usize,
    space: &Rect,
    exclude: &[ObjectId],
) -> KnnEval {
    ctx.work.evaluations += 1;
    let mut stream = Stream::new(ctx.tree, q);
    let mut held: Option<Item> = None;
    let mut results: Vec<Item> = Vec::with_capacity(k);
    let mut next_for_radius: Option<Item> = None;

    while results.len() < k {
        let Some(u) = stream.next(ctx, exclude) else { break };
        if let Some(p) = held.take() {
            let p_max_raw = p.bound.raw_max_dist(q);
            let p_max = p.bound.max_dist(q);
            if p_max <= u.key + 1e-12 {
                // p precedes everything still in the queue: emit it. When
                // only the reachability circle justified this (the raw safe
                // region overlaps), schedule the deferred probe that keeps
                // the decision sound over time.
                if p_max_raw > u.key + 1e-12 {
                    ctx.defer_dist_threshold(p.oid, q, u.key);
                }
                results.push(p);
                if results.len() == k {
                    next_for_radius = Some(u);
                    break;
                }
            } else {
                // Ambiguous — probe the held object (lazy probe) and replay
                // both (Algorithm 2 lines 9-13). Exact bounds never reach
                // this branch: an exact held object is emitted immediately.
                debug_assert!(!p.bound.is_exact());
                ctx.work.probes_knn_eval += 1;
                let pt = ctx.probe(p.oid);
                stream.push(Item::new(p.oid, LocBound::Exact(pt), q));
                stream.push(u);
                continue;
            }
        }
        if u.bound.is_exact() {
            results.push(u);
        } else {
            held = Some(u);
        }
    }
    // Queue exhausted with an object still held: nothing can beat it.
    if results.len() < k {
        if let Some(p) = held.take() {
            results.push(p);
        }
    }

    let next = match next_for_radius {
        Some(n) => Some(n),
        None => stream.next(ctx, exclude),
    };
    let radius = sound_radius(ctx, q, &mut results, next, &mut stream, exclude, space);
    KnnEval { results: results.into_iter().map(|i| i.oid).collect(), radius }
}

/// Computes a quarantine radius that is valid until the next relevant
/// update: at least the raw `Δ(q, o.sr)` of every result, at most the raw
/// `δ(q, o.sr)` of every non-result. When reachability-refined
/// confirmations leave those raw ranges overlapping, the separation is
/// restored by probing (each probed object's safe region is recomputed by
/// the server afterwards, shrinking it to an exact point here).
fn sound_radius<B: SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    q: Point,
    results: &mut [Item],
    mut next: Option<Item>,
    stream: &mut Stream<'_, B>,
    exclude: &[ObjectId],
    space: &Rect,
) -> f64 {
    loop {
        // Refined upper bound of the results (valid now); raw keys of the
        // stream lower-bound the raw δ of every remaining non-result, which
        // is what the quarantine radius must not exceed.
        let lo_ref = results.iter().map(|r| r.bound.max_dist(q)).fold(0.0f64, f64::max);
        let Some(n) = next.take() else {
            let lo_raw = results.iter().map(|r| r.bound.raw_max_dist(q)).fold(0.0f64, f64::max);
            return open_radius(q, space, lo_raw);
        };
        if lo_ref <= n.key + 1e-12 {
            let radius = (lo_ref + n.key.max(lo_ref)) * 0.5;
            // Results whose raw safe region pokes beyond the radius could
            // exit the quarantine circle undetected once their reachability
            // circle grows: schedule the deferred probes that prevent it.
            for r in results.iter() {
                if r.bound.raw_max_dist(q) > radius + 1e-12 && !r.bound.is_exact() {
                    ctx.defer_dist_threshold(r.oid, q, radius);
                }
            }
            return radius;
        }
        // Refined bounds cannot separate (possible when an enhancement is
        // off or circles have grown): probe the widest result.
        if let Some(r) = results
            .iter_mut()
            .filter(|r| !r.bound.is_exact() && r.bound.max_dist(q) > n.key)
            .max_by(|a, b| a.bound.max_dist(q).total_cmp(&b.bound.max_dist(q)))
        {
            ctx.work.probes_radius += 1;
            let pt = ctx.probe(r.oid);
            *r = Item::new(r.oid, LocBound::Exact(pt), q);
            next = Some(n);
        } else if !n.bound.is_exact() {
            ctx.work.probes_radius += 1;
            let pt = ctx.probe(n.oid);
            let fresh = Item::new(n.oid, LocBound::Exact(pt), q);
            // The probed next may now rank behind another candidate.
            stream.push(fresh);
            next = stream.next(ctx, exclude);
        } else {
            return (lo_ref + n.key.max(lo_ref)) * 0.5;
        }
    }
}

/// Evaluates a new **order-insensitive** kNN query: same browsing, but up to
/// `k` objects may be held simultaneously, so fewer probes are needed
/// (§4.2, last paragraph).
pub(crate) fn evaluate_knn_unordered<B: SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    q: Point,
    k: usize,
    space: &Rect,
    exclude: &[ObjectId],
) -> KnnEval {
    ctx.work.evaluations += 1;
    let mut stream = Stream::new(ctx.tree, q);
    let mut held: Vec<Item> = Vec::new();
    let mut results: Vec<Item> = Vec::with_capacity(k);
    let mut next_for_radius: Option<Item> = None;

    while results.len() < k {
        let Some(u) = stream.next(ctx, exclude) else { break };
        // Confirm any held object that everything remaining cannot beat.
        let mut i = 0;
        while i < held.len() {
            if held[i].bound.max_dist(q) <= u.key + 1e-12 {
                if held[i].bound.raw_max_dist(q) > u.key + 1e-12 {
                    ctx.defer_dist_threshold(held[i].oid, q, u.key);
                }
                results.push(held.remove(i));
            } else {
                i += 1;
            }
        }
        if results.len() >= k {
            next_for_radius = Some(u);
            break;
        }
        if results.len() + held.len() < k {
            held.push(u);
            continue;
        }
        // Capacity reached: resolve the most uncertain candidate.
        let worst = held
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.bound.is_exact())
            .max_by(|a, b| a.1.bound.max_dist(q).total_cmp(&b.1.bound.max_dist(q)))
            .map(|(i, _)| i);
        match worst {
            Some(i) if held[i].bound.max_dist(q) > u.key => {
                let p = held.remove(i);
                ctx.work.probes_knn_eval += 1;
                let pt = ctx.probe(p.oid);
                stream.push(Item::new(p.oid, LocBound::Exact(pt), q));
                stream.push(u);
            }
            _ => {
                if u.bound.is_exact() {
                    // All held are exact (or closer): keys are true distances,
                    // so everything held is confirmed ahead of u.
                    results.append(&mut held);
                    next_for_radius = Some(u);
                    break;
                }
                ctx.work.probes_knn_eval += 1;
                let pt = ctx.probe(u.oid);
                stream.push(Item::new(u.oid, LocBound::Exact(pt), q));
            }
        }
    }
    if results.len() < k {
        // Stream exhausted: all held objects are results.
        held.sort_by(|a, b| a.key.total_cmp(&b.key));
        for h in held.drain(..) {
            if results.len() < k {
                results.push(h);
            }
        }
    }

    let next = match next_for_radius {
        Some(n) => Some(n),
        None => stream.next(ctx, exclude),
    };
    let radius = sound_radius(ctx, q, &mut results, next, &mut stream, exclude, space);
    KnnEval { results: results.into_iter().map(|i| i.oid).collect(), radius }
}
