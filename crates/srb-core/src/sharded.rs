//! A sharded, batch-parallel engine built on top of the Figure-3.1 layer
//! stack (scalability direction of §7.3).
//!
//! [`ShardedServer`] hash-partitions the moving objects across `N`
//! shard-local [`Server`] stacks, keyed by the grid cell of each object's
//! registration position. Every query is registered on every shard (the
//! per-shard allocators run in lockstep, so ids align), which makes each
//! shard's answer exact *over its own objects*:
//!
//! - a **range** query's global result is the disjoint union of per-shard
//!   results;
//! - a **kNN** query's global top-k is contained in the union of the
//!   per-shard top-k lists, so the coordinator only ranks that candidate
//!   union.
//!
//! Batch location updates fan out to the shards. The
//! [`handle_sequenced_updates_parallel`](ShardedServer::handle_sequenced_updates_parallel)
//! path runs them through the pipelined front-end (see [`crate::pipeline`]):
//! persistent shard workers fed over bounded per-shard rings, with the
//! coordinator merging response chunks as they stream back. Responses are
//! merged deterministically regardless of arrival order: response entries
//! sorted by [`ObjectId`], coordinator result changes sorted by [`QueryId`].
//! With one shard the engine is a pure pass-through and bit-identical to a
//! plain [`Server`].
//!
//! # Cross-shard kNN resolution
//!
//! Per-shard safe regions are computed against shard-local neighbors, so
//! the coordinator cannot compare candidates by region geometry across
//! shards in general. Instead it ranks candidates by the distance interval
//! `[minDist, maxDist]` from the query point to each candidate's current
//! safe region (or its exact position when the object reported or was
//! probed at the current timestamp). When two intervals overlap across a
//! rank that matters — adjacent ranks of an order-sensitive query, any
//! selected candidate against the first unselected one of an
//! order-insensitive query — the coordinator probes the
//! wider interval and feeds the exact position back into the owning shard
//! through its server-initiated-update path, so the probe is billed (`c_p`),
//! the shard reevaluates, and the client receives a fresh safe region
//! instead of being left pending.

use crate::adaptive::{AdaptAction, AdaptiveController, ShardSignals};
use crate::config::{DurabilityConfig, ServerConfig};
use crate::error::{RecoveryError, ServerError};
use crate::ids::{ObjectId, QueryId};
use crate::pipeline::{JobKind, PipelineState, ResultKind};
use crate::provider::{CostTracker, LocationProvider, WorkStats};
use crate::query::{QuerySpec, ResultChange};
use crate::server::{RegisterResponse, ResultRemoval, SequencedUpdate, Server, UpdateResponse};
use crate::wal::{self, Record, ReplayProvider, Wal};
use srb_durable::codec::{put_u32, put_u64, put_u8, put_usize};
use srb_geom::{Point, Rect};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::time::Duration;

/// Interval-separation slack for cross-shard kNN ranking.
const EPS: f64 = 1e-9;

/// How long the streaming merge parks when every result ring is empty
/// (the workers' wakeup signal is the primary trigger; the timeout is
/// lost-wakeup insurance).
const MERGE_PARK: Duration = Duration::from_micros(50);

/// A thread-safe location provider for the parallel fan-out path: probes
/// take `&self` so shards running on different threads can share one
/// provider. The simulator's true-position table and the benches' position
/// vectors implement this trivially.
pub trait SyncProvider: Sync {
    /// Returns the exact current location of `id`.
    fn probe(&self, id: ObjectId) -> Point;

    /// A dense position table (index = object id) covering every object
    /// this batch may probe, if the provider can expose one. The
    /// pipelined front-end copies it into each shard job so workers
    /// answer probes locally instead of round-tripping to the
    /// coordinator; ids beyond the table's length still fall back to the
    /// RPC path. Entries must agree with [`SyncProvider::probe`].
    fn snapshot(&self) -> Option<&[Point]> {
        None
    }
}

impl<F: Fn(ObjectId) -> Point + Sync> SyncProvider for F {
    fn probe(&self, id: ObjectId) -> Point {
        self(id)
    }
}

/// A [`SyncProvider`] backed by a dense position table, the common shape
/// in benches and tests: probing is an array read, and the table doubles
/// as the [`snapshot`](SyncProvider::snapshot) the pipelined workers use
/// to answer probes without a coordinator round trip.
pub struct TableProvider<'a>(pub &'a [Point]);

impl SyncProvider for TableProvider<'_> {
    fn probe(&self, id: ObjectId) -> Point {
        self.0[id.index()]
    }

    fn snapshot(&self) -> Option<&[Point]> {
        Some(self.0)
    }
}

/// Adapts a shared [`SyncProvider`] to the sequential [`LocationProvider`]
/// interface each shard expects.
struct SyncAdapter<'a, P: SyncProvider + ?Sized>(&'a P);

impl<P: SyncProvider + ?Sized> LocationProvider for SyncAdapter<'_, P> {
    fn probe(&mut self, id: ObjectId) -> Point {
        self.0.probe(id)
    }
}

/// Parses an `SRB_THREADS` value: `Some(n)` for a positive integer
/// (surrounding whitespace tolerated), `None` for everything else —
/// absent, empty, zero, negative, or non-numeric values all fall back to
/// the default so a misconfigured environment can never request zero
/// workers.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The number of threads the batch fan-out may use: the `SRB_THREADS`
/// environment variable if set to a positive integer, else rayon's
/// configured parallelism (`RAYON_NUM_THREADS` / available cores).
/// `SRB_THREADS=0` and unparsable values are rejected, not honored.
/// The resolved count is published on the `sharded.threads` gauge.
pub fn configured_threads() -> usize {
    let var = std::env::var("SRB_THREADS");
    let resolved =
        parse_threads(var.as_deref().ok()).unwrap_or_else(rayon::current_num_threads).max(1);
    srb_obs::gauge!("sharded.threads").set(resolved as u64);
    resolved
}

/// Coordinator-owned scratch buffers, cleared and reused every batch so a
/// steady-state batch — sequential or pipelined — allocates nothing at the
/// coordinator level either (the per-shard arenas live inside each
/// [`Server`]). Buffer groups are taken by value and returned, mirroring
/// `BatchScratch`.
struct CoordScratch<B: srb_index::SpatialBackend> {
    /// Per-shard update partitions (outer Vec sized to the shard count once).
    batches: Vec<Vec<SequencedUpdate>>,
    /// Per-shard batch durations of the current fan-out.
    durations: Vec<u64>,
    /// Objects moved or probed in the current batch, sorted + deduped before
    /// the membership scan.
    moved: Vec<ObjectId>,
    /// Per-shard probe transcripts of a pipelined batch, recorded on the
    /// workers (in probe order) only under a WAL and spliced onto the
    /// marker record in shard order.
    transcripts: Vec<Vec<(ObjectId, Point)>>,
    /// Per-shard copies of the provider's position snapshot, lent to the
    /// workers so they answer probes locally instead of via ring RPC.
    tables: Vec<Vec<Point>>,
    /// Per-shard "job still in flight" flags of the pipelined drain.
    pending: Vec<bool>,
    /// Landing buffer swapped against result-ring chunk slots.
    chunk: Vec<(ObjectId, UpdateResponse)>,
    /// Parking slots for the shard servers while a pipelined batch has
    /// them checked out (idle shards never leave this vector).
    returned: Vec<Option<Server<B>>>,
}

impl<B: srb_index::SpatialBackend> Default for CoordScratch<B> {
    fn default() -> Self {
        CoordScratch {
            batches: Vec::new(),
            durations: Vec::new(),
            moved: Vec::new(),
            transcripts: Vec::new(),
            tables: Vec::new(),
            pending: Vec::new(),
            chunk: Vec::new(),
            returned: Vec::new(),
        }
    }
}

/// A server of servers: `N` shard-local [`Server`] stacks behind one
/// coordinator that owns cross-shard query merging. See the module docs for
/// the partitioning and merge rules. One shard means pure delegation —
/// behaviorally identical to a plain [`Server`].
pub struct ShardedServer<B: srb_index::SpatialBackend = srb_index::RStarTree> {
    config: ServerConfig,
    shards: Vec<Server<B>>,
    /// Object → owning shard, indexed by `ObjectId::index()`.
    owner: Vec<Option<u32>>,
    /// Coordinator copy of each query's spec, indexed by `QueryId::index()`.
    specs: Vec<Option<QuerySpec>>,
    /// Coordinator-merged result per query (maintained only with `N > 1`).
    merged: Vec<Option<Vec<ObjectId>>>,
    /// Coordinator-level work counters (e.g. unknown-object drops detected
    /// before an update reaches any shard).
    coord_work: WorkStats,
    /// Explicit thread-count override; `None` defers to
    /// [`configured_threads`].
    threads: Option<usize>,
    /// Per-shard batch-duration histograms (`sharded.shard{i}.batch_ns`),
    /// resolved once at construction so the hot path never touches the
    /// registry lock.
    shard_batch_ns: Vec<&'static srb_obs::Histogram>,
    /// Reused coordinator batch buffers (see [`CoordScratch`]).
    scratch: CoordScratch<B>,
    /// The coordinator-owned write-ahead log, when durability is on. Log 0
    /// is the arbiter log (one marker per operation); logs `1..=N` hold the
    /// per-shard batch partitions. Shards never own a store of their own.
    wal: Option<Box<Wal>>,
    /// The standing pipelined front-end (rings + persistent workers),
    /// built lazily on the first pipelined batch and rebuilt only when
    /// the requested worker count changes. Carries no engine state: at
    /// rest every shard server is checked back into `shards`.
    pipeline: Option<PipelineState<B>>,
    /// The adaptive backend controller, present exactly when
    /// `config.backend` is [`BackendConfig::Adaptive`]
    /// (`srb_index::BackendConfig::Adaptive`). Consulted by
    /// [`maybe_adapt`](Self::maybe_adapt) at batch boundaries; its decision
    /// state is checkpointed so recovered runs re-make identical decisions.
    adaptive: Option<AdaptiveController>,
}

impl ShardedServer {
    /// Creates an R\*-tree-backed sharded server with `shards` shard-local
    /// stacks, each configured identically. Panics when `config.backend`
    /// selects a different backend — use [`ShardedServer::with_backend`]
    /// with an explicit type for those.
    pub fn new(config: ServerConfig, shards: usize) -> Self {
        Self::with_backend(config, shards)
    }

    /// Creates a single-shard server with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ServerConfig::default(), 1)
    }
}

impl<B: srb_index::SpatialBackend> ShardedServer<B> {
    /// Creates a sharded server whose per-shard object indexes use the
    /// backend `B`, built from `config.backend`. Panics when the config
    /// variant does not match `B`.
    pub fn with_backend(config: ServerConfig, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        srb_obs::gauge!("sharded.shards").set(shards as u64);
        // Shards never attach their own durability store: the coordinator
        // logs for the whole fleet, one partition log per shard plus the
        // arbiter log.
        let shard_config = ServerConfig { durability: DurabilityConfig::default(), ..config };
        let adaptive = match config.backend {
            srb_index::BackendConfig::Adaptive(ac) => Some(AdaptiveController::new(ac, shards)),
            _ => None,
        };
        let mut server = ShardedServer {
            shards: (0..shards).map(|_| Server::with_backend(shard_config)).collect(),
            owner: Vec::new(),
            specs: Vec::new(),
            merged: Vec::new(),
            coord_work: WorkStats::default(),
            threads: None,
            shard_batch_ns: (0..shards)
                .map(|i| srb_obs::registry().histogram(&format!("sharded.shard{i}.batch_ns")))
                .collect(),
            scratch: CoordScratch::default(),
            wal: None,
            pipeline: None,
            adaptive,
            config,
        };
        if server.config.durability.enabled() {
            server.attach_durability().expect("failed to create the configured durability store");
        }
        server
    }

    /// Overrides the fan-out thread count (otherwise [`configured_threads`]
    /// decides). A value of 1 forces the deterministic inline path.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shared shard configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard-local server stacks, in shard order.
    pub fn shards(&self) -> &[Server<B>] {
        &self.shards
    }

    /// Total number of registered objects across all shards.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.object_count()).sum()
    }

    /// Number of registered queries (identical on every shard).
    pub fn query_count(&self) -> usize {
        self.shards[0].query_count()
    }

    /// Iterates over the registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.shards[0].query_ids()
    }

    /// The current (merged) result set of a query. Ordered for
    /// order-sensitive kNN; sorted by id otherwise when `N > 1`.
    pub fn results(&self, id: QueryId) -> Option<&[ObjectId]> {
        if self.shards.len() == 1 {
            return self.shards[0].results(id);
        }
        self.merged.get(id.index()).and_then(|r| r.as_deref())
    }

    /// The safe region of `id`, as granted by its owning shard.
    pub fn safe_region(&self, id: ObjectId) -> Option<Rect> {
        self.owning_shard(id)?.safe_region(id)
    }

    /// The last exactly-known location of `id` and its timestamp.
    pub fn last_known(&self, id: ObjectId) -> Option<(Point, f64)> {
        self.owning_shard(id)?.last_known(id)
    }

    /// Communication totals summed across shards. Coordinator probes are
    /// billed on the owning shard, so the sum is the fleet-wide truth.
    pub fn costs(&self) -> CostTracker {
        let mut total = CostTracker::default();
        for s in &self.shards {
            total.merge(&s.costs());
        }
        total
    }

    /// Work counters summed across shards plus the coordinator's own.
    pub fn work(&self) -> WorkStats {
        let mut total = self.coord_work;
        for s in &self.shards {
            total.merge(&s.work());
        }
        total
    }

    /// Total object-index node visits across shards.
    pub fn index_visits(&self) -> u64 {
        self.shards.iter().map(|s| s.index_visits()).sum()
    }

    /// Total grid-index footprint across shards.
    pub fn grid_footprint(&self) -> usize {
        self.shards.iter().map(|s| s.grid_footprint()).sum()
    }

    /// Verifies per-shard consistency plus the coordinator's owner map.
    pub fn check_invariants(&self) {
        for s in &self.shards {
            s.check_invariants();
        }
        let owned = self.owner.iter().filter(|o| o.is_some()).count();
        assert_eq!(owned, self.object_count(), "owner map out of sync with shards");
    }

    /// Full consistency scan on every shard (release included).
    #[doc(hidden)]
    pub fn check_invariants_deep(&self) {
        for s in &self.shards {
            s.check_invariants_deep();
        }
    }

    /// Drops every retained scratch capacity — coordinator buffers and all
    /// per-shard arenas. Bench-only hook that simulates the old
    /// build-buffers-per-batch behavior; never call it on a hot path.
    #[doc(hidden)]
    pub fn drop_scratch_capacity(&mut self) {
        self.scratch = CoordScratch::default();
        for s in &mut self.shards {
            s.drop_scratch_capacity();
        }
    }

    /// Most entries any shard's scratch buffer held during one operation.
    pub fn scratch_high_water(&self) -> usize {
        self.shards.iter().map(|s| s.scratch_high_water()).max().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Object lifecycle
    // ------------------------------------------------------------------

    /// Registers a new moving object at `pos` on the shard its registration
    /// grid cell hashes to. With `N > 1`, register objects before queries
    /// when possible: safe regions granted to other clients by merge-time
    /// probes during a later `add_object` cannot be returned through this
    /// signature and are dropped (each affected client recovers on its next
    /// report).
    pub fn add_object(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Result<Rect, ServerError> {
        // WAL hook: record the operation (inputs + probe transcript) and
        // re-enter with logging disarmed. Logged unconditionally — even a
        // rejected duplicate must replay to the same rejection.
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.add_object(id, pos, &mut rp, now)
            };
            w.log_add_object(id, pos, now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        if self.owner_of(id).is_some() {
            return Err(ServerError::DuplicateObject(id));
        }
        let target = self.assign_shard(pos);
        let sr = self.shards[target].add_object(id, pos, provider, now)?;
        if self.owner.len() <= id.index() {
            self.owner.resize(id.index() + 1, None);
        }
        self.owner[id.index()] = Some(target as u32);
        if self.shards.len() > 1 {
            // The owning shard folded the object into every query whose
            // quarantine covers it; re-merge those queries' global results.
            let triggers: BTreeSet<QueryId> = self.shards[target]
                .query_ids()
                .filter(|&q| {
                    self.shards[target].quarantine(q).map(|qa| qa.contains(pos)).unwrap_or(false)
                })
                .collect();
            let _ = self.merge_after(triggers, provider, now);
        }
        Ok(sr)
    }

    /// Removes a moving object from its owning shard; queries holding it are
    /// reevaluated there and re-merged globally.
    pub fn remove_object(
        &mut self,
        id: ObjectId,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Option<ResultRemoval> {
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.remove_object(id, &mut rp, now)
            };
            w.log_remove_object(id, now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        let target = self.owner_of(id)?;
        let mut removal = self.shards[target].remove_object(id, provider, now)?;
        self.owner[id.index()] = None;
        if self.shards.len() > 1 {
            let mut triggers: BTreeSet<QueryId> = removal.changes.iter().map(|c| c.query).collect();
            for (qi, r) in self.merged.iter().enumerate() {
                if r.as_ref().is_some_and(|r| r.contains(&id)) {
                    triggers.insert(QueryId(qi as u32));
                }
            }
            let (probed, changes) = self.merge_after(triggers, provider, now);
            removal.probed.extend(probed);
            removal.changes = changes;
        }
        Some(removal)
    }

    // ------------------------------------------------------------------
    // Query lifecycle
    // ------------------------------------------------------------------

    /// Registers a continuous query on every shard (the allocators run in
    /// lockstep so all shards assign the same id) and merges the initial
    /// per-shard results into the global answer.
    pub fn register_query(
        &mut self,
        spec: QuerySpec,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> RegisterResponse {
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.register_query(spec, &mut rp, now)
            };
            w.log_register_query(&spec, now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        if self.shards.len() == 1 {
            let resp = self.shards[0].register_query(spec, provider, now);
            self.record_spec(resp.id, spec);
            return resp;
        }
        let mut id: Option<QueryId> = None;
        let mut safe_regions: Vec<(ObjectId, Rect)> = Vec::new();
        let mut triggers: BTreeSet<QueryId> = BTreeSet::new();
        for shard in &mut self.shards {
            let resp = shard.register_query(spec, provider, now);
            match id {
                None => id = Some(resp.id),
                Some(expected) => {
                    assert_eq!(expected, resp.id, "shard query allocators out of lockstep")
                }
            }
            safe_regions.extend(resp.safe_regions);
            // Registration probes can reveal silent movers, changing the
            // shard-local answers of existing queries; those queries must
            // be re-merged globally along with the new one.
            triggers.extend(resp.changes.iter().map(|c| c.query));
        }
        let id = id.expect("at least one shard");
        self.record_spec(id, spec);
        if self.merged.len() <= id.index() {
            self.merged.resize(id.index() + 1, None);
        }
        self.merged[id.index()] = Some(Vec::new());
        triggers.insert(id);
        let (probed, mut changes) = self.merge_after(triggers, provider, now);
        safe_regions.extend(probed);
        changes.retain(|c| c.query != id);
        // Deduplicate grants (later regions supersede earlier ones) and
        // emit them in deterministic id order.
        let deduped: BTreeMap<ObjectId, Rect> = safe_regions.into_iter().collect();
        RegisterResponse {
            id,
            results: self.merged[id.index()].clone().unwrap_or_default(),
            safe_regions: deduped.into_iter().collect(),
            changes,
        }
    }

    /// Deregisters a query from every shard.
    pub fn deregister_query(&mut self, id: QueryId) -> bool {
        if let Some(mut w) = self.wal.take() {
            let result = self.deregister_query(id);
            w.log_deregister_query(id);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        let mut removed = false;
        for shard in &mut self.shards {
            removed |= shard.deregister_query(id);
        }
        if let Some(s) = self.specs.get_mut(id.index()) {
            *s = None;
        }
        if let Some(m) = self.merged.get_mut(id.index()) {
            *m = None;
        }
        removed
    }

    // ------------------------------------------------------------------
    // Location updates
    // ------------------------------------------------------------------

    /// Handles one source-initiated update: routed to the owning shard, then
    /// affected queries are re-merged globally. Coordinator-probed safe
    /// regions ride along in `probed`; `changes` carries the *global* result
    /// changes.
    pub fn handle_location_update(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Result<UpdateResponse, ServerError> {
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.handle_location_update(id, pos, &mut rp, now)
            };
            w.log_update(id, pos, now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        if self.shards.len() == 1 {
            return self.shards[0].handle_location_update(id, pos, provider, now);
        }
        let target = self.owner_of(id).ok_or(ServerError::UnknownObject(id))?;
        let mut resp = self.shards[target].handle_location_update(id, pos, provider, now)?;
        let mut triggers: BTreeSet<QueryId> = resp.changes.drain(..).map(|c| c.query).collect();
        let mut moved = std::mem::take(&mut self.scratch.moved);
        moved.clear();
        moved.push(id);
        moved.extend(resp.probed.iter().map(|&(o, _)| o));
        moved.sort_unstable();
        moved.dedup();
        self.membership_triggers(&moved, &mut triggers);
        self.scratch.moved = moved;
        let (probed, changes) = self.merge_after(triggers, provider, now);
        resp.probed.extend(probed);
        resp.changes = changes;
        Ok(resp)
    }

    /// Handles a batch of simultaneous updates, stamping each with its
    /// object's next sequence number (unknown objects are dropped and
    /// counted).
    pub fn handle_location_updates(
        &mut self,
        updates: &[(ObjectId, Point)],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        // WAL hook: the partitions go to the shard logs first; the marker
        // (written last, with the probe transcript) is the commit point —
        // orphan partitions from a crash mid-operation are ignored on
        // recovery because no marker references them.
        if let Some(mut w) = self.wal.take() {
            let counts = self.wal_partition_raw(updates, &mut w);
            let result = {
                let mut rp = w.recorder(provider);
                self.handle_location_updates(updates, &mut rp, now)
            };
            w.log_raw_batch_marker(now, &counts);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        if self.shards.len() == 1 {
            let result = self.shards[0].handle_location_updates(updates, provider, now);
            self.maybe_adapt();
            return result;
        }
        let sequenced: Vec<SequencedUpdate> = updates
            .iter()
            .filter_map(|&(id, pos)| {
                let shard = self.owning_shard(id)?;
                shard.last_known(id)?;
                Some(SequencedUpdate { id, pos, seq: self.next_seq(id) })
            })
            .collect();
        self.coord_work.unknown_object_drops += (updates.len() - sequenced.len()) as u64;
        self.handle_sequenced_updates(&sequenced, provider, now)
    }

    /// Handles a batch of sequenced updates: partitioned by owning shard,
    /// applied shard by shard, then merged. Responses come back sorted by
    /// [`ObjectId`]; the global result changes (sorted by [`QueryId`]) ride
    /// on the first response entry, mirroring the unsharded batch contract.
    pub fn handle_sequenced_updates(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        let mut out = Vec::new();
        self.handle_sequenced_updates_into(updates, provider, now, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`handle_sequenced_updates`](Self::handle_sequenced_updates):
    /// **appends** the batch's responses to `out`. With a caller-reused
    /// `out`, a steady-state batch on the sequential path allocates nothing
    /// — the per-shard partitions, duration samples, and moved-object set
    /// all live in coordinator scratch buffers.
    pub fn handle_sequenced_updates_into(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &mut dyn LocationProvider,
        now: f64,
        out: &mut Vec<(ObjectId, UpdateResponse)>,
    ) {
        if let Some(mut w) = self.wal.take() {
            let counts = self.wal_partition_seq(updates, &mut w);
            {
                let mut rp = w.recorder(provider);
                self.handle_sequenced_updates_into(updates, &mut rp, now, out);
            }
            w.log_batch_marker(now, &counts);
            self.wal = Some(w);
            self.wal_post_op();
            return;
        }
        if self.shards.len() == 1 {
            self.shards[0].handle_sequenced_updates_into(updates, provider, now, out);
            self.maybe_adapt();
            return;
        }
        let batches = self.partition(updates);
        let mut durations = std::mem::take(&mut self.scratch.durations);
        durations.clear();
        let start = out.len();
        {
            let _span = srb_obs::span!("sharded.fan_out");
            for (i, (shard, batch)) in self.shards.iter_mut().zip(&batches).enumerate() {
                if !batch.is_empty() {
                    let watch = srb_obs::Stopwatch::start();
                    shard.handle_sequenced_updates_into(batch, provider, now, out);
                    if let Some(ns) = watch.elapsed_ns() {
                        self.shard_batch_ns[i].record(ns);
                        durations.push(ns);
                    }
                }
            }
        }
        record_straggler_gap(&durations);
        self.scratch.durations = durations;
        self.scratch.batches = batches;
        self.finish_batch_in(out, start, provider, now);
        self.maybe_adapt();
    }

    /// The parallel twin of
    /// [`handle_sequenced_updates`](Self::handle_sequenced_updates): shard
    /// partitions run on the persistent worker pool of the pipelined
    /// front-end (see [`crate::pipeline`]), sharing one [`SyncProvider`].
    /// The coordinator streams the per-shard response chunks into the
    /// merge as they complete, so the output is identical to the
    /// sequential path regardless of thread count or arrival order. With
    /// a WAL attached the workers append their partition records to the
    /// shard logs they are lent; the marker stays coordinator-written and
    /// last, so the durability contract is unchanged.
    pub fn handle_sequenced_updates_parallel<P: SyncProvider>(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &P,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)>
    where
        B: Send + 'static,
    {
        let mut out = Vec::new();
        self.handle_sequenced_updates_parallel_into(updates, provider, now, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`handle_sequenced_updates_parallel`](Self::handle_sequenced_updates_parallel):
    /// **appends** the batch's responses to `out`. With a caller-reused
    /// `out`, a steady-state pipelined batch allocates nothing — ring
    /// slots, partitions, and response chunks all recirculate warmed
    /// buffers between the coordinator and the workers.
    pub fn handle_sequenced_updates_parallel_into<P: SyncProvider>(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &P,
        now: f64,
        out: &mut Vec<(ObjectId, UpdateResponse)>,
    ) where
        B: Send + 'static,
    {
        // One shard or one thread pipelines nothing; a poisoned WAL
        // refuses log checkouts. All three take the (output-identical)
        // sequential path, which also owns the WAL hook for them.
        if self.shards.len() == 1 || self.threads() <= 1 || self.wal_poisoned() {
            let mut adapter = SyncAdapter(provider);
            self.handle_sequenced_updates_into(updates, &mut adapter, now, out);
            return;
        }
        self.pipelined_batch(updates, provider, now, out);
    }

    /// Builds (or rebuilds) the standing pipeline for `workers` threads.
    fn ensure_pipeline(&mut self, workers: usize)
    where
        B: Send + 'static,
    {
        let want = workers.min(self.shards.len()).max(1);
        let stale = match &self.pipeline {
            Some(p) => p.workers != want || p.cells.len() != self.shards.len(),
            None => true,
        };
        if stale {
            self.pipeline = Some(PipelineState::new(self.shards.len(), workers));
        }
    }

    /// One batch through the pipelined front-end: submit every non-empty
    /// partition (moving the shard server, its partition buffer, and —
    /// under a WAL — its partition log into the job slot), then drain the
    /// result rings, answering probe RPCs and merging response chunks as
    /// they stream back. See the module docs of [`crate::pipeline`] for
    /// the determinism argument.
    fn pipelined_batch<P: SyncProvider>(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &P,
        now: f64,
        out: &mut Vec<(ObjectId, UpdateResponse)>,
    ) where
        B: Send + 'static,
    {
        let _span = srb_obs::span!("sharded.pipeline");
        let n = self.shards.len();
        let workers = self.threads();
        self.ensure_pipeline(workers);

        // The WAL (when attached) is held for the whole batch: shard logs
        // are lent to the workers at submission and returned with each
        // `Done`; the marker is written only after the full drain.
        let mut wal = self.wal.take();
        let mut batches = self.partition(updates);
        // Marker counts cover every shard, zeros included (replay skips
        // zero-count shards), so they are derived before submission.
        let counts: Option<Vec<u32>> =
            wal.as_ref().map(|_| batches.iter().map(|b| b.len() as u32).collect());

        let mut durations = std::mem::take(&mut self.scratch.durations);
        durations.clear();
        let mut transcripts = std::mem::take(&mut self.scratch.transcripts);
        transcripts.resize_with(n, Vec::new);
        transcripts.truncate(n);
        for t in &mut transcripts {
            t.clear();
        }
        let mut tables = std::mem::take(&mut self.scratch.tables);
        tables.resize_with(n, Vec::new);
        tables.truncate(n);
        // When the provider exposes a dense snapshot each worker gets a
        // private copy and answers its probes locally; otherwise the
        // tables stay empty and every probe takes the ring RPC.
        let snap = provider.snapshot();
        let mut pending = std::mem::take(&mut self.scratch.pending);
        pending.clear();
        pending.resize(n, false);
        let mut chunk = std::mem::take(&mut self.scratch.chunk);
        let mut returned = std::mem::take(&mut self.scratch.returned);
        returned.clear();

        // Check every shard server out of the coordinator; busy shards go
        // to their workers, idle ones stay parked in `returned`.
        let mut servers = std::mem::take(&mut self.shards);
        returned.extend(servers.drain(..).map(Some));

        let pipeline = self.pipeline.take().expect("pipeline built above");
        let start = out.len();
        let mut remaining = 0usize;
        for (i, batch) in batches.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut server = returned[i].take();
            let mut log = wal.as_mut().and_then(|w| w.take_shard_log(i));
            let cell = &pipeline.cells[i];
            tables[i].clear();
            if let Some(s) = snap {
                tables[i].extend_from_slice(s);
            }
            let pushed = cell.jobs.try_push(|slot| {
                slot.kind = JobKind::Batch;
                slot.server = server.take();
                std::mem::swap(&mut slot.updates, batch);
                slot.now = now;
                slot.log = log.take();
                std::mem::swap(&mut slot.table, &mut tables[i]);
                std::mem::swap(&mut slot.probe_log, &mut transcripts[i]);
            });
            assert!(pushed, "job ring holds stale entries between batches");
            cell.unpark_worker();
            pending[i] = true;
            remaining += 1;
        }
        srb_obs::gauge!("sharded.pipeline_queue_depth").set(remaining as u64);

        // Streaming merge: consume each shard's results as they arrive.
        // Entries land in arrival order; the stable sort in
        // `finish_batch_in` restores the deterministic global order.
        let mut wait_ns = 0u64;
        let mut worker_panic: Option<String> = None;
        while remaining > 0 {
            let mut progress = false;
            for i in 0..n {
                if !pending[i] {
                    continue;
                }
                let cell = &pipeline.cells[i];
                loop {
                    let mut probe_req: Option<ObjectId> = None;
                    let mut got_chunk = false;
                    let mut done = None;
                    let popped = cell.results.try_pop(|slot| match slot.kind {
                        ResultKind::Probe => {
                            slot.kind = ResultKind::Idle;
                            probe_req = Some(slot.probe);
                        }
                        ResultKind::Chunk => {
                            slot.kind = ResultKind::Idle;
                            std::mem::swap(&mut chunk, &mut slot.entries);
                            got_chunk = true;
                        }
                        ResultKind::Done => {
                            slot.kind = ResultKind::Idle;
                            std::mem::swap(&mut batches[i], &mut slot.updates);
                            // The worker hands back the position table and
                            // its probe transcript (recorded in probe
                            // order) with the final result.
                            std::mem::swap(&mut tables[i], &mut slot.table);
                            std::mem::swap(&mut transcripts[i], &mut slot.probe_log);
                            done = Some((
                                slot.server.take(),
                                slot.log.take(),
                                std::mem::replace(&mut slot.log_err, false),
                                slot.duration_ns.take(),
                                slot.panic.take(),
                            ));
                        }
                        ResultKind::Idle => debug_assert!(false, "popped an idle result slot"),
                    });
                    if !popped {
                        break;
                    }
                    progress = true;
                    if let Some(oid) = probe_req {
                        // The worker records the answer into its own
                        // transcript, so the coordinator only relays it.
                        let pos = provider.probe(oid);
                        let answered = cell.jobs.try_push(|slot| {
                            slot.kind = JobKind::ProbeAnswer;
                            slot.answer = pos;
                        });
                        assert!(answered, "probe-answer slot unavailable");
                        cell.unpark_worker();
                    }
                    if got_chunk {
                        out.append(&mut chunk);
                    }
                    if let Some((server, log, log_err, dur, panicked)) = done {
                        returned[i] = Some(server.expect("Done returns the shard server"));
                        if let Some(w) = wal.as_mut() {
                            if let Some(l) = log {
                                w.put_shard_log(i, l);
                            }
                            if log_err {
                                w.poison();
                            }
                        }
                        if let Some(ns) = dur {
                            self.shard_batch_ns[i].record(ns);
                            srb_obs::histogram!("sharded.worker_busy_ns").record(ns);
                            durations.push(ns);
                        }
                        if worker_panic.is_none() {
                            worker_panic = panicked;
                        }
                        pending[i] = false;
                        remaining -= 1;
                        srb_obs::gauge!("sharded.pipeline_queue_depth").set(remaining as u64);
                        break;
                    }
                }
            }
            if !progress && remaining > 0 {
                // Register before re-checking so a notify between the
                // check and the park is never lost; the timeout is only
                // insurance on top of that.
                pipeline.signal.register();
                let ready = (0..n).any(|i| pending[i] && pipeline.cells[i].results.len() > 0);
                if !ready {
                    let watch = srb_obs::Stopwatch::start();
                    std::thread::park_timeout(MERGE_PARK);
                    if let Some(ns) = watch.elapsed_ns() {
                        wait_ns += ns;
                    }
                }
                pipeline.signal.clear();
            }
        }
        srb_obs::histogram!("sharded.merge_wait_ns").record(wait_ns);

        // Every server is home; restore the coordinator's state before
        // the merge (which walks the shards) or any panic propagation.
        servers.extend(returned.iter_mut().map(|s| s.take().expect("all shards returned")));
        self.shards = servers;
        self.pipeline = Some(pipeline);
        record_straggler_gap(&durations);
        self.scratch.durations = durations;
        self.scratch.pending = pending;
        self.scratch.chunk = chunk;
        self.scratch.returned = returned;
        self.scratch.batches = batches;
        self.scratch.transcripts = transcripts;
        self.scratch.tables = tables;

        if let Some(msg) = worker_panic {
            // The panicking shard may hold partial batch state. Nothing
            // was committed (no marker references the partitions), and
            // poisoning refuses further writes against divergent memory.
            if let Some(w) = wal.as_mut() {
                w.poison();
            }
            self.wal = wal;
            panic!("shard worker panicked: {msg}");
        }

        if let Some(mut w) = wal {
            // Replay runs each shard's partition to completion in shard
            // order, then the coordinator merge — exactly the
            // concatenation of the per-shard transcripts plus the
            // merge-time probes the recorder captures below.
            let mut transcripts = std::mem::take(&mut self.scratch.transcripts);
            for t in &mut transcripts {
                w.extend_probes(t);
            }
            self.scratch.transcripts = transcripts;
            {
                let mut adapter = SyncAdapter(provider);
                let mut rp = w.recorder(&mut adapter);
                self.finish_batch_in(out, start, &mut rp, now);
            }
            // Adapt before the marker commits the batch: the controller's
            // decision state (and any migration it makes) must be inside
            // the state a post-marker checkpoint captures, and replay —
            // which runs the same entry points without a WAL — re-makes
            // the decision at exactly this point.
            self.maybe_adapt();
            w.log_batch_marker(now, &counts.expect("counts derived with the wal"));
            self.wal = Some(w);
            self.wal_post_op();
        } else {
            let mut adapter = SyncAdapter(provider);
            self.finish_batch_in(out, start, &mut adapter, now);
            self.maybe_adapt();
        }
    }

    // ------------------------------------------------------------------
    // Deferred probes
    // ------------------------------------------------------------------

    /// The earliest pending deferred-probe time across all shards.
    pub fn next_deferred_due(&mut self) -> Option<f64> {
        // Logged even though it looks like a read: each shard lazily pops
        // stale timer entries, mutating the deferred heaps checkpoints
        // serialize.
        if let Some(mut w) = self.wal.take() {
            let result = self.next_deferred_due();
            w.log_next_due();
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        self.shards.iter_mut().filter_map(|s| s.next_deferred_due()).min_by(|a, b| a.total_cmp(b))
    }

    /// Fires every deferred probe due at or before `now` on every shard,
    /// then re-merges affected queries (batch response contract as in
    /// [`handle_sequenced_updates`](Self::handle_sequenced_updates)).
    pub fn process_deferred(
        &mut self,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.process_deferred(&mut rp, now)
            };
            w.log_process_deferred(now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        if self.shards.len() == 1 {
            return self.shards[0].process_deferred(provider, now);
        }
        let mut responses = Vec::new();
        for shard in &mut self.shards {
            responses.extend(shard.process_deferred(provider, now));
        }
        self.finish_batch_in(&mut responses, 0, provider, now);
        responses
    }

    // ------------------------------------------------------------------
    // Adaptive backend plane
    // ------------------------------------------------------------------

    /// Runs the adaptive controller at a batch boundary. No-op (one
    /// `Option` check) unless the engine was built with
    /// `BackendConfig::Adaptive`. Only the batch entry points adapt —
    /// single updates, registrations, and deferred-probe drains are
    /// deliberately excluded so the batch cadence (and therefore every
    /// controller decision) is a deterministic function of the logged
    /// operation stream.
    ///
    /// Every signal the controller reads is part of the per-shard
    /// serialized state, and this runs *inside* the WAL recursion (the
    /// coordinator's log hooks re-enter with the WAL detached), so
    /// recovery replays each decision at exactly the batch that
    /// originally made it.
    fn maybe_adapt(&mut self) {
        let Some(mut ctl) = self.adaptive.take() else { return };
        if ctl.note_batch() {
            for i in 0..self.shards.len() {
                let shard = &self.shards[i];
                let sig = ShardSignals {
                    len: shard.object_count(),
                    visits: shard.index_visits(),
                    updates: shard.costs().source_updates,
                    kind: shard.backend_kind(),
                    grid_m: shard.object_index().tree().grid_resolution(),
                };
                if let Some(action) = ctl.decide(i, sig) {
                    let migrated = self.shards[i].migrate_index(&ctl.config_for(action));
                    debug_assert!(migrated, "adaptive engines run DynBackend shards");
                    match action {
                        AdaptAction::Migrate(_) => {
                            srb_obs::counter!("index.adaptive.migrations").inc();
                        }
                        AdaptAction::Retune(_) => {
                            srb_obs::counter!("index.adaptive.retunes").inc();
                        }
                    }
                }
            }
        }
        self.adaptive = Some(ctl);
    }

    /// Controller-triggered backend migrations so far (0 on non-adaptive
    /// engines). Deterministic — read this in tests instead of the
    /// process-global telemetry registry, which parallel tests share.
    pub fn adaptive_migrations(&self) -> u64 {
        self.adaptive.as_ref().map_or(0, |c| c.migrations())
    }

    /// Controller-triggered grid retunes so far (0 on non-adaptive
    /// engines).
    pub fn adaptive_retunes(&self) -> u64 {
        self.adaptive.as_ref().map_or(0, |c| c.retunes())
    }

    /// Explicitly live-migrates one shard's index to `backend` (see
    /// [`Server::migrate_backend`]) — the post-recovery escape hatch when
    /// a checkpoint's backend no longer matches the deployment's wishes,
    /// and the way to hand-place per-shard backends on a `DynBackend`
    /// fleet. Semantically a no-op: safe regions, query results, and
    /// probe behavior are unchanged. Returns `false` when `B` cannot
    /// represent `backend`.
    ///
    /// With durability attached this forces a coordinator checkpoint:
    /// explicit migrations are not log records, so the checkpoint is what
    /// carries the new structure across a crash.
    pub fn migrate_shard(&mut self, shard: usize, backend: &srb_index::BackendConfig) -> bool {
        if !self.shards[shard].migrate_index(backend) {
            return false;
        }
        srb_obs::counter!("index.adaptive.explicit_migrations").inc();
        if self.wal.is_some() {
            self.checkpoint();
        }
        true
    }

    // ------------------------------------------------------------------
    // Durability plane (coordinator WAL + checkpoints + recovery)
    // ------------------------------------------------------------------

    /// Creates the configured durability store — one arbiter log plus one
    /// partition log per shard — and attaches a fresh coordinator WAL,
    /// rooted at a checkpoint of the whole fleet's state.
    pub fn attach_durability(&mut self) -> Result<(), RecoveryError> {
        let d = self.config.durability;
        let Some(dir) = d.dir else { return Err(RecoveryError::Disabled) };
        let mut payload = Vec::new();
        self.encode_state(&mut payload);
        let store = srb_durable::Store::create(
            Path::new(dir),
            self.shards.len() + 1,
            d.policy,
            d.group_ops,
            &payload,
        )?;
        self.wal = Some(Box::new(Wal::new(store, d.checkpoint_ops)));
        Ok(())
    }

    /// Rebuilds a sharded server from the durability directory in
    /// `config.durability`: loads the newest valid checkpoint, replays the
    /// arbiter log against the shard partition logs generation by
    /// generation, and reattaches the WAL. `shards` must match the crashed
    /// instance's shard count (it also fixes the expected log count).
    /// Returns the server and the number of replayed operations.
    pub fn recover(config: ServerConfig, shards: usize) -> Result<(Self, usize), RecoveryError> {
        let d = config.durability;
        let Some(dir) = d.dir else { return Err(RecoveryError::Disabled) };
        let rec = srb_durable::Store::recover(Path::new(dir), shards + 1, d.policy, d.group_ops)?;
        let mut server = Self::decode_state(&config, shards, &rec.payload)?;
        let mut replayed = 0usize;
        for genf in &rec.generations {
            // Partition cursors restart with each generation: a checkpoint
            // rotation truncates every log together.
            let mut cursors = vec![0usize; shards];
            for payload in &genf.logs[0] {
                server.apply_coord_record(payload, &genf.logs, &mut cursors)?;
                replayed += 1;
            }
            // Partition records past the last marker are orphans of a
            // crash mid-operation: the marker is the commit point, so they
            // are deliberately ignored.
        }
        server.wal = Some(Box::new(Wal::new(rec.store, d.checkpoint_ops)));
        Ok((server, replayed))
    }

    /// True when the coordinator WAL is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// True when an earlier I/O failure poisoned the WAL. A poisoned
    /// coordinator keeps serving from memory but persists nothing further;
    /// the only path back is [`ShardedServer::recover`].
    pub fn wal_poisoned(&self) -> bool {
        self.wal.as_ref().map(|w| w.poisoned()).unwrap_or(false)
    }

    /// The active checkpoint generation, when durability is on.
    pub fn wal_generation(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.generation())
    }

    /// Forces every buffered log record to stable storage now.
    pub fn sync_wal(&mut self) {
        if let Some(w) = self.wal.as_mut() {
            w.sync();
        }
    }

    /// Rotates the durability store to a fresh checkpoint of the current
    /// fleet state, truncating the replay tail. Returns `false` when no
    /// WAL is attached or the rotation failed (which poisons the WAL).
    pub fn checkpoint(&mut self) -> bool {
        let Some(mut w) = self.wal.take() else { return false };
        let mut payload = Vec::new();
        self.encode_state(&mut payload);
        let ok = w.checkpoint(&payload).is_ok();
        self.wal = Some(w);
        ok
    }

    /// A 64-bit digest of the full serialized fleet state — what the crash
    /// harness compares between a recovered run and its golden twin.
    pub fn state_digest(&self) -> u64 {
        let mut buf = Vec::new();
        self.encode_state(&mut buf);
        wal::fnv1a64(&buf)
    }

    /// Group-commit + checkpoint-cadence bookkeeping after one logged
    /// operation.
    fn wal_post_op(&mut self) {
        let due = match self.wal.as_mut() {
            Some(w) => w.note_op(),
            None => false,
        };
        if due {
            self.checkpoint();
        }
    }

    /// Serializes the complete fleet state: config fingerprint, shard
    /// count, coordinator counters and maps, then every shard's own state
    /// in shard order. Scratch buffers, thread overrides, and telemetry
    /// handles carry no state and are excluded.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        put_u64(out, wal::config_fingerprint(&self.config));
        put_usize(out, self.shards.len());
        let w = &self.coord_work;
        for v in [
            w.evaluations,
            w.safe_regions,
            w.probes_avoided,
            w.ordering_fallbacks,
            w.probes_range,
            w.probes_knn_eval,
            w.probes_radius,
            w.probes_reeval,
            w.probes_neighbor,
            w.stale_seq_drops,
            w.unknown_object_drops,
            w.lease_probes,
            w.regrants,
        ] {
            put_u64(out, v);
        }
        put_usize(out, self.owner.len());
        for o in &self.owner {
            match o {
                None => put_u8(out, 0),
                Some(s) => {
                    put_u8(out, 1);
                    put_u32(out, *s);
                }
            }
        }
        put_usize(out, self.specs.len());
        for s in &self.specs {
            match s {
                None => put_u8(out, 0),
                Some(spec) => {
                    put_u8(out, 1);
                    wal::put_spec(out, spec);
                }
            }
        }
        put_usize(out, self.merged.len());
        for m in &self.merged {
            match m {
                None => put_u8(out, 0),
                Some(rs) => {
                    put_u8(out, 1);
                    put_usize(out, rs.len());
                    for o in rs {
                        put_u32(out, o.0);
                    }
                }
            }
        }
        match &self.adaptive {
            None => put_u8(out, 0),
            Some(ctl) => {
                put_u8(out, 1);
                ctl.encode_state(out);
            }
        }
        for s in &self.shards {
            s.encode_state(out);
        }
    }

    /// Rebuilds a sharded server from a checkpoint payload. The WAL is
    /// *not* attached — [`ShardedServer::recover`] does that after replay.
    pub(crate) fn decode_state(
        config: &ServerConfig,
        shards: usize,
        payload: &[u8],
    ) -> Result<Self, RecoveryError> {
        let mut dec = srb_durable::Dec::new(payload);
        if dec.u64()? != wal::config_fingerprint(config) {
            return Err(RecoveryError::ConfigMismatch);
        }
        if dec.usize()? != shards {
            return Err(RecoveryError::Corrupt("checkpoint shard count mismatch"));
        }
        let coord_work = WorkStats {
            evaluations: dec.u64()?,
            safe_regions: dec.u64()?,
            probes_avoided: dec.u64()?,
            ordering_fallbacks: dec.u64()?,
            probes_range: dec.u64()?,
            probes_knn_eval: dec.u64()?,
            probes_radius: dec.u64()?,
            probes_reeval: dec.u64()?,
            probes_neighbor: dec.u64()?,
            stale_seq_drops: dec.u64()?,
            unknown_object_drops: dec.u64()?,
            lease_probes: dec.u64()?,
            regrants: dec.u64()?,
        };
        let n_owner = dec.len(1)?;
        let mut owner = Vec::with_capacity(n_owner);
        for _ in 0..n_owner {
            owner.push(match dec.u8()? {
                0 => None,
                1 => {
                    let s = dec.u32()?;
                    if s as usize >= shards {
                        return Err(RecoveryError::Corrupt("owner names a missing shard"));
                    }
                    Some(s)
                }
                _ => return Err(RecoveryError::Corrupt("bad owner tag")),
            });
        }
        let n_specs = dec.len(1)?;
        let mut specs = Vec::with_capacity(n_specs);
        for _ in 0..n_specs {
            specs.push(match dec.u8()? {
                0 => None,
                1 => Some(wal::dec_spec(&mut dec)?),
                _ => return Err(RecoveryError::Corrupt("bad spec tag")),
            });
        }
        let n_merged = dec.len(1)?;
        let mut merged = Vec::with_capacity(n_merged);
        for _ in 0..n_merged {
            merged.push(match dec.u8()? {
                0 => None,
                1 => {
                    let n = dec.len(4)?;
                    let mut rs = Vec::with_capacity(n);
                    for _ in 0..n {
                        rs.push(ObjectId(dec.u32()?));
                    }
                    Some(rs)
                }
                _ => return Err(RecoveryError::Corrupt("bad merged tag")),
            });
        }
        // The controller tag must agree with the config (whose fingerprint
        // was already checked): adaptive engines always checkpoint their
        // decision state, non-adaptive engines never do.
        let adaptive = match (dec.u8()?, config.backend) {
            (0, srb_index::BackendConfig::Adaptive(_))
            | (1, srb_index::BackendConfig::RStar(_))
            | (1, srb_index::BackendConfig::Grid(_)) => {
                return Err(RecoveryError::Corrupt("controller tag disagrees with config"))
            }
            (0, _) => None,
            (1, srb_index::BackendConfig::Adaptive(ac)) => {
                Some(AdaptiveController::decode_state(ac, shards, &mut dec)?)
            }
            _ => return Err(RecoveryError::Corrupt("bad controller tag")),
        };
        let shard_config = ServerConfig { durability: DurabilityConfig::default(), ..*config };
        let mut shard_servers = Vec::with_capacity(shards);
        for _ in 0..shards {
            shard_servers.push(Server::decode_state_from(&shard_config, &mut dec)?);
        }
        dec.finish()?;
        Ok(ShardedServer {
            shards: shard_servers,
            owner,
            specs,
            merged,
            coord_work,
            threads: None,
            shard_batch_ns: (0..shards)
                .map(|i| srb_obs::registry().histogram(&format!("sharded.shard{i}.batch_ns")))
                .collect(),
            scratch: CoordScratch::default(),
            wal: None,
            pipeline: None,
            adaptive,
            config: *config,
        })
    }

    /// Partitions a sequenced batch by owning shard and appends each
    /// non-empty partition to its shard log. Returns the per-shard update
    /// counts for the marker record.
    fn wal_partition_seq(&self, updates: &[SequencedUpdate], w: &mut Wal) -> Vec<u32> {
        let mut parts: Vec<Vec<SequencedUpdate>> = vec![Vec::new(); self.shards.len()];
        for &u in updates {
            // Unknown objects go to shard 0, matching `partition`.
            parts[self.owner_of(u.id).unwrap_or(0)].push(u);
        }
        let counts = parts.iter().map(|p| p.len() as u32).collect();
        for (i, p) in parts.iter().enumerate() {
            if !p.is_empty() {
                w.append_part_seq(i, p);
            }
        }
        counts
    }

    /// Raw-batch twin of [`wal_partition_seq`](Self::wal_partition_seq).
    fn wal_partition_raw(&self, updates: &[(ObjectId, Point)], w: &mut Wal) -> Vec<u32> {
        let mut parts: Vec<Vec<(ObjectId, Point)>> = vec![Vec::new(); self.shards.len()];
        for &u in updates {
            parts[self.owner_of(u.0).unwrap_or(0)].push(u);
        }
        let counts = parts.iter().map(|p| p.len() as u32).collect();
        for (i, p) in parts.iter().enumerate() {
            if !p.is_empty() {
                w.append_part_raw(i, p);
            }
        }
        counts
    }

    /// Replays one arbiter-log record through the public entry points.
    /// Batch markers pull their partitions from the shard logs at
    /// `cursors`; every structural mismatch is a typed error, never a
    /// panic.
    fn apply_coord_record(
        &mut self,
        payload: &[u8],
        gen_logs: &[Vec<Vec<u8>>],
        cursors: &mut [usize],
    ) -> Result<(), RecoveryError> {
        match wal::decode_record(payload)? {
            Record::AddObject { id, pos, now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.add_object(id, pos, &mut rp, now);
                check_replay(&rp)
            }
            Record::RemoveObject { id, now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.remove_object(id, &mut rp, now);
                check_replay(&rp)
            }
            Record::RegisterQuery { spec, now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.register_query(spec, &mut rp, now);
                check_replay(&rp)
            }
            Record::DeregisterQuery { id } => {
                let _ = self.deregister_query(id);
                Ok(())
            }
            Record::Update { id, pos, now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.handle_location_update(id, pos, &mut rp, now);
                check_replay(&rp)
            }
            Record::Batch { now, updates, shard_counts, probes } => {
                if !updates.is_empty() {
                    return Err(RecoveryError::Corrupt("inline batch in a sharded log"));
                }
                let updates = self.take_partitions(&shard_counts, gen_logs, cursors, false)?;
                let seq = match updates {
                    Partitions::Seq(v) => v,
                    Partitions::Raw(_) => unreachable!("seq partitions requested"),
                };
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.handle_sequenced_updates(&seq, &mut rp, now);
                check_replay(&rp)
            }
            Record::RawBatch { now, updates, shard_counts, probes } => {
                if !updates.is_empty() {
                    return Err(RecoveryError::Corrupt("inline batch in a sharded log"));
                }
                let updates = self.take_partitions(&shard_counts, gen_logs, cursors, true)?;
                let raw = match updates {
                    Partitions::Raw(v) => v,
                    Partitions::Seq(_) => unreachable!("raw partitions requested"),
                };
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.handle_location_updates(&raw, &mut rp, now);
                check_replay(&rp)
            }
            Record::ProcessDeferred { now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.process_deferred(&mut rp, now);
                check_replay(&rp)
            }
            Record::NextDue => {
                let _ = self.next_deferred_due();
                Ok(())
            }
        }
    }

    /// Reassembles a marker's batch from the shard partition logs,
    /// advancing each referenced shard's cursor. The reassembled order
    /// groups by shard, which is execution-equivalent to the original
    /// interleaving: batch processing partitions by owner anyway, and
    /// relative order within a shard is preserved.
    fn take_partitions(
        &self,
        counts: &[u32],
        gen_logs: &[Vec<Vec<u8>>],
        cursors: &mut [usize],
        raw: bool,
    ) -> Result<Partitions, RecoveryError> {
        if counts.len() != self.shards.len() {
            return Err(RecoveryError::Corrupt("marker shard count mismatch"));
        }
        let mut seq: Vec<SequencedUpdate> = Vec::new();
        let mut raws: Vec<(ObjectId, Point)> = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let rec = gen_logs[i + 1]
                .get(cursors[i])
                .ok_or(RecoveryError::Corrupt("missing shard partition"))?;
            cursors[i] += 1;
            if raw {
                let part = wal::decode_part_raw(rec)?;
                if part.len() != c as usize {
                    return Err(RecoveryError::Corrupt("partition length mismatch"));
                }
                raws.extend(part);
            } else {
                let part = wal::decode_part_seq(rec)?;
                if part.len() != c as usize {
                    return Err(RecoveryError::Corrupt("partition length mismatch"));
                }
                seq.extend(part);
            }
        }
        Ok(if raw { Partitions::Raw(raws) } else { Partitions::Seq(seq) })
    }

    // ------------------------------------------------------------------
    // Coordinator internals
    // ------------------------------------------------------------------

    fn threads(&self) -> usize {
        let t = self.threads.unwrap_or_else(configured_threads).max(1);
        srb_obs::gauge!("sharded.threads").set(t as u64);
        t
    }

    fn owner_of(&self, id: ObjectId) -> Option<usize> {
        self.owner.get(id.index()).copied().flatten().map(|s| s as usize)
    }

    fn owning_shard(&self, id: ObjectId) -> Option<&Server<B>> {
        if self.shards.len() == 1 {
            return Some(&self.shards[0]);
        }
        Some(&self.shards[self.owner_of(id)?])
    }

    /// The shard a registration at `pos` lands on: a hash of the grid cell,
    /// modulo the shard count. The assignment is fixed at registration time
    /// — later movement never migrates the object, because the coordinator
    /// union keeps query answers exact regardless of the partition.
    fn assign_shard(&self, pos: Point) -> usize {
        let grid = self.shards[0].query_processor().grid();
        let (i, j) = grid.cell_of(pos);
        let key = (i as u64) * (grid.m() as u64) + j as u64;
        (splitmix64(key) % self.shards.len() as u64) as usize
    }

    fn next_seq(&self, id: ObjectId) -> u64 {
        self.owning_shard(id).and_then(|s| s.last_seq(id)).map_or(1, |s| s + 1)
    }

    fn record_spec(&mut self, id: QueryId, spec: QuerySpec) {
        if self.specs.len() <= id.index() {
            self.specs.resize(id.index() + 1, None);
        }
        self.specs[id.index()] = Some(spec);
    }

    /// Splits `updates` into per-shard batches, reusing the coordinator's
    /// partition buffers (the caller returns them via
    /// `self.scratch.batches = batches` when done).
    fn partition(&mut self, updates: &[SequencedUpdate]) -> Vec<Vec<SequencedUpdate>> {
        let mut batches = std::mem::take(&mut self.scratch.batches);
        batches.resize_with(self.shards.len(), Vec::new);
        batches.truncate(self.shards.len());
        for b in &mut batches {
            b.clear();
        }
        for &u in updates {
            // Unknown objects go to shard 0, which drops and counts them.
            batches[self.owner_of(u.id).unwrap_or(0)].push(u);
        }
        batches
    }

    /// Adds every kNN query holding a moved/probed object in some shard's
    /// local result to the trigger set: an in-place position change can
    /// reorder the global ranking without changing any shard-local result.
    /// `moved` must be sorted (the callers sort + dedup their scratch
    /// buffer before the scan).
    fn membership_triggers(&self, moved: &[ObjectId], triggers: &mut BTreeSet<QueryId>) {
        debug_assert!(
            moved.windows(2).all(|w| w[0] <= w[1]),
            "membership scan expects a sorted moved set"
        );
        for (qi, spec) in self.specs.iter().enumerate() {
            if !matches!(spec, Some(QuerySpec::Knn { .. })) {
                continue;
            }
            let qid = QueryId(qi as u32);
            if triggers.contains(&qid) {
                continue;
            }
            let hit = self.shards.iter().any(|shard| {
                shard
                    .results(qid)
                    .is_some_and(|rs| rs.iter().any(|o| moved.binary_search(o).is_ok()))
            });
            if hit {
                triggers.insert(qid);
            }
        }
    }

    /// Shared batch tail: derive the trigger set from the shard responses in
    /// `out[start..]`, re-merge, and sort that tail into the deterministic
    /// global response (changes and coordinator probes ride its first
    /// entry).
    fn finish_batch_in(
        &mut self,
        out: &mut [(ObjectId, UpdateResponse)],
        start: usize,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) {
        let mut triggers: BTreeSet<QueryId> = BTreeSet::new();
        let mut moved = std::mem::take(&mut self.scratch.moved);
        moved.clear();
        for (oid, resp) in &mut out[start..] {
            for ch in resp.changes.drain(..) {
                triggers.insert(ch.query);
            }
            moved.extend(resp.probed.iter().map(|&(o, _)| o));
            // Regrant entries did not touch the object state; only entries
            // whose object was contacted at `now` represent movement.
            if self.owning_shard(*oid).and_then(|s| s.last_known(*oid)).map(|(_, t)| t) == Some(now)
            {
                moved.push(*oid);
            }
        }
        moved.sort_unstable();
        moved.dedup();
        self.membership_triggers(&moved, &mut triggers);
        self.scratch.moved = moved;
        let (probed, changes) = self.merge_after(triggers, provider, now);
        out[start..].sort_by_key(|&(oid, _)| oid);
        if let Some(first) = out.get_mut(start) {
            first.1.probed.extend(probed);
            first.1.changes = changes;
        } else {
            debug_assert!(
                probed.is_empty() && changes.is_empty(),
                "merge produced output without any shard response"
            );
        }
    }

    /// Re-merges every query in `queue` to fixpoint. Coordinator probes made
    /// along the way can change *other* queries' shard-local results; those
    /// queries are appended to the queue. Returns the safe regions granted
    /// by coordinator probes and the global result changes in ascending
    /// [`QueryId`] order.
    fn merge_after(
        &mut self,
        mut queue: BTreeSet<QueryId>,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> (Vec<(ObjectId, Rect)>, Vec<ResultChange>) {
        let _span = srb_obs::span!("sharded.merge");
        let mut probed: Vec<(ObjectId, Rect)> = Vec::new();
        let mut changed: BTreeMap<QueryId, Vec<ObjectId>> = BTreeMap::new();
        let mut rounds = 0usize;
        while let Some(qid) = queue.pop_first() {
            rounds += 1;
            assert!(rounds <= 100_000, "cross-shard merge failed to converge");
            let Some(spec) = self.specs.get(qid.index()).copied().flatten() else { continue };
            let new = match spec {
                QuerySpec::Range { .. } => self.merge_range(qid),
                QuerySpec::Knn { center, k, order_sensitive } => self.merge_knn(
                    qid,
                    center,
                    k,
                    order_sensitive,
                    &mut probed,
                    &mut queue,
                    provider,
                    now,
                ),
            };
            if self.merged.len() <= qid.index() {
                self.merged.resize(qid.index() + 1, None);
            }
            if self.merged[qid.index()].as_ref() != Some(&new) {
                self.merged[qid.index()] = Some(new.clone());
                changed.insert(qid, new);
            }
        }
        srb_obs::counter!("sharded.merge_rounds").add(rounds as u64);
        let changes =
            changed.into_iter().map(|(query, results)| ResultChange { query, results }).collect();
        (probed, changes)
    }

    /// Objects live on exactly one shard, so a range query's global answer
    /// is the concatenation of per-shard answers, sorted for determinism.
    fn merge_range(&self, qid: QueryId) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = Vec::new();
        for shard in &self.shards {
            if let Some(rs) = shard.results(qid) {
                out.extend_from_slice(rs);
            }
        }
        out.sort_unstable();
        out
    }

    /// Ranks the union of per-shard top-k lists by distance intervals,
    /// probing (through the owning shard) until every rank that matters is
    /// separated. See the module docs for the guarantees.
    #[allow(clippy::too_many_arguments)]
    fn merge_knn(
        &mut self,
        qid: QueryId,
        center: Point,
        k: usize,
        order_sensitive: bool,
        probed: &mut Vec<(ObjectId, Rect)>,
        queue: &mut BTreeSet<QueryId>,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<ObjectId> {
        let mut guard = 0usize;
        loop {
            guard += 1;
            assert!(guard <= 10_000, "cross-shard kNN ranking failed to converge");
            // Candidate union, rebuilt each round: an ingested probe can
            // reorder the owning shard's local list.
            let mut iv: Vec<(f64, f64, ObjectId)> = Vec::new();
            for shard in &self.shards {
                let Some(rs) = shard.results(qid) else { continue };
                for &o in rs {
                    if iv.iter().all(|e| e.2 != o) {
                        let (lo, hi) = self.bound_of(o, center, now);
                        iv.push((lo, hi, o));
                    }
                }
            }
            iv.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
            let k_eff = k.min(iv.len());
            // Interval pairs that must be separated. Order-sensitive: every
            // adjacent pair through the k-boundary (proves the full order).
            // Unordered: every *selected* candidate against the first
            // unselected one — the boundary pair alone is not enough, since
            // a wide interval can sort into the top k by its lower bound
            // while its upper bound reaches past the boundary.
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            if order_sensitive {
                for i in 0..k_eff.min(iv.len().saturating_sub(1)) {
                    pairs.push((i, i + 1));
                }
            } else if iv.len() > k_eff {
                for i in 0..k_eff {
                    pairs.push((i, k_eff));
                }
            }
            let mut target: Option<ObjectId> = None;
            for (i, j) in pairs {
                let (a_lo, a_hi, a) = iv[i];
                let (b_lo, b_hi, b) = iv[j];
                if a_hi <= b_lo + EPS {
                    continue;
                }
                let a_exact = self.is_exact(a, now);
                let b_exact = self.is_exact(b, now);
                if a_exact && b_exact {
                    // A true tie: both distances are exact and equal (the
                    // sort put the smaller first otherwise); resolved by id.
                    continue;
                }
                target = Some(if a_exact {
                    b
                } else if b_exact || (a_hi - a_lo) >= (b_hi - b_lo) {
                    a
                } else {
                    b
                });
                break;
            }
            let Some(o) = target else {
                let mut out: Vec<ObjectId> = iv[..k_eff].iter().map(|e| e.2).collect();
                if !order_sensitive {
                    out.sort_unstable();
                }
                return out;
            };
            srb_obs::counter!("sharded.coordinator_probes").inc();
            let pos = provider.probe(o);
            let shard = self.owner_of(o).expect("candidate objects have owners");
            let resp = self.shards[shard].ingest_probe(o, pos, provider, now);
            probed.push((o, resp.safe_region));
            probed.extend(resp.probed);
            for ch in resp.changes {
                if ch.query != qid {
                    queue.insert(ch.query);
                }
            }
        }
    }

    /// Distance interval from the query point to `o`: degenerate when the
    /// object was contacted at `now` (its position is exact), the safe
    /// region's `[minDist, maxDist]` otherwise.
    fn bound_of(&self, o: ObjectId, center: Point, now: f64) -> (f64, f64) {
        let shard = self.owning_shard(o).expect("candidate objects have owners");
        if let Some((p, t)) = shard.last_known(o) {
            if t == now {
                let d = Rect::point(p).min_dist(center);
                return (d, d);
            }
        }
        let r = shard.safe_region(o).expect("candidate objects have regions");
        (r.min_dist(center), r.max_dist(center))
    }

    fn is_exact(&self, o: ObjectId, now: f64) -> bool {
        self.owning_shard(o).and_then(|s| s.last_known(o)).map(|(_, t)| t) == Some(now)
    }
}

/// A reassembled marker batch: either shape, matching the marker opcode.
enum Partitions {
    Seq(Vec<SequencedUpdate>),
    Raw(Vec<(ObjectId, Point)>),
}

/// Surfaces a replay that consumed its probe transcript incorrectly.
fn check_replay(rp: &ReplayProvider<'_>) -> Result<(), RecoveryError> {
    if rp.diverged() {
        Err(RecoveryError::Corrupt("replay diverged from the probe transcript"))
    } else {
        Ok(())
    }
}

/// Records the gap between the slowest and fastest shard of one batch —
/// the load-imbalance signal of the fan-out.
fn record_straggler_gap(durations: &[u64]) {
    if durations.len() > 1 {
        let max = durations.iter().copied().max().unwrap_or(0);
        let min = durations.iter().copied().min().unwrap_or(0);
        srb_obs::histogram!("sharded.straggler_gap_ns").record(max - min);
    }
}

/// SplitMix64 finalizer — a deterministic, well-mixed cell → shard hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::FnProvider;
    use srb_index::RStarTree;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads(Some("1")), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("64")), Some(64));
    }

    #[test]
    fn parse_threads_rejects_zero_and_garbage() {
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(parse_threads(Some("two")), None);
        assert_eq!(parse_threads(Some("1.5")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn configured_threads_never_returns_zero() {
        // Whatever the environment says, the fan-out must get at least one
        // worker (SRB_THREADS=0 falls back to the rayon default).
        assert!(configured_threads() >= 1);
    }

    fn world(n: usize, seed: u64) -> Vec<Point> {
        // Deterministic pseudo-random positions in the unit square.
        (0..n)
            .map(|i| {
                let h = splitmix64(seed.wrapping_add(i as u64 * 0x1234_5678));
                let x = (h >> 32) as f64 / u32::MAX as f64;
                let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
                Point::new(x.clamp(0.01, 0.99), y.clamp(0.01, 0.99))
            })
            .collect()
    }

    fn step(world: &mut [Point], round: u64) {
        for (i, p) in world.iter_mut().enumerate() {
            let h = splitmix64(round.wrapping_mul(31).wrapping_add(i as u64));
            let dx = ((h >> 32) as f64 / u32::MAX as f64 - 0.5) * 0.08;
            let dy = ((h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 - 0.5) * 0.08;
            p.x = (p.x + dx).clamp(0.0, 1.0);
            p.y = (p.y + dy).clamp(0.0, 1.0);
        }
    }

    /// Drives a plain Server and an N-shard ShardedServer through the same
    /// update stream and asserts global results agree at every step.
    fn assert_results_agree(n_shards: usize, specs: &[QuerySpec]) {
        let mut positions = world(24, 7);
        let mut plain = Server::with_defaults();
        let mut sharded = ShardedServer::new(ServerConfig::default(), n_shards);
        {
            let snapshot = positions.clone();
            let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
            for (i, &p) in snapshot.iter().enumerate() {
                plain.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
                sharded.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            }
            for &spec in specs {
                let a = plain.register_query(spec, &mut provider, 0.0);
                let b = sharded.register_query(spec, &mut provider, 0.0);
                assert_eq!(a.id, b.id);
            }
        }
        let mut seqs = vec![0u64; positions.len()];
        for round in 1..=20u64 {
            step(&mut positions, round);
            let now = round as f64 * 0.1;
            let mut batch = Vec::new();
            for (i, &p) in positions.iter().enumerate() {
                // Report only objects that left their (plain-server) safe
                // region, like real clients would.
                let out_of_region =
                    plain.safe_region(ObjectId(i as u32)).is_none_or(|r| !r.contains_point(p));
                if out_of_region {
                    seqs[i] += 1;
                    batch.push(SequencedUpdate { id: ObjectId(i as u32), pos: p, seq: seqs[i] });
                }
            }
            let snapshot = positions.clone();
            let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
            plain.handle_sequenced_updates(&batch, &mut provider, now);
            sharded.handle_sequenced_updates(&batch, &mut provider, now);
            plain.check_invariants_deep();
            sharded.check_invariants_deep();
            for (q, spec) in specs.iter().enumerate() {
                let qid = QueryId(q as u32);
                let mut a = plain.results(qid).unwrap().to_vec();
                let mut b = sharded.results(qid).unwrap().to_vec();
                if !matches!(spec, QuerySpec::Knn { order_sensitive: true, .. }) {
                    a.sort_unstable();
                    b.sort_unstable();
                }
                assert_eq!(a, b, "round {round}, query {qid}, shards {n_shards}");
            }
        }
    }

    #[test]
    fn one_shard_matches_plain_server_results() {
        assert_results_agree(
            1,
            &[
                QuerySpec::range(Rect::new(Point::new(0.2, 0.2), Point::new(0.6, 0.6))),
                QuerySpec::knn(Point::new(0.5, 0.5), 3),
            ],
        );
    }

    #[test]
    fn multi_shard_range_results_match_plain_server() {
        for n in [2, 3, 4] {
            assert_results_agree(
                n,
                &[
                    QuerySpec::range(Rect::new(Point::new(0.1, 0.1), Point::new(0.5, 0.7))),
                    QuerySpec::range(Rect::new(Point::new(0.4, 0.0), Point::new(0.9, 0.4))),
                ],
            );
        }
    }

    #[test]
    fn multi_shard_knn_results_match_plain_server() {
        for n in [2, 4] {
            assert_results_agree(
                n,
                &[
                    QuerySpec::knn(Point::new(0.5, 0.5), 3),
                    QuerySpec::knn_unordered(Point::new(0.2, 0.8), 2),
                ],
            );
        }
    }

    #[test]
    fn parallel_path_matches_sequential_path() {
        let mut positions = world(30, 11);
        let mut seq_server = ShardedServer::new(ServerConfig::default(), 4);
        let mut par_server = ShardedServer::new(ServerConfig::default(), 4).with_threads(4);
        {
            let snapshot = positions.clone();
            let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
            for (i, &p) in snapshot.iter().enumerate() {
                seq_server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
                par_server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            }
            for spec in [
                QuerySpec::range(Rect::new(Point::new(0.2, 0.2), Point::new(0.7, 0.7))),
                QuerySpec::knn(Point::new(0.4, 0.6), 4),
            ] {
                seq_server.register_query(spec, &mut provider, 0.0);
                par_server.register_query(spec, &mut provider, 0.0);
            }
        }
        let mut seqs = vec![0u64; positions.len()];
        for round in 1..=15u64 {
            step(&mut positions, round);
            let now = round as f64 * 0.1;
            let batch: Vec<SequencedUpdate> = positions
                .iter()
                .enumerate()
                .filter(|&(i, &p)| {
                    seq_server.safe_region(ObjectId(i as u32)).is_none_or(|r| !r.contains_point(p))
                })
                .map(|(i, &p)| {
                    seqs[i] += 1;
                    SequencedUpdate { id: ObjectId(i as u32), pos: p, seq: seqs[i] }
                })
                .collect();
            let snapshot = positions.clone();
            let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
            let a = seq_server.handle_sequenced_updates(&batch, &mut provider, now);
            let sync = |id: ObjectId| snapshot[id.index()];
            let b = par_server.handle_sequenced_updates_parallel(&batch, &sync, now);
            let strip = |v: &[(ObjectId, UpdateResponse)]| {
                v.iter().map(|(o, r)| (*o, r.safe_region)).collect::<Vec<_>>()
            };
            assert_eq!(strip(&a), strip(&b), "round {round}");
            assert_eq!(seq_server.costs(), par_server.costs(), "round {round}");
        }
    }

    #[test]
    fn sharded_costs_include_coordinator_probes() {
        // Probes made by the coordinator must land in the fleet-wide totals.
        let positions = world(16, 3);
        let mut sharded = ShardedServer::new(ServerConfig::default(), 4);
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            sharded.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
        let before = sharded.costs();
        sharded.register_query(QuerySpec::knn(Point::new(0.5, 0.5), 5), &mut provider, 0.0);
        let after = sharded.costs();
        assert!(after.probes >= before.probes);
        sharded.check_invariants();
    }

    #[test]
    fn unknown_updates_are_dropped_and_counted() {
        let mut sharded = ShardedServer::new(ServerConfig::default(), 2);
        let mut provider = FnProvider(|_| Point::new(0.5, 0.5));
        sharded.add_object(ObjectId(0), Point::new(0.3, 0.3), &mut provider, 0.0).unwrap();
        let resp = sharded.handle_location_updates(
            &[(ObjectId(0), Point::new(0.4, 0.4)), (ObjectId(99), Point::new(0.1, 0.1))],
            &mut provider,
            0.1,
        );
        assert_eq!(resp.len(), 1);
        assert_eq!(sharded.work().unknown_object_drops, 1);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    /// A unique throwaway durability directory (leaked so the config can
    /// hold a `&'static str`).
    fn temp_dir(tag: &str) -> &'static str {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("srb-sharded-{tag}-{}-{n}", std::process::id()));
        Box::leak(dir.to_string_lossy().into_owned().into_boxed_str())
    }

    #[test]
    fn durable_sharded_recovery_is_bit_identical() {
        let dir = temp_dir("roundtrip");
        let config = ServerConfig {
            durability: crate::config::DurabilityConfig { dir: Some(dir), ..Default::default() },
            ..Default::default()
        };
        let mut positions = world(20, 42);
        let mut sharded = ShardedServer::new(config, 3);
        assert!(sharded.wal_attached());
        for s in sharded.shards() {
            assert!(!s.wal_attached(), "shards must not own a durability store");
        }
        {
            let snapshot = positions.clone();
            let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
            for (i, &p) in snapshot.iter().enumerate() {
                sharded.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            }
            for spec in [
                QuerySpec::range(Rect::new(Point::new(0.1, 0.1), Point::new(0.6, 0.6))),
                QuerySpec::knn(Point::new(0.5, 0.5), 3),
            ] {
                sharded.register_query(spec, &mut provider, 0.0);
            }
        }
        let mut seqs = vec![0u64; positions.len()];
        for round in 1..=8u64 {
            step(&mut positions, round);
            let now = round as f64 * 0.1;
            let batch: Vec<SequencedUpdate> = positions
                .iter()
                .enumerate()
                .filter(|&(i, &p)| {
                    sharded.safe_region(ObjectId(i as u32)).is_none_or(|r| !r.contains_point(p))
                })
                .map(|(i, &p)| {
                    seqs[i] += 1;
                    SequencedUpdate { id: ObjectId(i as u32), pos: p, seq: seqs[i] }
                })
                .collect();
            let snapshot = positions.clone();
            let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
            sharded.handle_sequenced_updates(&batch, &mut provider, now);
        }
        sharded.deregister_query(QueryId(0));
        sharded.sync_wal();
        assert!(!sharded.wal_poisoned());
        let digest = sharded.state_digest();
        drop(sharded);
        let (recovered, replayed) =
            ShardedServer::<RStarTree>::recover(config, 3).expect("recovery");
        assert!(replayed > 0, "operations were logged and must replay");
        assert_eq!(recovered.state_digest(), digest, "recovery must be bit-identical");
        recovered.check_invariants_deep();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn durable_sharded_checkpoint_truncates_replay_tail() {
        let dir = temp_dir("ckpt");
        let config = ServerConfig {
            durability: crate::config::DurabilityConfig { dir: Some(dir), ..Default::default() },
            ..Default::default()
        };
        let positions = world(12, 9);
        let mut sharded = ShardedServer::new(config, 2);
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            sharded.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
        sharded.register_query(QuerySpec::knn(Point::new(0.4, 0.4), 2), &mut provider, 0.0);
        let gen_before = sharded.wal_generation().unwrap();
        assert!(sharded.checkpoint());
        assert!(sharded.wal_generation().unwrap() > gen_before);
        let digest = sharded.state_digest();
        drop(sharded);
        let (recovered, replayed) =
            ShardedServer::<RStarTree>::recover(config, 2).expect("recovery");
        assert_eq!(replayed, 0, "checkpoint must have truncated the log tail");
        assert_eq!(recovered.state_digest(), digest);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn parallel_path_under_wal_stays_sequentially_logged() {
        let dir = temp_dir("par");
        let config = ServerConfig {
            durability: crate::config::DurabilityConfig { dir: Some(dir), ..Default::default() },
            ..Default::default()
        };
        let positions = world(16, 5);
        let mut sharded = ShardedServer::new(config, 2).with_threads(4);
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            sharded.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
        let batch: Vec<SequencedUpdate> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| SequencedUpdate { id: ObjectId(i as u32), pos: p, seq: 1 })
            .collect();
        let sync = |id: ObjectId| snapshot[id.index()];
        // The pipelined path logs on the worker threads; the resulting
        // log must replay exactly like a sequentially-logged batch.
        sharded.handle_sequenced_updates_parallel(&batch, &sync, 0.5);
        sharded.sync_wal();
        let digest = sharded.state_digest();
        drop(sharded);
        let (recovered, replayed) =
            ShardedServer::<RStarTree>::recover(config, 2).expect("recovery");
        assert!(replayed > 0);
        assert_eq!(recovered.state_digest(), digest);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn duplicate_object_rejected_across_shards() {
        let mut sharded = ShardedServer::new(ServerConfig::default(), 3);
        let mut provider = FnProvider(|_| Point::new(0.5, 0.5));
        sharded.add_object(ObjectId(1), Point::new(0.2, 0.2), &mut provider, 0.0).unwrap();
        assert!(matches!(
            sharded.add_object(ObjectId(1), Point::new(0.8, 0.8), &mut provider, 0.0),
            Err(ServerError::DuplicateObject(_))
        ));
    }
}
