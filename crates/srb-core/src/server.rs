//! The database server façade (paper §3.1, Algorithm 1).
//!
//! The server wires together the four components of Figure 3.1, each an
//! explicit, separately-testable layer: the [`ObjectIndex`] (an R\*-tree
//! over safe regions plus the object state table), the grid query index
//! (owned by the [`QueryProcessor`] together with evaluation §4.1–§4.2 and
//! reevaluation §4.3), and the [`LocationManager`] (safe-region computation
//! §5, leases, and the deferred probe queue). All communication costs flow
//! through [`CostTracker`] and all exact locations through the
//! [`LocationProvider`] the caller supplies; the façade only orchestrates.

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::eval::EvalCtx;
use crate::ids::{ObjectId, QueryId};
use crate::index::ObjectIndex;
use crate::location::{DeferKind, LocationManager};
use crate::object::ObjectState;
use crate::processor::QueryProcessor;
use crate::provider::{CostTracker, LocationProvider, WorkStats};
use crate::query::{Quarantine, QuerySpec, QueryState, ResultChange};
use srb_geom::{Point, Rect};
use std::collections::HashMap;

/// Response to a query registration: the id, the initial results, and the
/// updated safe regions of every object probed during evaluation (step 5 of
/// Figure 3.1 — those clients must be informed).
#[derive(Clone, Debug)]
pub struct RegisterResponse {
    /// The assigned query id.
    pub id: QueryId,
    /// Initial result set (ordered for order-sensitive kNN).
    pub results: Vec<ObjectId>,
    /// New safe regions for the probed objects.
    pub safe_regions: Vec<(ObjectId, Rect)>,
}

/// Response to a source-initiated location update: the updated object's new
/// safe region, the new safe regions of probed objects, and the queries
/// whose results changed.
#[derive(Clone, Debug)]
pub struct UpdateResponse {
    /// New safe region of the updating object.
    pub safe_region: Rect,
    /// New safe regions of objects probed while reevaluating.
    pub probed: Vec<(ObjectId, Rect)>,
    /// Result changes to push to application servers.
    pub changes: Vec<ResultChange>,
}

/// A source-initiated location update stamped with the client's sequence
/// number. Over a lossy channel the same report can arrive duplicated or
/// reordered; the server accepts each sequence number at most once
/// ([`Server::handle_sequenced_updates`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SequencedUpdate {
    /// The reporting object.
    pub id: ObjectId,
    /// The reported position.
    pub pos: Point,
    /// Client-assigned, strictly increasing per object. Retransmissions of
    /// the same report reuse the same number.
    pub seq: u64,
}

/// The SRB database server: a thin façade over the Figure-3.1 layers.
pub struct Server {
    config: ServerConfig,
    index: ObjectIndex,
    processor: QueryProcessor,
    location: LocationManager,
    costs: CostTracker,
    work: WorkStats,
}

impl Server {
    /// Creates a server with the given configuration.
    pub fn new(config: ServerConfig) -> Self {
        Server {
            index: ObjectIndex::new(config.tree),
            processor: QueryProcessor::new(config.space, config.grid_m),
            location: LocationManager::new(),
            costs: CostTracker::default(),
            work: WorkStats::default(),
            config,
        }
    }

    /// Creates a server with the default (paper Table 7.1) configuration.
    pub fn with_defaults() -> Self {
        Self::new(ServerConfig::default())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The object index layer (Figure 3.1 "object index").
    pub fn object_index(&self) -> &ObjectIndex {
        &self.index
    }

    /// The query processor layer (Figure 3.1 "query processor" plus the
    /// §3.3 grid index).
    pub fn query_processor(&self) -> &QueryProcessor {
        &self.processor
    }

    /// Number of registered moving objects.
    pub fn object_count(&self) -> usize {
        self.index.len()
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.processor.count()
    }

    /// The current result set of a query.
    pub fn results(&self, id: QueryId) -> Option<&[ObjectId]> {
        self.processor.get(id).map(|q| q.results.as_slice())
    }

    /// The current quarantine area of a query.
    pub fn quarantine(&self, id: QueryId) -> Option<Quarantine> {
        self.processor.get(id).map(|q| q.quarantine)
    }

    /// The safe region the server believes `id` is inside.
    pub fn safe_region(&self, id: ObjectId) -> Option<Rect> {
        self.index.get(id).map(|s| s.safe_region)
    }

    /// The last exactly-known location of `id` and its timestamp.
    pub fn last_known(&self, id: ObjectId) -> Option<(Point, f64)> {
        self.index.get(id).map(|s| (s.p_lst, s.t_lst))
    }

    /// The last accepted sequence number of `id` — the sharded coordinator
    /// stamps convenience (unsequenced) updates with this.
    pub(crate) fn last_seq(&self, id: ObjectId) -> Option<u64> {
        self.index.get(id).map(|s| s.last_seq)
    }

    /// Accumulated communication events.
    pub fn costs(&self) -> CostTracker {
        self.costs
    }

    /// Accumulated work counters.
    pub fn work(&self) -> WorkStats {
        self.work
    }

    /// Deterministic work units: object-index node visits.
    pub fn index_visits(&self) -> u64 {
        self.index.visits()
    }

    /// Size (bucket entries) of the grid query index — the footprint metric
    /// of §7.3.
    pub fn grid_footprint(&self) -> usize {
        self.processor.grid_footprint()
    }

    /// Iterates over the registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.processor.ids()
    }

    /// Verifies internal consistency. In release builds this is a cheap
    /// structural check (O(1) count comparison) so tests can call it on hot
    /// paths without distorting measurements; debug builds run the full
    /// [`check_invariants_deep`](Self::check_invariants_deep) scan.
    pub fn check_invariants(&self) {
        self.index.check_counts();
        #[cfg(debug_assertions)]
        self.check_invariants_deep();
    }

    /// Full O(n·q) consistency scan: tree invariants, entry-by-entry
    /// tree/state coherence, and per-query result-size bounds. Always
    /// available (release included) for correctness-critical tests.
    #[doc(hidden)]
    pub fn check_invariants_deep(&self) {
        self.index.check_coherence();
        self.processor.check_result_sizes();
    }

    // ------------------------------------------------------------------
    // Object lifecycle
    // ------------------------------------------------------------------

    /// Registers a new moving object at `pos`. The object is folded into any
    /// query whose quarantine area covers it, and receives its initial safe
    /// region (returned; the client must be told). Fails with
    /// [`ServerError::DuplicateObject`] if the id is already registered — a
    /// replayed registration must not corrupt existing state.
    pub fn add_object(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Result<Rect, ServerError> {
        let _span = srb_obs::span!("server.add_object");
        if self.index.get(id).is_some() {
            return Err(ServerError::DuplicateObject(id));
        }
        self.index.insert(
            id,
            ObjectState { p_lst: pos, t_lst: now, safe_region: Rect::point(pos), last_seq: 0 },
        );
        // Fold into affected queries: any query whose quarantine contains
        // pos may gain the new object.
        let affected: Vec<QueryId> = self
            .processor
            .grid()
            .queries_at(pos)
            .iter()
            .copied()
            .filter(|&qid| {
                self.processor.get(qid).map(|qs| qs.quarantine.contains(pos)).unwrap_or(false)
            })
            .collect();
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        exact.insert(id, pos);
        let space = self.config.space;
        for qid in affected {
            let is_range =
                matches!(self.processor.get(qid).map(|qs| qs.spec), Some(QuerySpec::Range { .. }));
            if is_range {
                let qs = self.processor.get_mut(qid).expect("query exists");
                if !qs.is_result(id) {
                    qs.results.push(id);
                }
            } else {
                let mut ctx = ctx(
                    &self.index,
                    &mut self.costs,
                    &mut self.work,
                    &mut exact,
                    &mut deferred,
                    provider,
                    self.config.max_speed,
                    now,
                );
                self.processor.refold_knn(&mut ctx, qid, &space);
            }
        }
        self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        self.location.absorb_deferred(&mut deferred, &exact, self.index.objects());
        Ok(self.index.get(id).expect("just added").safe_region)
    }

    /// Removes a moving object entirely (extension beyond the paper: object
    /// churn). Queries holding it as a result are reevaluated.
    pub fn remove_object(
        &mut self,
        id: ObjectId,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Option<ResultRemoval> {
        let st = self.index.remove(id)?;
        let mut changes = Vec::new();
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        let space = self.config.space;
        for qid in self.processor.ids().collect::<Vec<_>>() {
            let holds = self.processor.get(qid).map(|qs| qs.is_result(id)).unwrap_or(false);
            if !holds {
                continue;
            }
            let qs = self.processor.get_mut(qid).expect("query exists");
            qs.results.retain(|&o| o != id);
            if matches!(qs.spec, QuerySpec::Knn { .. }) {
                let mut ctx = ctx(
                    &self.index,
                    &mut self.costs,
                    &mut self.work,
                    &mut exact,
                    &mut deferred,
                    provider,
                    self.config.max_speed,
                    now,
                );
                self.processor.refold_knn(&mut ctx, qid, &space);
            }
            let results = self.processor.get(qid).expect("query exists").results.clone();
            changes.push(ResultChange { query: qid, results });
        }
        let probed = self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        self.location.absorb_deferred(&mut deferred, &exact, self.index.objects());
        Some(ResultRemoval { last_state: st, changes, probed })
    }

    // ------------------------------------------------------------------
    // Query lifecycle (Algorithm 1, lines 2-7)
    // ------------------------------------------------------------------

    /// Registers a continuous query: evaluates it on safe regions (probing
    /// lazily), computes its quarantine area, and indexes it in the grid.
    pub fn register_query(
        &mut self,
        spec: QuerySpec,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> RegisterResponse {
        let _span = srb_obs::span!("server.register_query");
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        let space = self.config.space;
        let (results, quarantine) = {
            let mut ctx = ctx(
                &self.index,
                &mut self.costs,
                &mut self.work,
                &mut exact,
                &mut deferred,
                provider,
                self.config.max_speed,
                now,
            );
            self.processor.evaluate_new(&mut ctx, spec, &space)
        };
        let id = self.processor.alloc_id();
        self.processor.install(id, QueryState { spec, results: results.clone(), quarantine });

        // Only probed objects need to learn about the new query (§5, case
        // 1); their safe regions are recomputed against all constraints
        // (the fresh computation subsumes the paper's intersection with
        // sr_Q and can only yield a larger — still sound — region).
        let safe_regions = self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        let exact_all: HashMap<ObjectId, Point> =
            safe_regions.iter().map(|&(o, _)| (o, Point::ORIGIN)).collect();
        self.location.absorb_deferred(&mut deferred, &exact_all, self.index.objects());
        RegisterResponse { id, results, safe_regions }
    }

    /// Deregisters a query (Algorithm 1 lines 6-7). Safe regions are not
    /// eagerly enlarged; they regrow on the next update of each object.
    pub fn deregister_query(&mut self, id: QueryId) -> bool {
        self.processor.remove(id)
    }

    // ------------------------------------------------------------------
    // Location updates (Algorithm 1, lines 8-15)
    // ------------------------------------------------------------------

    /// Handles a source-initiated location update: finds affected queries
    /// via the grid, incrementally reevaluates them (probing lazily),
    /// reports result changes, and recomputes the safe regions of the
    /// updating object and every probed object. Fails with
    /// [`ServerError::UnknownObject`] instead of aborting when the update
    /// references an unregistered object (e.g. a misdirected or replayed
    /// message). The update is implicitly stamped with the next sequence
    /// number; use [`handle_sequenced_updates`](Self::handle_sequenced_updates)
    /// for explicit client-side numbering.
    pub fn handle_location_update(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Result<UpdateResponse, ServerError> {
        let st = self.index.get_mut(id).ok_or(ServerError::UnknownObject(id))?;
        st.last_seq += 1;
        srb_obs::counter!("server.updates").inc();
        self.costs.source_updates += 1;
        Ok(self.process_report(id, pos, provider, now))
    }

    /// Handles a *batch* of simultaneous source-initiated updates
    /// consistently: all reported positions are installed first (so no
    /// query is evaluated against a stale bound of a same-instant mover),
    /// then each affected query is reevaluated exactly once — incrementally
    /// when a single mover affects it, from scratch when several do. This
    /// both preserves exactness under synchronized client check ticks and
    /// shares evaluation work across movers (in the spirit of SINA's shared
    /// execution).
    pub fn handle_location_updates(
        &mut self,
        updates: &[(ObjectId, Point)],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        // Stamp each update with the object's next sequence number; the
        // sequenced path drops unknown objects (and in-batch duplicates)
        // instead of panicking.
        let sequenced: Vec<SequencedUpdate> = updates
            .iter()
            .filter_map(|&(id, pos)| {
                self.index.get(id).map(|st| SequencedUpdate { id, pos, seq: st.last_seq + 1 })
            })
            .collect();
        self.work.unknown_object_drops += (updates.len() - sequenced.len()) as u64;
        self.handle_sequenced_updates(&sequenced, provider, now)
    }

    /// Handles a batch of *sequenced* updates from an unreliable channel.
    /// Updates whose sequence number is at or below the object's last
    /// accepted one are duplicates or reorderings: they are dropped
    /// idempotently (counted in [`WorkStats::stale_seq_drops`]) and answered
    /// with a re-grant of the object's current safe region, so a client
    /// whose previous grant was lost on the downlink still converges.
    /// Updates for unknown objects are dropped and counted. Accepted
    /// updates are processed exactly like
    /// [`handle_location_updates`](Self::handle_location_updates).
    pub fn handle_sequenced_updates(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        let mut accepted: Vec<(ObjectId, Point)> = Vec::new();
        let mut regrant_ids: Vec<ObjectId> = Vec::new();
        for u in updates {
            match self.index.get_mut(u.id) {
                None => {
                    self.work.unknown_object_drops += 1;
                    srb_obs::counter!("server.unknown_object_drops").inc();
                }
                Some(st) if u.seq <= st.last_seq => {
                    self.work.stale_seq_drops += 1;
                    self.work.regrants += 1;
                    srb_obs::counter!("server.stale_seq_drops").inc();
                    srb_obs::counter!("server.regrants").inc();
                    regrant_ids.push(u.id);
                }
                Some(st) => {
                    st.last_seq = u.seq;
                    accepted.push((u.id, u.pos));
                }
            }
        }
        let mut responses = self.apply_update_batch(&accepted, provider, now);
        // Re-grants are materialized *after* the batch is applied so they
        // carry the post-update safe region, never a stale one.
        for id in regrant_ids {
            if let Some(st) = self.index.get(id) {
                responses.push((
                    id,
                    UpdateResponse {
                        safe_region: st.safe_region,
                        probed: Vec::new(),
                        changes: Vec::new(),
                    },
                ));
            }
        }
        responses
    }

    /// Shared batch body: every position installed first, then each affected
    /// query reevaluated once. Callers guarantee all ids are registered.
    fn apply_update_batch(
        &mut self,
        updates: &[(ObjectId, Point)],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        if updates.is_empty() {
            return Vec::new();
        }
        let _span = srb_obs::span!("server.update_batch");
        srb_obs::counter!("server.updates").add(updates.len() as u64);
        self.costs.source_updates += updates.len() as u64;
        if updates.len() == 1 {
            let (id, pos) = updates[0];
            return vec![(id, self.process_report(id, pos, provider, now))];
        }
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        let mut prev: HashMap<ObjectId, Point> = HashMap::new();
        for &(id, pos) in updates {
            let st = *self.index.get(id).expect("batch ids are pre-checked");
            prev.insert(id, st.p_lst);
            self.index.pin_to_point(id, pos);
            exact.insert(id, pos);
        }

        // Affected-query candidates, with the set of movers per query.
        let mut per_query: Vec<(QueryId, Vec<ObjectId>)> = Vec::new();
        for &(id, pos) in updates {
            let p_lst = prev[&id];
            for qid in self.processor.candidates(pos, p_lst) {
                match per_query.iter_mut().find(|(q, _)| *q == qid) {
                    Some((_, movers)) => {
                        if !movers.contains(&id) {
                            movers.push(id);
                        }
                    }
                    None => per_query.push((qid, vec![id])),
                }
            }
        }
        per_query.sort_by_key(|(q, _)| *q);

        let space = self.config.space;
        let mut changes = Vec::new();
        for (qid, movers) in per_query {
            let mut ctx = ctx(
                &self.index,
                &mut self.costs,
                &mut self.work,
                &mut exact,
                &mut deferred,
                provider,
                self.config.max_speed,
                now,
            );
            if let Some(results) =
                self.processor.reevaluate_batch(&mut ctx, qid, &movers, &prev, &space)
            {
                changes.push(ResultChange { query: qid, results });
            }
        }

        let probed = self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        let exact_all: HashMap<ObjectId, Point> =
            probed.iter().map(|&(o, _)| (o, Point::ORIGIN)).collect();
        self.location.absorb_deferred(&mut deferred, &exact_all, self.index.objects());

        // Assemble per-updater responses; probed bystanders ride along with
        // the first updater.
        let mut responses: Vec<(ObjectId, UpdateResponse)> = Vec::new();
        let mut extra: Vec<(ObjectId, Rect)> = Vec::new();
        let updater_ids: Vec<ObjectId> = updates.iter().map(|&(id, _)| id).collect();
        for (oid, sr) in probed {
            if updater_ids.contains(&oid) {
                responses.push((
                    oid,
                    UpdateResponse { safe_region: sr, probed: Vec::new(), changes: Vec::new() },
                ));
            } else {
                extra.push((oid, sr));
            }
        }
        if let Some(first) = responses.first_mut() {
            first.1.probed = extra;
            first.1.changes = changes;
        }
        responses
    }

    /// Shared body of source-initiated updates and deferred probes.
    fn process_report(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> UpdateResponse {
        // No span here: this is the per-report hot path, and its envelope is
        // already timed per batch by `server.update_batch` (and within it by
        // `location.recompute_safe_regions`, where the time actually goes).
        // A per-report span measurably distorts the scaling workload.
        let st = *self.index.get(id).expect("unknown object");
        let p_lst = st.p_lst;

        // The object's stored region no longer bounds it; replace it with
        // the exact point so index-based evaluation stays sound.
        self.index.pin_to_point(id, pos);
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        exact.insert(id, pos);

        // Affected-query candidates: buckets of the new and old cells.
        let candidates = self.processor.candidates(pos, p_lst);

        let mut changes = Vec::new();
        let space = self.config.space;
        for qid in candidates {
            let mut ctx = ctx(
                &self.index,
                &mut self.costs,
                &mut self.work,
                &mut exact,
                &mut deferred,
                provider,
                self.config.max_speed,
                now,
            );
            if let Some(results) =
                self.processor.reevaluate_single(&mut ctx, qid, id, pos, p_lst, &space)
            {
                changes.push(ResultChange { query: qid, results });
            }
        }

        let mut probed = self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        self.location.absorb_deferred(&mut deferred, &exact, self.index.objects());
        let safe_region = probed
            .iter()
            .position(|(o, _)| *o == id)
            .map(|i| probed.remove(i).1)
            .expect("updating object gets a safe region");
        UpdateResponse { safe_region, probed, changes }
    }

    /// Ingests a coordinator-initiated probe result as a server-initiated
    /// update: the probe cost is booked here, then the position is processed
    /// exactly like a report (reevaluation, safe-region regrant). Used by
    /// the sharded coordinator when cross-shard merging had to pin an
    /// object's exact location — the owning shard must regrant a region so
    /// the client is not left pending.
    pub(crate) fn ingest_probe(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> UpdateResponse {
        self.costs.probes += 1;
        self.process_report(id, pos, provider, now)
    }

    // ------------------------------------------------------------------
    // Deferred probes (location-manager timers)
    // ------------------------------------------------------------------

    /// The earliest pending deferred-probe time, if any. Stale entries are
    /// discarded lazily. Event-driven callers (the simulator) use this to
    /// schedule [`process_deferred`](Self::process_deferred).
    pub fn next_deferred_due(&mut self) -> Option<f64> {
        self.location.next_due(self.index.objects())
    }

    /// Fires every deferred probe due at or before `now`: each still-fresh
    /// target is probed (cost `c_p`) and handled like a server-initiated
    /// update, restoring raw-safe-region soundness before the reachability
    /// circle can invalidate the decision that scheduled it.
    pub fn process_deferred(
        &mut self,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        let _span = srb_obs::span!("server.process_deferred");
        let mut out = Vec::new();
        while let Some(d) = self.location.pop_due(self.index.objects(), now) {
            let pos = provider.probe(d.oid);
            self.costs.probes += 1;
            if d.kind == DeferKind::Lease {
                self.work.lease_probes += 1;
            }
            out.push((d.oid, self.process_report(d.oid, pos, provider, now)));
        }
        out
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Recomputes and installs safe regions for every exactly-known object
    /// of this server operation (Algorithm 1, lines 14-15). Returns the new
    /// regions.
    fn recompute_safe_regions(
        &mut self,
        exact: &mut HashMap<ObjectId, Point>,
        deferred: &mut Vec<(ObjectId, f64)>,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, Rect)> {
        self.location.recompute_safe_regions(
            &self.config,
            &mut self.index,
            &self.processor,
            &mut self.costs,
            &mut self.work,
            exact,
            deferred,
            provider,
            now,
        )
    }
}

/// Builds the evaluation context from the split server layers.
#[allow(clippy::too_many_arguments)]
fn ctx<'a>(
    index: &'a ObjectIndex,
    costs: &'a mut CostTracker,
    work: &'a mut WorkStats,
    exact: &'a mut HashMap<ObjectId, Point>,
    deferred: &'a mut Vec<(ObjectId, f64)>,
    provider: &'a mut dyn LocationProvider,
    max_speed: Option<f64>,
    now: f64,
) -> EvalCtx<'a> {
    EvalCtx {
        tree: index.tree(),
        objects: index.objects(),
        exact,
        provider,
        costs,
        work,
        deferred,
        max_speed,
        now,
    }
}

/// Result of [`Server::remove_object`].
#[derive(Clone, Debug)]
pub struct ResultRemoval {
    /// The removed object's last known state.
    pub last_state: ObjectState,
    /// Queries whose results changed.
    pub changes: Vec<ResultChange>,
    /// Safe regions recomputed for objects probed during the removal.
    pub probed: Vec<(ObjectId, Rect)>,
}
