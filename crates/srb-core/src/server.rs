//! The database server (paper §3.1, Algorithm 1).
//!
//! The server owns the four components of Figure 3.1: the object index (an
//! R\*-tree over safe regions), the in-memory grid query index, the query
//! processor (evaluation §4.1–§4.2 / reevaluation §4.3), and the location
//! manager (safe-region computation §5). All communication costs flow
//! through [`CostTracker`] and all exact locations through the
//! [`LocationProvider`] the caller supplies.

use crate::config::ServerConfig;
use crate::error::ServerError;
use crate::eval::{evaluate_knn_ordered, evaluate_knn_unordered, evaluate_range, EvalCtx};
use crate::grid::GridIndex;
use crate::ids::{ObjectId, QueryId};
use crate::object::{ObjectState, ObjectTable};
use crate::provider::{CostTracker, LocationProvider, WorkStats};
use crate::query::{Quarantine, QuerySpec, QueryState, ResultChange};
use crate::reeval::reevaluate;
use crate::safe_region::compute_safe_region;
use srb_geom::{Circle, Point, Rect};
use srb_index::RStarTree;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Response to a query registration: the id, the initial results, and the
/// updated safe regions of every object probed during evaluation (step 5 of
/// Figure 3.1 — those clients must be informed).
#[derive(Clone, Debug)]
pub struct RegisterResponse {
    /// The assigned query id.
    pub id: QueryId,
    /// Initial result set (ordered for order-sensitive kNN).
    pub results: Vec<ObjectId>,
    /// New safe regions for the probed objects.
    pub safe_regions: Vec<(ObjectId, Rect)>,
}

/// Response to a source-initiated location update: the updated object's new
/// safe region, the new safe regions of probed objects, and the queries
/// whose results changed.
#[derive(Clone, Debug)]
pub struct UpdateResponse {
    /// New safe region of the updating object.
    pub safe_region: Rect,
    /// New safe regions of objects probed while reevaluating.
    pub probed: Vec<(ObjectId, Rect)>,
    /// Result changes to push to application servers.
    pub changes: Vec<ResultChange>,
}

/// A source-initiated location update stamped with the client's sequence
/// number. Over a lossy channel the same report can arrive duplicated or
/// reordered; the server accepts each sequence number at most once
/// ([`Server::handle_sequenced_updates`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SequencedUpdate {
    /// The reporting object.
    pub id: ObjectId,
    /// The reported position.
    pub pos: Point,
    /// Client-assigned, strictly increasing per object. Retransmissions of
    /// the same report reuse the same number.
    pub seq: u64,
}

/// Why a deferred timer entry exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeferKind {
    /// Reachability-circle slack expiry (§6.1 soundness restoration).
    Slack,
    /// Safe-region lease expiry: the object has not been heard from for a
    /// full lease period — probe it in case its exit report was lost.
    Lease,
}

/// A scheduled deferred probe (see DESIGN.md): `epoch` is the object's
/// last-report timestamp at scheduling time — the entry is stale (and
/// silently dropped) if the object has reported or been probed since.
/// Lease renewals ride the same staleness rule: any contact bumps `t_lst`,
/// invalidating the old lease entry.
#[derive(Debug, Clone, Copy)]
struct Deferred {
    due: f64,
    oid: ObjectId,
    epoch: f64,
    kind: DeferKind,
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.total_cmp(&other.due)
    }
}

/// The SRB database server.
pub struct Server {
    config: ServerConfig,
    tree: RStarTree,
    objects: ObjectTable,
    queries: Vec<Option<QueryState>>,
    grid: GridIndex,
    costs: CostTracker,
    work: WorkStats,
    deferred: BinaryHeap<Reverse<Deferred>>,
}

impl Server {
    /// Creates a server with the given configuration.
    pub fn new(config: ServerConfig) -> Self {
        Server {
            tree: RStarTree::new(config.tree),
            objects: ObjectTable::new(),
            queries: Vec::new(),
            grid: GridIndex::new(config.space, config.grid_m),
            costs: CostTracker::default(),
            work: WorkStats::default(),
            deferred: BinaryHeap::new(),
            config,
        }
    }

    /// Creates a server with the default (paper Table 7.1) configuration.
    pub fn with_defaults() -> Self {
        Self::new(ServerConfig::default())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of registered moving objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.iter().filter(|q| q.is_some()).count()
    }

    /// The current result set of a query.
    pub fn results(&self, id: QueryId) -> Option<&[ObjectId]> {
        self.queries.get(id.index()).and_then(|q| q.as_ref()).map(|q| q.results.as_slice())
    }

    /// The current quarantine area of a query.
    pub fn quarantine(&self, id: QueryId) -> Option<Quarantine> {
        self.queries.get(id.index()).and_then(|q| q.as_ref()).map(|q| q.quarantine)
    }

    /// The safe region the server believes `id` is inside.
    pub fn safe_region(&self, id: ObjectId) -> Option<Rect> {
        self.objects.get(id).map(|s| s.safe_region)
    }

    /// The last exactly-known location of `id` and its timestamp.
    pub fn last_known(&self, id: ObjectId) -> Option<(Point, f64)> {
        self.objects.get(id).map(|s| (s.p_lst, s.t_lst))
    }

    /// Accumulated communication events.
    pub fn costs(&self) -> CostTracker {
        self.costs
    }

    /// Accumulated work counters.
    pub fn work(&self) -> WorkStats {
        self.work
    }

    /// Deterministic work units: object-index node visits.
    pub fn index_visits(&self) -> u64 {
        self.tree.visits()
    }

    /// Size (bucket entries) of the grid query index — the footprint metric
    /// of §7.3.
    pub fn grid_footprint(&self) -> usize {
        self.grid.bucket_entries()
    }

    /// Iterates over the registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.iter().enumerate().filter_map(|(i, q)| q.as_ref().map(|_| QueryId(i as u32)))
    }

    /// Verifies internal consistency (tree invariants, state coherence).
    /// For tests.
    pub fn check_invariants(&self) {
        self.tree.check_invariants();
        assert_eq!(self.tree.len(), self.objects.len());
        for (oid, st) in self.objects.iter() {
            let stored = self.tree.get(oid.entry()).expect("object in tree");
            assert_eq!(stored, st.safe_region, "tree/state safe region mismatch for {oid}");
        }
        for qs in self.queries.iter().flatten() {
            if let QuerySpec::Knn { k, .. } = qs.spec {
                assert!(qs.results.len() <= k, "kNN result overflow");
            }
        }
    }

    // ------------------------------------------------------------------
    // Object lifecycle
    // ------------------------------------------------------------------

    /// Registers a new moving object at `pos`. The object is folded into any
    /// query whose quarantine area covers it, and receives its initial safe
    /// region (returned; the client must be told). Fails with
    /// [`ServerError::DuplicateObject`] if the id is already registered — a
    /// replayed registration must not corrupt existing state.
    pub fn add_object(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Result<Rect, ServerError> {
        if self.objects.get(id).is_some() {
            return Err(ServerError::DuplicateObject(id));
        }
        self.tree.insert(id.entry(), Rect::point(pos));
        self.objects.set(
            id,
            ObjectState { p_lst: pos, t_lst: now, safe_region: Rect::point(pos), last_seq: 0 },
        );
        // Fold into affected queries: any query whose quarantine contains
        // pos may gain the new object.
        let affected: Vec<QueryId> = self
            .grid
            .queries_at(pos)
            .iter()
            .copied()
            .filter(|&qid| {
                self.queries[qid.index()]
                    .as_ref()
                    .map(|qs| qs.quarantine.contains(pos))
                    .unwrap_or(false)
            })
            .collect();
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        exact.insert(id, pos);
        let space = self.config.space;
        for qid in affected {
            let mut qs = self.queries[qid.index()].take().expect("query exists");
            {
                let mut ctx = self.ctx(&mut exact, &mut deferred, provider, now);
                match qs.spec {
                    QuerySpec::Range { .. } => {
                        if !qs.is_result(id) {
                            qs.results.push(id);
                        }
                    }
                    QuerySpec::Knn { center, k, order_sensitive } => {
                        let eval = if order_sensitive {
                            evaluate_knn_ordered(&mut ctx, center, k, &space, &[])
                        } else {
                            evaluate_knn_unordered(&mut ctx, center, k, &space, &[])
                        };
                        qs.results = eval.results;
                        let old = qs.quarantine.bbox();
                        qs.quarantine = Quarantine::Circle(Circle::new(center, eval.radius));
                        self.grid.update(qid, &old, &qs.quarantine.bbox());
                    }
                }
            }
            self.queries[qid.index()] = Some(qs);
        }
        self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        self.absorb_deferred(&mut deferred, &exact);
        Ok(self.objects.get(id).expect("just added").safe_region)
    }

    /// Removes a moving object entirely (extension beyond the paper: object
    /// churn). Queries holding it as a result are reevaluated.
    pub fn remove_object(
        &mut self,
        id: ObjectId,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Option<ResultRemoval> {
        self.objects.get(id)?;
        self.tree.remove(id.entry());
        let st = self.objects.remove(id).expect("checked above");
        let mut changes = Vec::new();
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        let space = self.config.space;
        for qid in self.query_ids().collect::<Vec<_>>() {
            let mut qs = self.queries[qid.index()].take().expect("query exists");
            if qs.is_result(id) {
                qs.results.retain(|&o| o != id);
                match qs.spec {
                    QuerySpec::Range { .. } => {}
                    QuerySpec::Knn { center, k, order_sensitive } => {
                        let mut ctx = self.ctx(&mut exact, &mut deferred, provider, now);
                        let eval = if order_sensitive {
                            evaluate_knn_ordered(&mut ctx, center, k, &space, &[])
                        } else {
                            evaluate_knn_unordered(&mut ctx, center, k, &space, &[])
                        };
                        qs.results = eval.results;
                        let old = qs.quarantine.bbox();
                        qs.quarantine = Quarantine::Circle(Circle::new(center, eval.radius));
                        self.grid.update(qid, &old, &qs.quarantine.bbox());
                    }
                }
                changes.push(ResultChange { query: qid, results: qs.results.clone() });
            }
            self.queries[qid.index()] = Some(qs);
        }
        let probed = self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        self.absorb_deferred(&mut deferred, &exact);
        Some(ResultRemoval { last_state: st, changes, probed })
    }

    // ------------------------------------------------------------------
    // Query lifecycle (Algorithm 1, lines 2-7)
    // ------------------------------------------------------------------

    /// Registers a continuous query: evaluates it on safe regions (probing
    /// lazily), computes its quarantine area, and indexes it in the grid.
    pub fn register_query(
        &mut self,
        spec: QuerySpec,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> RegisterResponse {
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        let space = self.config.space;
        let (results, quarantine) = {
            let mut ctx = self.ctx(&mut exact, &mut deferred, provider, now);
            match spec {
                QuerySpec::Range { rect } => {
                    (evaluate_range(&mut ctx, &rect), Quarantine::Rect(rect))
                }
                QuerySpec::Knn { center, k, order_sensitive } => {
                    let eval = if order_sensitive {
                        evaluate_knn_ordered(&mut ctx, center, k, &space, &[])
                    } else {
                        evaluate_knn_unordered(&mut ctx, center, k, &space, &[])
                    };
                    (eval.results, Quarantine::Circle(Circle::new(center, eval.radius)))
                }
            }
        };
        let id = self.alloc_query_id();
        let qs = QueryState { spec, results: results.clone(), quarantine };
        self.grid.insert(id, &qs.quarantine.bbox());
        self.queries[id.index()] = Some(qs);

        // Only probed objects need to learn about the new query (§5, case
        // 1); their safe regions are recomputed against all constraints
        // (the fresh computation subsumes the paper's intersection with
        // sr_Q and can only yield a larger — still sound — region).
        let safe_regions = self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        let exact_all: HashMap<ObjectId, Point> =
            safe_regions.iter().map(|&(o, _)| (o, Point::ORIGIN)).collect();
        self.absorb_deferred(&mut deferred, &exact_all);
        RegisterResponse { id, results, safe_regions }
    }

    /// Deregisters a query (Algorithm 1 lines 6-7). Safe regions are not
    /// eagerly enlarged; they regrow on the next update of each object.
    pub fn deregister_query(&mut self, id: QueryId) -> bool {
        let Some(slot) = self.queries.get_mut(id.index()) else {
            return false;
        };
        let Some(qs) = slot.take() else { return false };
        self.grid.remove(id, &qs.quarantine.bbox());
        true
    }

    // ------------------------------------------------------------------
    // Location updates (Algorithm 1, lines 8-15)
    // ------------------------------------------------------------------

    /// Handles a source-initiated location update: finds affected queries
    /// via the grid, incrementally reevaluates them (probing lazily),
    /// reports result changes, and recomputes the safe regions of the
    /// updating object and every probed object. Fails with
    /// [`ServerError::UnknownObject`] instead of aborting when the update
    /// references an unregistered object (e.g. a misdirected or replayed
    /// message). The update is implicitly stamped with the next sequence
    /// number; use [`handle_sequenced_updates`](Self::handle_sequenced_updates)
    /// for explicit client-side numbering.
    pub fn handle_location_update(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Result<UpdateResponse, ServerError> {
        let st = self.objects.get_mut(id).ok_or(ServerError::UnknownObject(id))?;
        st.last_seq += 1;
        self.costs.source_updates += 1;
        Ok(self.process_report(id, pos, provider, now))
    }

    /// Handles a *batch* of simultaneous source-initiated updates
    /// consistently: all reported positions are installed first (so no
    /// query is evaluated against a stale bound of a same-instant mover),
    /// then each affected query is reevaluated exactly once — incrementally
    /// when a single mover affects it, from scratch when several do. This
    /// both preserves exactness under synchronized client check ticks and
    /// shares evaluation work across movers (in the spirit of SINA's shared
    /// execution).
    pub fn handle_location_updates(
        &mut self,
        updates: &[(ObjectId, Point)],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        // Stamp each update with the object's next sequence number; the
        // sequenced path drops unknown objects (and in-batch duplicates)
        // instead of panicking.
        let sequenced: Vec<SequencedUpdate> = updates
            .iter()
            .filter_map(|&(id, pos)| {
                self.objects.get(id).map(|st| SequencedUpdate { id, pos, seq: st.last_seq + 1 })
            })
            .collect();
        self.work.unknown_object_drops += (updates.len() - sequenced.len()) as u64;
        self.handle_sequenced_updates(&sequenced, provider, now)
    }

    /// Handles a batch of *sequenced* updates from an unreliable channel.
    /// Updates whose sequence number is at or below the object's last
    /// accepted one are duplicates or reorderings: they are dropped
    /// idempotently (counted in [`WorkStats::stale_seq_drops`]) and answered
    /// with a re-grant of the object's current safe region, so a client
    /// whose previous grant was lost on the downlink still converges.
    /// Updates for unknown objects are dropped and counted. Accepted
    /// updates are processed exactly like
    /// [`handle_location_updates`](Self::handle_location_updates).
    pub fn handle_sequenced_updates(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        let mut accepted: Vec<(ObjectId, Point)> = Vec::new();
        let mut regrant_ids: Vec<ObjectId> = Vec::new();
        for u in updates {
            match self.objects.get_mut(u.id) {
                None => self.work.unknown_object_drops += 1,
                Some(st) if u.seq <= st.last_seq => {
                    self.work.stale_seq_drops += 1;
                    self.work.regrants += 1;
                    regrant_ids.push(u.id);
                }
                Some(st) => {
                    st.last_seq = u.seq;
                    accepted.push((u.id, u.pos));
                }
            }
        }
        let mut responses = self.apply_update_batch(&accepted, provider, now);
        // Re-grants are materialized *after* the batch is applied so they
        // carry the post-update safe region, never a stale one.
        for id in regrant_ids {
            if let Some(st) = self.objects.get(id) {
                responses.push((
                    id,
                    UpdateResponse {
                        safe_region: st.safe_region,
                        probed: Vec::new(),
                        changes: Vec::new(),
                    },
                ));
            }
        }
        responses
    }

    /// Shared batch body: every position installed first, then each affected
    /// query reevaluated once. Callers guarantee all ids are registered.
    fn apply_update_batch(
        &mut self,
        updates: &[(ObjectId, Point)],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        if updates.is_empty() {
            return Vec::new();
        }
        self.costs.source_updates += updates.len() as u64;
        if updates.len() == 1 {
            let (id, pos) = updates[0];
            return vec![(id, self.process_report(id, pos, provider, now))];
        }
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        let mut prev: HashMap<ObjectId, Point> = HashMap::new();
        for &(id, pos) in updates {
            let st = *self.objects.get(id).expect("batch ids are pre-checked");
            prev.insert(id, st.p_lst);
            self.tree.update(id.entry(), Rect::point(pos));
            exact.insert(id, pos);
        }

        // Affected-query candidates, with the set of movers per query.
        let mut per_query: Vec<(QueryId, Vec<ObjectId>)> = Vec::new();
        for &(id, pos) in updates {
            let p_lst = prev[&id];
            let mut candidates: Vec<QueryId> = self.grid.queries_at(pos).to_vec();
            for &qp in self.grid.queries_at(p_lst) {
                if !candidates.contains(&qp) {
                    candidates.push(qp);
                }
            }
            for qid in candidates {
                match per_query.iter_mut().find(|(q, _)| *q == qid) {
                    Some((_, movers)) => {
                        if !movers.contains(&id) {
                            movers.push(id);
                        }
                    }
                    None => per_query.push((qid, vec![id])),
                }
            }
        }
        per_query.sort_by_key(|(q, _)| *q);

        let space = self.config.space;
        let mut changes = Vec::new();
        for (qid, movers) in per_query {
            let Some(mut qs) = self.queries[qid.index()].take() else {
                continue;
            };
            let old_bbox = qs.quarantine.bbox();
            let outcome = if movers.len() == 1 {
                let id = movers[0];
                let pos = exact[&id];
                let p_lst = prev[&id];
                let mut ctx = self.ctx(&mut exact, &mut deferred, provider, now);
                reevaluate(&mut ctx, &mut qs, id, pos, p_lst, &space)
            } else {
                let mut ctx = self.ctx(&mut exact, &mut deferred, provider, now);
                crate::reeval::reevaluate_multi(&mut ctx, &mut qs, &movers, &prev, &space)
            };
            if outcome.quarantine_changed {
                self.grid.update(qid, &old_bbox, &qs.quarantine.bbox());
            }
            if outcome.results_changed {
                changes.push(ResultChange { query: qid, results: qs.results.clone() });
            }
            self.queries[qid.index()] = Some(qs);
        }

        let probed = self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        let exact_all: HashMap<ObjectId, Point> =
            probed.iter().map(|&(o, _)| (o, Point::ORIGIN)).collect();
        self.absorb_deferred(&mut deferred, &exact_all);

        // Assemble per-updater responses; probed bystanders ride along with
        // the first updater.
        let mut responses: Vec<(ObjectId, UpdateResponse)> = Vec::new();
        let mut extra: Vec<(ObjectId, Rect)> = Vec::new();
        let updater_ids: Vec<ObjectId> = updates.iter().map(|&(id, _)| id).collect();
        for (oid, sr) in probed {
            if updater_ids.contains(&oid) {
                responses.push((
                    oid,
                    UpdateResponse { safe_region: sr, probed: Vec::new(), changes: Vec::new() },
                ));
            } else {
                extra.push((oid, sr));
            }
        }
        if let Some(first) = responses.first_mut() {
            first.1.probed = extra;
            first.1.changes = changes;
        }
        responses
    }

    /// Shared body of source-initiated updates and deferred probes.
    fn process_report(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> UpdateResponse {
        let st = *self.objects.get(id).expect("unknown object");
        let p_lst = st.p_lst;

        // The object's stored region no longer bounds it; replace it with
        // the exact point so index-based evaluation stays sound.
        self.tree.update(id.entry(), Rect::point(pos));
        let mut exact: HashMap<ObjectId, Point> = HashMap::new();
        let mut deferred: Vec<(ObjectId, f64)> = Vec::new();
        exact.insert(id, pos);

        // Affected-query candidates: buckets of the new and old cells.
        let mut candidates: Vec<QueryId> = self.grid.queries_at(pos).to_vec();
        for &q in self.grid.queries_at(p_lst) {
            if !candidates.contains(&q) {
                candidates.push(q);
            }
        }

        let mut changes = Vec::new();
        let space = self.config.space;
        for qid in candidates {
            let Some(mut qs) = self.queries[qid.index()].take() else {
                continue;
            };
            let old_bbox = qs.quarantine.bbox();
            let outcome = {
                let mut ctx = self.ctx(&mut exact, &mut deferred, provider, now);
                reevaluate(&mut ctx, &mut qs, id, pos, p_lst, &space)
            };
            if outcome.quarantine_changed {
                self.grid.update(qid, &old_bbox, &qs.quarantine.bbox());
            }
            if outcome.results_changed {
                changes.push(ResultChange { query: qid, results: qs.results.clone() });
            }
            self.queries[qid.index()] = Some(qs);
        }

        let mut probed = self.recompute_safe_regions(&mut exact, &mut deferred, provider, now);
        self.absorb_deferred(&mut deferred, &exact);
        let safe_region = probed
            .iter()
            .position(|(o, _)| *o == id)
            .map(|i| probed.remove(i).1)
            .expect("updating object gets a safe region");
        UpdateResponse { safe_region, probed, changes }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn alloc_query_id(&mut self) -> QueryId {
        for (i, slot) in self.queries.iter().enumerate() {
            if slot.is_none() {
                return QueryId(i as u32);
            }
        }
        self.queries.push(None);
        QueryId((self.queries.len() - 1) as u32)
    }

    fn ctx<'a>(
        &'a mut self,
        exact: &'a mut HashMap<ObjectId, Point>,
        deferred: &'a mut Vec<(ObjectId, f64)>,
        provider: &'a mut dyn LocationProvider,
        now: f64,
    ) -> EvalCtx<'a> {
        EvalCtx {
            tree: &self.tree,
            objects: &self.objects,
            exact,
            provider,
            costs: &mut self.costs,
            work: &mut self.work,
            deferred,
            max_speed: self.config.max_speed,
            now,
        }
    }

    /// Moves evaluation-time deferral requests into the timer queue.
    /// Requests for objects that ended up exactly known in this operation
    /// are dropped — their safe regions were just recomputed.
    fn absorb_deferred(
        &mut self,
        scratch: &mut Vec<(ObjectId, f64)>,
        exact: &HashMap<ObjectId, Point>,
    ) {
        for (oid, due) in scratch.drain(..) {
            if exact.contains_key(&oid) {
                continue;
            }
            let Some(st) = self.objects.get(oid) else { continue };
            self.deferred.push(Reverse(Deferred {
                due,
                oid,
                epoch: st.t_lst,
                kind: DeferKind::Slack,
            }));
        }
    }

    /// The earliest pending deferred-probe time, if any. Stale entries are
    /// discarded lazily. Event-driven callers (the simulator) use this to
    /// schedule [`process_deferred`](Self::process_deferred).
    pub fn next_deferred_due(&mut self) -> Option<f64> {
        while let Some(Reverse(d)) = self.deferred.peek() {
            let fresh = self.objects.get(d.oid).map(|st| st.t_lst == d.epoch).unwrap_or(false);
            if fresh {
                return Some(d.due);
            }
            self.deferred.pop();
        }
        None
    }

    /// Fires every deferred probe due at or before `now`: each still-fresh
    /// target is probed (cost `c_p`) and handled like a server-initiated
    /// update, restoring raw-safe-region soundness before the reachability
    /// circle can invalidate the decision that scheduled it.
    pub fn process_deferred(
        &mut self,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        let mut out = Vec::new();
        while let Some(due) = self.next_deferred_due() {
            if due > now + 1e-12 {
                break;
            }
            let Some(Reverse(d)) = self.deferred.pop() else { break };
            let pos = provider.probe(d.oid);
            self.costs.probes += 1;
            if d.kind == DeferKind::Lease {
                self.work.lease_probes += 1;
            }
            out.push((d.oid, self.process_report(d.oid, pos, provider, now)));
        }
        out
    }

    /// Recomputes and installs safe regions for every exactly-known object
    /// of this server operation (Algorithm 1, lines 14-15). Returns the new
    /// regions.
    fn recompute_safe_regions(
        &mut self,
        exact: &mut HashMap<ObjectId, Point>,
        deferred: &mut Vec<(ObjectId, f64)>,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, Rect)> {
        let mut out: Vec<(ObjectId, Rect)> = Vec::with_capacity(exact.len());
        // Worklist in deterministic (id) order. Recomputing one object's
        // ring can probe a conflicting neighbor (see
        // `safe_region::neighbor_bound`), which inserts it into `exact` —
        // the loop picks it up until fixpoint. Objects already recomputed
        // leave the invalid set, so later ring bounds use their fresh safe
        // regions.
        while let Some(oid) =
            exact.keys().copied().filter(|o| !out.iter().any(|(done, _)| done == o)).min()
        {
            let pos = exact.remove(&oid).expect("picked from map");
            let p_lst = self.objects.get(oid).map(|s| s.p_lst).unwrap_or(pos);
            let steadiness = self.config.steadiness;
            let grid = std::mem::replace(&mut self.grid, GridIndex::new(self.config.space, 1));
            let queries = std::mem::take(&mut self.queries);
            let sr = {
                let mut ctx = self.ctx(exact, deferred, provider, now);
                compute_safe_region(&mut ctx, &grid, &queries, oid, pos, p_lst, steadiness)
            };
            self.grid = grid;
            self.queries = queries;
            self.work.safe_regions += 1;
            self.tree.update(oid.entry(), sr);
            let last_seq = self.objects.get(oid).map(|s| s.last_seq).unwrap_or(0);
            self.objects
                .set(oid, ObjectState { p_lst: pos, t_lst: now, safe_region: sr, last_seq });
            if let Some(lease) = self.config.lease {
                if lease > 0.0 {
                    // Renewal-on-contact is implicit: this entry's epoch is
                    // the fresh `t_lst`, so any later contact (which bumps
                    // `t_lst`) invalidates it via the staleness rule.
                    self.deferred.push(Reverse(Deferred {
                        due: now + lease,
                        oid,
                        epoch: now,
                        kind: DeferKind::Lease,
                    }));
                }
            }
            out.push((oid, sr));
        }
        out
    }
}

/// Result of [`Server::remove_object`].
#[derive(Clone, Debug)]
pub struct ResultRemoval {
    /// The removed object's last known state.
    pub last_state: ObjectState,
    /// Queries whose results changed.
    pub changes: Vec<ResultChange>,
    /// Safe regions recomputed for objects probed during the removal.
    pub probed: Vec<(ObjectId, Rect)>,
}
