//! The database server façade (paper §3.1, Algorithm 1).
//!
//! The server wires together the four components of Figure 3.1, each an
//! explicit, separately-testable layer: the [`ObjectIndex`] (a pluggable
//! [`SpatialBackend`] over safe regions — the paper's R\*-tree by default,
//! the uniform grid as the update-optimized alternative — plus the object
//! state table), the grid query index
//! (owned by the [`QueryProcessor`] together with evaluation §4.1–§4.2 and
//! reevaluation §4.3), and the [`LocationManager`] (safe-region computation
//! §5, leases, and the deferred probe queue). All communication costs flow
//! through [`CostTracker`] and all exact locations through the
//! [`LocationProvider`] the caller supplies; the façade only orchestrates.

use crate::config::ServerConfig;
use crate::error::{RecoveryError, ServerError};
use crate::eval::EvalCtx;
use crate::ids::{ObjectId, QueryId};
use crate::index::ObjectIndex;
use crate::location::{DeferKind, LocationManager};
use crate::object::ObjectState;
use crate::processor::QueryProcessor;
use crate::provider::{CostTracker, LocationProvider, WorkStats};
use crate::query::{Quarantine, QuerySpec, QueryState, ResultChange};
use crate::scratch::{BatchScratch, OpBuffers};
use crate::wal::{self, Record, ReplayProvider, Wal};
use srb_geom::{Point, Rect};
use srb_hash::FastMap;
use srb_index::{BackendConfig, BackendKind, RStarTree, SpatialBackend};
use std::path::Path;

/// Response to a query registration: the id, the initial results, and the
/// updated safe regions of every object probed during evaluation (step 5 of
/// Figure 3.1 — those clients must be informed).
#[derive(Clone, Debug)]
pub struct RegisterResponse {
    /// The assigned query id.
    pub id: QueryId,
    /// Initial result set (ordered for order-sensitive kNN).
    pub results: Vec<ObjectId>,
    /// New safe regions for the probed objects.
    pub safe_regions: Vec<(ObjectId, Rect)>,
    /// Result changes to *existing* queries. A registration probe can
    /// reveal that an object silently moved (its own report may still be
    /// in flight), and that revelation is folded through the same
    /// reevaluation pipeline as a report — which may change the answers
    /// of queries that were watching the object's old position.
    pub changes: Vec<ResultChange>,
}

/// Response to a source-initiated location update: the updated object's new
/// safe region, the new safe regions of probed objects, and the queries
/// whose results changed.
#[derive(Clone, Debug)]
pub struct UpdateResponse {
    /// New safe region of the updating object.
    pub safe_region: Rect,
    /// New safe regions of objects probed while reevaluating.
    pub probed: Vec<(ObjectId, Rect)>,
    /// Result changes to push to application servers.
    pub changes: Vec<ResultChange>,
}

/// Receiver of response chunks from
/// [`Server::handle_sequenced_updates_chunked`]: called once per chunk
/// with a `&mut Vec` the sink may drain or swap against its own buffer.
pub type ResponseSink<'a> = dyn FnMut(&mut Vec<(ObjectId, UpdateResponse)>) + 'a;

/// A source-initiated location update stamped with the client's sequence
/// number. Over a lossy channel the same report can arrive duplicated or
/// reordered; the server accepts each sequence number at most once
/// ([`Server::handle_sequenced_updates`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SequencedUpdate {
    /// The reporting object.
    pub id: ObjectId,
    /// The reported position.
    pub pos: Point,
    /// Client-assigned, strictly increasing per object. Retransmissions of
    /// the same report reuse the same number.
    pub seq: u64,
}

/// The SRB database server: a thin façade over the Figure-3.1 layers.
/// Generic in the object-index backend `B`, defaulted to the paper's
/// R\*-tree so `Server` (no annotation) keeps its historical meaning.
pub struct Server<B: SpatialBackend = RStarTree> {
    config: ServerConfig,
    index: ObjectIndex<B>,
    processor: QueryProcessor,
    location: LocationManager,
    costs: CostTracker,
    work: WorkStats,
    /// Reused per-operation buffers (see `scratch.rs`): the reason the
    /// steady-state report path allocates nothing.
    scratch: BatchScratch,
    /// The write-ahead log, when durability is enabled. `None` (the
    /// default) keeps every hot path exactly as before — the hooks check
    /// one `Option` discriminant and fall through.
    wal: Option<Box<Wal>>,
}

impl Server {
    /// Creates an R\*-tree-backed server with the given configuration.
    /// Panics when `config.backend` selects a different backend — use
    /// [`Server::with_backend`] with an explicit type for those.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_backend(config)
    }

    /// Creates a server with the default (paper Table 7.1) configuration.
    pub fn with_defaults() -> Self {
        Self::new(ServerConfig::default())
    }
}

impl<B: SpatialBackend> Server<B> {
    /// Creates a server whose object index uses the backend `B`, built from
    /// `config.backend`. Panics when the config variant does not match `B`.
    pub fn with_backend(config: ServerConfig) -> Self {
        let mut server = Server {
            index: ObjectIndex::with_backend(&config.backend, config.space),
            processor: QueryProcessor::new(config.space, config.grid_m),
            location: LocationManager::new(),
            costs: CostTracker::default(),
            work: WorkStats::default(),
            scratch: BatchScratch::default(),
            wal: None,
            config,
        };
        if server.config.durability.enabled() {
            server.attach_durability().expect("failed to create the configured durability store");
        }
        server
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The object index layer (Figure 3.1 "object index").
    pub fn object_index(&self) -> &ObjectIndex<B> {
        &self.index
    }

    /// The query processor layer (Figure 3.1 "query processor" plus the
    /// §3.3 grid index).
    pub fn query_processor(&self) -> &QueryProcessor {
        &self.processor
    }

    /// Number of registered moving objects.
    pub fn object_count(&self) -> usize {
        self.index.len()
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.processor.count()
    }

    /// The current result set of a query.
    pub fn results(&self, id: QueryId) -> Option<&[ObjectId]> {
        self.processor.get(id).map(|q| q.results.as_slice())
    }

    /// The current quarantine area of a query.
    pub fn quarantine(&self, id: QueryId) -> Option<Quarantine> {
        self.processor.get(id).map(|q| q.quarantine)
    }

    /// The safe region the server believes `id` is inside.
    pub fn safe_region(&self, id: ObjectId) -> Option<Rect> {
        self.index.get(id).map(|s| s.safe_region)
    }

    /// The last exactly-known location of `id` and its timestamp.
    pub fn last_known(&self, id: ObjectId) -> Option<(Point, f64)> {
        self.index.get(id).map(|s| (s.p_lst, s.t_lst))
    }

    /// The last accepted sequence number of `id` — the sharded coordinator
    /// stamps convenience (unsequenced) updates with this.
    pub(crate) fn last_seq(&self, id: ObjectId) -> Option<u64> {
        self.index.get(id).map(|s| s.last_seq)
    }

    /// Accumulated communication events.
    pub fn costs(&self) -> CostTracker {
        self.costs
    }

    /// Accumulated work counters.
    pub fn work(&self) -> WorkStats {
        self.work
    }

    /// Deterministic work units: object-index node visits.
    pub fn index_visits(&self) -> u64 {
        self.index.visits()
    }

    /// Size (bucket entries) of the grid query index — the footprint metric
    /// of §7.3.
    pub fn grid_footprint(&self) -> usize {
        self.processor.grid_footprint()
    }

    /// Iterates over the registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.processor.ids()
    }

    /// Verifies internal consistency. In release builds this is a cheap
    /// structural check (O(1) count comparison) so tests can call it on hot
    /// paths without distorting measurements; debug builds run the full
    /// [`check_invariants_deep`](Self::check_invariants_deep) scan.
    pub fn check_invariants(&self) {
        self.index.check_counts();
        #[cfg(debug_assertions)]
        self.check_invariants_deep();
    }

    /// Full O(n·q) consistency scan: tree invariants, entry-by-entry
    /// tree/state coherence, and per-query result-size bounds. Always
    /// available (release included) for correctness-critical tests.
    #[doc(hidden)]
    pub fn check_invariants_deep(&self) {
        self.index.check_coherence();
        self.processor.check_result_sizes();
    }

    // ------------------------------------------------------------------
    // Object lifecycle
    // ------------------------------------------------------------------

    /// Registers a new moving object at `pos`. The object is folded into any
    /// query whose quarantine area covers it, and receives its initial safe
    /// region (returned; the client must be told). Fails with
    /// [`ServerError::DuplicateObject`] if the id is already registered — a
    /// replayed registration must not corrupt existing state.
    pub fn add_object(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Result<Rect, ServerError> {
        // WAL hook: record the operation (inputs + probe transcript) and
        // re-enter with logging disarmed. Logged unconditionally — even a
        // rejected duplicate mutates no state but must replay to the same
        // rejection, keeping the record streams aligned.
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.add_object(id, pos, &mut rp, now)
            };
            w.log_add_object(id, pos, now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        let _span = srb_obs::span!("server.add_object");
        if self.index.get(id).is_some() {
            return Err(ServerError::DuplicateObject(id));
        }
        self.index.insert(
            id,
            ObjectState { p_lst: pos, t_lst: now, safe_region: Rect::point(pos), last_seq: 0 },
        );
        // Fold into affected queries: any query whose quarantine contains
        // pos may gain the new object.
        let mut op = self.scratch.take_op();
        op.candidates.extend(self.processor.grid().queries_at(pos).iter().copied().filter(
            |&qid| self.processor.get(qid).map(|qs| qs.quarantine.contains(pos)).unwrap_or(false),
        ));
        op.exact.insert(id, pos);
        let space = self.config.space;
        for &qid in &op.candidates {
            let is_range =
                matches!(self.processor.get(qid).map(|qs| qs.spec), Some(QuerySpec::Range { .. }));
            if is_range {
                let qs = self.processor.get_mut(qid).expect("query exists");
                if !qs.is_result(id) {
                    qs.results.push(id);
                }
            } else {
                let mut ctx = ctx(
                    &self.index,
                    &mut self.costs,
                    &mut self.work,
                    &mut op.exact,
                    &mut op.deferred,
                    provider,
                    self.config.max_speed,
                    now,
                );
                self.processor.refold_knn(&mut ctx, qid, &space);
            }
        }
        self.recompute_safe_regions(&mut op, provider, now);
        self.location.absorb_deferred(&mut op.deferred, &op.exact, self.index.objects());
        self.scratch.put_op(op);
        Ok(self.index.get(id).expect("just added").safe_region)
    }

    /// Removes a moving object entirely (extension beyond the paper: object
    /// churn). Queries holding it as a result are reevaluated.
    pub fn remove_object(
        &mut self,
        id: ObjectId,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Option<ResultRemoval> {
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.remove_object(id, &mut rp, now)
            };
            w.log_remove_object(id, now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        let st = self.index.remove(id)?;
        let mut changes = Vec::new();
        let mut op = self.scratch.take_op();
        op.candidates.extend(self.processor.ids());
        let space = self.config.space;
        for i in 0..op.candidates.len() {
            let qid = op.candidates[i];
            let holds = self.processor.get(qid).map(|qs| qs.is_result(id)).unwrap_or(false);
            if !holds {
                continue;
            }
            let qs = self.processor.get_mut(qid).expect("query exists");
            qs.results.retain(|&o| o != id);
            if matches!(qs.spec, QuerySpec::Knn { .. }) {
                let mut ctx = ctx(
                    &self.index,
                    &mut self.costs,
                    &mut self.work,
                    &mut op.exact,
                    &mut op.deferred,
                    provider,
                    self.config.max_speed,
                    now,
                );
                self.processor.refold_knn(&mut ctx, qid, &space);
            }
            let results = self.processor.get(qid).expect("query exists").results.clone();
            changes.push(ResultChange { query: qid, results });
        }
        self.recompute_safe_regions(&mut op, provider, now);
        self.location.absorb_deferred(&mut op.deferred, &op.exact, self.index.objects());
        let probed = op.recomputed.clone();
        self.scratch.put_op(op);
        Some(ResultRemoval { last_state: st, changes, probed })
    }

    // ------------------------------------------------------------------
    // Query lifecycle (Algorithm 1, lines 2-7)
    // ------------------------------------------------------------------

    /// Registers a continuous query: evaluates it on safe regions (probing
    /// lazily), computes its quarantine area, and indexes it in the grid.
    pub fn register_query(
        &mut self,
        spec: QuerySpec,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> RegisterResponse {
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.register_query(spec, &mut rp, now)
            };
            w.log_register_query(&spec, now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        let _span = srb_obs::span!("server.register_query");
        let mut op = self.scratch.take_op();
        let space = self.config.space;
        let (results, quarantine) = {
            let mut ctx = ctx(
                &self.index,
                &mut self.costs,
                &mut self.work,
                &mut op.exact,
                &mut op.deferred,
                provider,
                self.config.max_speed,
                now,
            );
            self.processor.evaluate_new(&mut ctx, spec, &space)
        };

        // A registration probe may reveal that an object silently moved
        // since its last report (the report can still be in flight). The
        // new query already evaluated against the exact position, but the
        // object's membership in *existing* queries was last decided
        // against the stale bound — and the recompute below advances the
        // pinned position, so a later report would no longer scan the old
        // cell. Capture the pre-probe positions now; each revelation is
        // folded through the standard report pipeline further down, once
        // the new query is installed.
        let mut revealed: Vec<(ObjectId, Point, Point)> = op
            .exact
            .iter()
            .filter_map(|(&o, &p)| {
                let prev = self.index.get(o)?.p_lst;
                (prev != p).then_some((o, p, prev))
            })
            .collect();
        revealed.sort_unstable_by_key(|&(o, _, _)| o);

        let id = self.processor.alloc_id();
        self.processor.install(id, QueryState { spec, results: results.clone(), quarantine });

        // Only probed objects need to learn about the new query (§5, case
        // 1); their safe regions are recomputed against all constraints
        // (the fresh computation subsumes the paper's intersection with
        // sr_Q and can only yield a larger — still sound — region).
        self.recompute_safe_regions(&mut op, provider, now);
        let mut safe_regions = op.recomputed.clone();
        self.absorb_probed_only(&mut op);
        self.scratch.put_op(op);
        if revealed.is_empty() {
            return RegisterResponse { id, results, safe_regions, changes: Vec::new() };
        }

        let mut changes = Vec::new();
        for &(o, p, prev) in &revealed {
            let resp = self.process_revelation(o, p, prev, provider, now);
            safe_regions.push((o, resp.safe_region));
            safe_regions.extend(resp.probed);
            changes.extend(resp.changes);
        }
        // Reevaluation never disturbs the freshly installed query (it saw
        // the exact positions already), and later grants supersede earlier
        // ones for the same object.
        changes.retain(|c| c.query != id);
        let results = self.results(id).map(|r| r.to_vec()).unwrap_or(results);
        let deduped: std::collections::BTreeMap<ObjectId, Rect> =
            safe_regions.into_iter().collect();
        RegisterResponse { id, results, safe_regions: deduped.into_iter().collect(), changes }
    }

    /// Deregisters a query (Algorithm 1 lines 6-7). Safe regions are not
    /// eagerly enlarged; they regrow on the next update of each object.
    pub fn deregister_query(&mut self, id: QueryId) -> bool {
        if let Some(mut w) = self.wal.take() {
            let result = self.processor.remove(id);
            w.log_deregister_query(id);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        self.processor.remove(id)
    }

    // ------------------------------------------------------------------
    // Location updates (Algorithm 1, lines 8-15)
    // ------------------------------------------------------------------

    /// Handles a source-initiated location update: finds affected queries
    /// via the grid, incrementally reevaluates them (probing lazily),
    /// reports result changes, and recomputes the safe regions of the
    /// updating object and every probed object. Fails with
    /// [`ServerError::UnknownObject`] instead of aborting when the update
    /// references an unregistered object (e.g. a misdirected or replayed
    /// message). The update is implicitly stamped with the next sequence
    /// number; use [`handle_sequenced_updates`](Self::handle_sequenced_updates)
    /// for explicit client-side numbering.
    pub fn handle_location_update(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Result<UpdateResponse, ServerError> {
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.handle_location_update(id, pos, &mut rp, now)
            };
            w.log_update(id, pos, now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        let st = self.index.get_mut(id).ok_or(ServerError::UnknownObject(id))?;
        st.last_seq += 1;
        srb_obs::counter!("server.updates").inc();
        self.costs.source_updates += 1;
        Ok(self.process_report(id, pos, provider, now))
    }

    /// Handles a *batch* of simultaneous source-initiated updates
    /// consistently: all reported positions are installed first (so no
    /// query is evaluated against a stale bound of a same-instant mover),
    /// then each affected query is reevaluated exactly once — incrementally
    /// when a single mover affects it, from scratch when several do. This
    /// both preserves exactness under synchronized client check ticks and
    /// shares evaluation work across movers (in the spirit of SINA's shared
    /// execution).
    pub fn handle_location_updates(
        &mut self,
        updates: &[(ObjectId, Point)],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        // WAL hook: the raw batch is logged verbatim (unknown-object
        // drops must recur on replay), and the sequenced path below runs
        // with logging disarmed so it cannot double-log.
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.handle_location_updates(updates, &mut rp, now)
            };
            w.log_raw_batch_inline(now, updates);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        // Stamp each update with the object's next sequence number; the
        // sequenced path drops unknown objects (and in-batch duplicates)
        // instead of panicking.
        let sequenced: Vec<SequencedUpdate> = updates
            .iter()
            .filter_map(|&(id, pos)| {
                self.index.get(id).map(|st| SequencedUpdate { id, pos, seq: st.last_seq + 1 })
            })
            .collect();
        self.work.unknown_object_drops += (updates.len() - sequenced.len()) as u64;
        self.handle_sequenced_updates(&sequenced, provider, now)
    }

    /// Handles a batch of *sequenced* updates from an unreliable channel.
    /// Updates whose sequence number is at or below the object's last
    /// accepted one are duplicates or reorderings: they are dropped
    /// idempotently (counted in [`WorkStats::stale_seq_drops`]) and answered
    /// with a re-grant of the object's current safe region, so a client
    /// whose previous grant was lost on the downlink still converges.
    /// Updates for unknown objects are dropped and counted. Accepted
    /// updates are processed exactly like
    /// [`handle_location_updates`](Self::handle_location_updates).
    pub fn handle_sequenced_updates(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        let mut out = Vec::new();
        self.handle_sequenced_updates_into(updates, provider, now, &mut out);
        out
    }

    /// Allocation-free variant of
    /// [`handle_sequenced_updates`](Self::handle_sequenced_updates):
    /// **appends** the responses to `out` instead of returning a fresh
    /// vector, so a caller reusing `out` across batches completes a
    /// steady-state batch with zero heap allocations (see `alloc_steady.rs`).
    pub fn handle_sequenced_updates_into(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &mut dyn LocationProvider,
        now: f64,
        out: &mut Vec<(ObjectId, UpdateResponse)>,
    ) {
        if let Some(mut w) = self.wal.take() {
            {
                let mut rp = w.recorder(provider);
                self.handle_sequenced_updates_into(updates, &mut rp, now, out);
            }
            w.log_batch_inline(now, updates);
            self.wal = Some(w);
            self.wal_post_op();
            return;
        }
        let mut seq = self.scratch.take_seq();
        for u in updates {
            match self.index.get_mut(u.id) {
                None => {
                    self.work.unknown_object_drops += 1;
                    srb_obs::counter!("server.unknown_object_drops").inc();
                }
                Some(st) if u.seq <= st.last_seq => {
                    self.work.stale_seq_drops += 1;
                    self.work.regrants += 1;
                    srb_obs::counter!("server.stale_seq_drops").inc();
                    srb_obs::counter!("server.regrants").inc();
                    seq.regrants.push(u.id);
                }
                Some(st) => {
                    st.last_seq = u.seq;
                    seq.accepted.push((u.id, u.pos));
                }
            }
        }
        self.apply_update_batch(&seq.accepted, provider, now, out);
        // Re-grants are materialized *after* the batch is applied so they
        // carry the post-update safe region, never a stale one.
        for &id in &seq.regrants {
            if let Some(st) = self.index.get(id) {
                out.push((
                    id,
                    UpdateResponse {
                        safe_region: st.safe_region,
                        probed: Vec::new(),
                        changes: Vec::new(),
                    },
                ));
            }
        }
        self.scratch.put_seq(seq);
    }

    /// Chunked-yield variant of
    /// [`handle_sequenced_updates_into`](Self::handle_sequenced_updates_into)
    /// for the streaming coordinator merge: the batch is processed whole
    /// (identical probe pattern, identical responses), then the responses
    /// are handed to `emit` in chunks of at most `chunk_cap` entries, in
    /// order. `emit` receives each chunk as a `&mut Vec` it may drain or
    /// swap with its own buffer; the vectors recirculate through the
    /// server's scratch arena, so the steady-state path stays
    /// allocation-free.
    pub fn handle_sequenced_updates_chunked(
        &mut self,
        updates: &[SequencedUpdate],
        provider: &mut dyn LocationProvider,
        now: f64,
        chunk_cap: usize,
        emit: &mut ResponseSink<'_>,
    ) {
        let chunk_cap = chunk_cap.max(1);
        let mut resp = self.scratch.take_resp();
        self.handle_sequenced_updates_into(updates, provider, now, &mut resp.stage);
        while !resp.stage.is_empty() {
            let take = resp.stage.len().min(chunk_cap);
            resp.chunk.clear();
            resp.chunk.extend(resp.stage.drain(..take));
            emit(&mut resp.chunk);
        }
        self.scratch.put_resp(resp);
    }

    /// Shared batch body: every position installed first, then each affected
    /// query reevaluated once. Callers guarantee all ids are registered.
    /// Appends this batch's responses to `out`.
    fn apply_update_batch(
        &mut self,
        updates: &[(ObjectId, Point)],
        provider: &mut dyn LocationProvider,
        now: f64,
        out: &mut Vec<(ObjectId, UpdateResponse)>,
    ) {
        if updates.is_empty() {
            return;
        }
        let _span = srb_obs::span!("server.update_batch");
        srb_obs::counter!("server.updates").add(updates.len() as u64);
        self.costs.source_updates += updates.len() as u64;
        if updates.len() == 1 {
            let (id, pos) = updates[0];
            let resp = self.process_report(id, pos, provider, now);
            out.push((id, resp));
            return;
        }
        let mut op = self.scratch.take_op();
        let mut batch = self.scratch.take_batch();
        for &(id, pos) in updates {
            let st = *self.index.get(id).expect("batch ids are pre-checked");
            batch.prev.insert(id, st.p_lst);
            self.index.pin_to_point(id, pos);
            op.exact.insert(id, pos);
        }

        // Affected-query candidates, with the set of movers per query.
        for &(id, pos) in updates {
            let p_lst = batch.prev[&id];
            self.processor.candidates_into(pos, p_lst, &mut op.candidates);
            for &qid in &op.candidates {
                match batch.per_query.iter_mut().find(|(q, _)| *q == qid) {
                    Some((_, movers)) => {
                        if !movers.contains(&id) {
                            movers.push(id);
                        }
                    }
                    None => batch.per_query.push((qid, vec![id])),
                }
            }
        }
        batch.per_query.sort_by_key(|(q, _)| *q);

        let space = self.config.space;
        let mut changes = Vec::new();
        for (qid, movers) in &batch.per_query {
            let mut ctx = ctx(
                &self.index,
                &mut self.costs,
                &mut self.work,
                &mut op.exact,
                &mut op.deferred,
                provider,
                self.config.max_speed,
                now,
            );
            if let Some(results) =
                self.processor.reevaluate_batch(&mut ctx, *qid, movers, &batch.prev, &space)
            {
                changes.push(ResultChange { query: *qid, results });
            }
        }

        self.recompute_safe_regions(&mut op, provider, now);
        self.absorb_probed_only(&mut op);

        // Assemble per-updater responses; probed bystanders ride along with
        // the first updater. `extra`/`changes` stay `Vec::new()` (no heap)
        // when nothing beyond the movers was touched — the steady state.
        let first = out.len();
        let mut extra: Vec<(ObjectId, Rect)> = Vec::new();
        for &(oid, sr) in &op.recomputed {
            if updates.iter().any(|&(uid, _)| uid == oid) {
                out.push((
                    oid,
                    UpdateResponse { safe_region: sr, probed: Vec::new(), changes: Vec::new() },
                ));
            } else {
                extra.push((oid, sr));
            }
        }
        if let Some(slot) = out.get_mut(first) {
            slot.1.probed = extra;
            slot.1.changes = changes;
        }
        self.scratch.put_batch(batch);
        self.scratch.put_op(op);
    }

    /// Shared body of source-initiated updates and deferred probes.
    fn process_report(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> UpdateResponse {
        let p_lst = self.index.get(id).expect("unknown object").p_lst;
        self.process_revelation(id, pos, p_lst, provider, now)
    }

    /// Folds one exact-position revelation through the maintenance
    /// pipeline: pin, reevaluate every query watching the old or new cell,
    /// regrant safe regions. `p_lst` is the previously *known* position
    /// the revelation supersedes — callers that already advanced the pin
    /// (e.g. registration probes) pass the pre-probe position so queries
    /// watching the old cell are still maintained.
    fn process_revelation(
        &mut self,
        id: ObjectId,
        pos: Point,
        p_lst: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> UpdateResponse {
        // No span here: this is the per-report hot path, and its envelope is
        // already timed per batch by `server.update_batch` (and within it by
        // `location.recompute_safe_regions`, where the time actually goes).
        // A per-report span measurably distorts the scaling workload.

        // The object's stored region no longer bounds it; replace it with
        // the exact point so index-based evaluation stays sound.
        self.index.pin_to_point(id, pos);
        let mut op = self.scratch.take_op();
        op.exact.insert(id, pos);

        // Affected-query candidates: buckets of the new and old cells.
        self.processor.candidates_into(pos, p_lst, &mut op.candidates);

        let mut changes = Vec::new();
        let space = self.config.space;
        for i in 0..op.candidates.len() {
            let qid = op.candidates[i];
            let mut ctx = ctx(
                &self.index,
                &mut self.costs,
                &mut self.work,
                &mut op.exact,
                &mut op.deferred,
                provider,
                self.config.max_speed,
                now,
            );
            if let Some(results) =
                self.processor.reevaluate_single(&mut ctx, qid, id, pos, p_lst, &space)
            {
                changes.push(ResultChange { query: qid, results });
            }
        }

        self.recompute_safe_regions(&mut op, provider, now);
        self.location.absorb_deferred(&mut op.deferred, &op.exact, self.index.objects());
        // In steady state the only recomputed region is the updater's own,
        // so `probed` collects nothing and stays heap-free.
        let mut safe_region = None;
        let mut probed: Vec<(ObjectId, Rect)> = Vec::new();
        for &(oid, sr) in &op.recomputed {
            if oid == id {
                safe_region = Some(sr);
            } else {
                probed.push((oid, sr));
            }
        }
        let safe_region = safe_region.expect("updating object gets a safe region");
        self.scratch.put_op(op);
        UpdateResponse { safe_region, probed, changes }
    }

    /// Ingests a coordinator-initiated probe result as a server-initiated
    /// update: the probe cost is booked here, then the position is processed
    /// exactly like a report (reevaluation, safe-region regrant). Used by
    /// the sharded coordinator when cross-shard merging had to pin an
    /// object's exact location — the owning shard must regrant a region so
    /// the client is not left pending.
    pub(crate) fn ingest_probe(
        &mut self,
        id: ObjectId,
        pos: Point,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> UpdateResponse {
        self.costs.probes += 1;
        self.process_report(id, pos, provider, now)
    }

    // ------------------------------------------------------------------
    // Deferred probes (location-manager timers)
    // ------------------------------------------------------------------

    /// The earliest pending deferred-probe time, if any. Stale entries are
    /// discarded lazily. Event-driven callers (the simulator) use this to
    /// schedule [`process_deferred`](Self::process_deferred).
    pub fn next_deferred_due(&mut self) -> Option<f64> {
        // Even this "read" is logged: it lazily pops stale timer entries,
        // mutating the deferred heap that checkpoints serialize.
        if let Some(mut w) = self.wal.take() {
            let result = self.location.next_due(self.index.objects());
            w.log_next_due();
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        self.location.next_due(self.index.objects())
    }

    /// Fires every deferred probe due at or before `now`: each still-fresh
    /// target is probed (cost `c_p`) and handled like a server-initiated
    /// update, restoring raw-safe-region soundness before the reachability
    /// circle can invalidate the decision that scheduled it.
    pub fn process_deferred(
        &mut self,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) -> Vec<(ObjectId, UpdateResponse)> {
        if let Some(mut w) = self.wal.take() {
            let result = {
                let mut rp = w.recorder(provider);
                self.process_deferred(&mut rp, now)
            };
            w.log_process_deferred(now);
            self.wal = Some(w);
            self.wal_post_op();
            return result;
        }
        let _span = srb_obs::span!("server.process_deferred");
        let mut out = Vec::new();
        while let Some(d) = self.location.pop_due(self.index.objects(), now) {
            let pos = provider.probe(d.oid);
            self.costs.probes += 1;
            if d.kind == DeferKind::Lease {
                self.work.lease_probes += 1;
            }
            out.push((d.oid, self.process_report(d.oid, pos, provider, now)));
        }
        out
    }

    // ------------------------------------------------------------------
    // Durability plane (WAL + checkpoints + recovery)
    // ------------------------------------------------------------------

    /// Creates the configured durability store and attaches a fresh WAL,
    /// rooted at a checkpoint of the current state. Generations already
    /// in the directory are superseded, never overwritten.
    pub fn attach_durability(&mut self) -> Result<(), RecoveryError> {
        let d = self.config.durability;
        let Some(dir) = d.dir else { return Err(RecoveryError::Disabled) };
        let mut payload = Vec::new();
        self.encode_state(&mut payload);
        let store = srb_durable::Store::create(Path::new(dir), 1, d.policy, d.group_ops, &payload)?;
        self.wal = Some(Box::new(Wal::new(store, d.checkpoint_ops)));
        Ok(())
    }

    /// Rebuilds a server from the durability directory in
    /// `config.durability`: loads the newest valid checkpoint (falling
    /// back a generation when the newest is damaged), replays the log
    /// tail through the regular entry points, and reattaches the WAL.
    /// Returns the server and the number of replayed operations.
    pub fn recover(config: ServerConfig) -> Result<(Self, usize), RecoveryError> {
        let d = config.durability;
        let Some(dir) = d.dir else { return Err(RecoveryError::Disabled) };
        let rec = srb_durable::Store::recover(Path::new(dir), 1, d.policy, d.group_ops)?;
        let mut server = Self::decode_state(&config, &rec.payload)?;
        let mut replayed = 0usize;
        for genf in &rec.generations {
            for payload in &genf.logs[0] {
                server.apply_record(payload)?;
                replayed += 1;
            }
        }
        server.wal = Some(Box::new(Wal::new(rec.store, d.checkpoint_ops)));
        Ok((server, replayed))
    }

    /// True when a WAL is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// True when an earlier I/O failure poisoned the WAL. A poisoned
    /// server keeps serving from memory but persists nothing further;
    /// the durable state is whatever the last commit made stable, and
    /// the only path back is [`Server::recover`].
    pub fn wal_poisoned(&self) -> bool {
        self.wal.as_ref().map(|w| w.poisoned()).unwrap_or(false)
    }

    /// The active checkpoint generation, when durability is on.
    pub fn wal_generation(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.generation())
    }

    /// Forces every buffered log record to stable storage now.
    pub fn sync_wal(&mut self) {
        if let Some(w) = self.wal.as_mut() {
            w.sync();
        }
    }

    /// Rotates the durability store to a fresh checkpoint of the current
    /// state, truncating the replay tail. Returns `false` when no WAL is
    /// attached or the rotation failed (which poisons the WAL).
    pub fn checkpoint(&mut self) -> bool {
        let Some(mut w) = self.wal.take() else { return false };
        let mut payload = Vec::new();
        self.encode_state(&mut payload);
        let ok = w.checkpoint(&payload).is_ok();
        self.wal = Some(w);
        ok
    }

    /// The index structure currently live under this server (which, on
    /// the adaptive plane, can differ from what `config.backend` names).
    pub fn backend_kind(&self) -> BackendKind {
        self.index.tree().kind()
    }

    /// Live-migrates the object index to a new backend configuration (see
    /// [`SpatialBackend::migrate`]) — a semantic no-op: every stored safe
    /// region is preserved, so query results are unchanged. Returns
    /// `false` when the backend type `B` cannot represent `config`
    /// (everything except `DynBackend`).
    ///
    /// With durability attached this forces a checkpoint: an explicit
    /// migration is *not* an operation the log replays, so the checkpoint
    /// is what carries the new structure across a crash. (Migrations made
    /// by the adaptive controller need no checkpoint — they are replayed
    /// deterministically from controller state.)
    pub fn migrate_backend(&mut self, config: &BackendConfig) -> bool {
        if !self.migrate_index(config) {
            return false;
        }
        srb_obs::counter!("index.adaptive.explicit_migrations").inc();
        if self.wal.is_some() {
            self.checkpoint();
        }
        true
    }

    /// The bare index migration, without the explicit-migration telemetry
    /// or checkpoint — the adaptive controller's path (its migrations are
    /// replayed from controller state, so no checkpoint is needed).
    pub(crate) fn migrate_index(&mut self, config: &BackendConfig) -> bool {
        self.index.migrate_backend(config)
    }

    /// A 64-bit digest of the full serialized state — what the crash
    /// harness compares between a recovered run and its golden twin.
    pub fn state_digest(&self) -> u64 {
        let mut buf = Vec::new();
        self.encode_state(&mut buf);
        wal::fnv1a64(&buf)
    }

    /// Group-commit + checkpoint-cadence bookkeeping after one logged
    /// operation.
    fn wal_post_op(&mut self) {
        let due = match self.wal.as_mut() {
            Some(w) => w.note_op(),
            None => false,
        };
        if due {
            self.checkpoint();
        }
    }

    /// Serializes the complete engine state (everything a checkpoint
    /// needs: config fingerprint, cost/work counters, object index,
    /// query processor, deferred timers). Scratch buffers are empty
    /// between operations and carry no state.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        use srb_durable::codec::{put_u64, put_u8};
        put_u64(out, wal::config_fingerprint(&self.config));
        // The *live* index structure, which under the adaptive plane can
        // differ from what `config.backend` names. Recovery refuses a
        // backend type that cannot hold it (`RecoveryError::BackendMismatch`).
        put_u8(out, self.index.tree().kind().tag());
        put_u64(out, self.costs.source_updates);
        put_u64(out, self.costs.probes);
        let w = &self.work;
        for v in [
            w.evaluations,
            w.safe_regions,
            w.probes_avoided,
            w.ordering_fallbacks,
            w.probes_range,
            w.probes_knn_eval,
            w.probes_radius,
            w.probes_reeval,
            w.probes_neighbor,
            w.stale_seq_drops,
            w.unknown_object_drops,
            w.lease_probes,
            w.regrants,
        ] {
            put_u64(out, v);
        }
        self.index.encode_state(out);
        self.processor.encode_state(out);
        self.location.encode_state(out);
    }

    /// Rebuilds a server from a checkpoint payload. The WAL is *not*
    /// attached — [`Server::recover`] does that after replay.
    pub(crate) fn decode_state(
        config: &ServerConfig,
        payload: &[u8],
    ) -> Result<Self, RecoveryError> {
        let mut dec = srb_durable::Dec::new(payload);
        let server = Self::decode_state_from(config, &mut dec)?;
        dec.finish()?;
        Ok(server)
    }

    /// Like [`decode_state`](Self::decode_state) but reads from an open
    /// decoder without requiring it to be exhausted — the sharded
    /// coordinator embeds one of these per shard in its own checkpoint.
    pub(crate) fn decode_state_from(
        config: &ServerConfig,
        dec: &mut srb_durable::Dec<'_>,
    ) -> Result<Self, RecoveryError> {
        if dec.u64()? != wal::config_fingerprint(config) {
            return Err(RecoveryError::ConfigMismatch);
        }
        let kind = BackendKind::from_tag(dec.u8()?)
            .ok_or(RecoveryError::Corrupt("unknown backend kind tag"))?;
        if !B::accepts_kind(kind) {
            return Err(RecoveryError::BackendMismatch {
                found: kind.label(),
                recovering: B::label(),
            });
        }
        let costs = CostTracker { source_updates: dec.u64()?, probes: dec.u64()? };
        let work = WorkStats {
            evaluations: dec.u64()?,
            safe_regions: dec.u64()?,
            probes_avoided: dec.u64()?,
            ordering_fallbacks: dec.u64()?,
            probes_range: dec.u64()?,
            probes_knn_eval: dec.u64()?,
            probes_radius: dec.u64()?,
            probes_reeval: dec.u64()?,
            probes_neighbor: dec.u64()?,
            stale_seq_drops: dec.u64()?,
            unknown_object_drops: dec.u64()?,
            lease_probes: dec.u64()?,
            regrants: dec.u64()?,
        };
        let index = ObjectIndex::decode_state(dec)?;
        let processor = QueryProcessor::decode_state(dec)?;
        let location = LocationManager::decode_state(dec)?;
        Ok(Server {
            config: *config,
            index,
            processor,
            location,
            costs,
            work,
            scratch: BatchScratch::default(),
            wal: None,
        })
    }

    /// Replays one log record through the public entry points (the WAL
    /// is detached during recovery, so nothing re-logs). Rejected
    /// operations recur deterministically and are ignored exactly as the
    /// original run ignored them.
    pub(crate) fn apply_record(&mut self, payload: &[u8]) -> Result<(), RecoveryError> {
        match wal::decode_record(payload)? {
            Record::AddObject { id, pos, now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.add_object(id, pos, &mut rp, now);
                Self::check_replay(&rp)
            }
            Record::RemoveObject { id, now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.remove_object(id, &mut rp, now);
                Self::check_replay(&rp)
            }
            Record::RegisterQuery { spec, now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.register_query(spec, &mut rp, now);
                Self::check_replay(&rp)
            }
            Record::DeregisterQuery { id } => {
                let _ = self.deregister_query(id);
                Ok(())
            }
            Record::Update { id, pos, now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.handle_location_update(id, pos, &mut rp, now);
                Self::check_replay(&rp)
            }
            Record::Batch { now, updates, shard_counts, probes } => {
                if !shard_counts.is_empty() {
                    return Err(RecoveryError::Corrupt("sharded marker in a plain log"));
                }
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.handle_sequenced_updates(&updates, &mut rp, now);
                Self::check_replay(&rp)
            }
            Record::RawBatch { now, updates, shard_counts, probes } => {
                if !shard_counts.is_empty() {
                    return Err(RecoveryError::Corrupt("sharded marker in a plain log"));
                }
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.handle_location_updates(&updates, &mut rp, now);
                Self::check_replay(&rp)
            }
            Record::ProcessDeferred { now, probes } => {
                let mut rp = ReplayProvider::new(&probes);
                let _ = self.process_deferred(&mut rp, now);
                Self::check_replay(&rp)
            }
            Record::NextDue => {
                let _ = self.next_deferred_due();
                Ok(())
            }
        }
    }

    fn check_replay(rp: &ReplayProvider<'_>) -> Result<(), RecoveryError> {
        if rp.diverged() {
            Err(RecoveryError::Corrupt("replay diverged from the probe transcript"))
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Recomputes and installs safe regions for every exactly-known object
    /// of this server operation (Algorithm 1, lines 14-15), filling
    /// `op.recomputed` with the new regions.
    fn recompute_safe_regions(
        &mut self,
        op: &mut OpBuffers,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) {
        op.recomputed.clear();
        self.location.recompute_safe_regions(
            &self.config,
            &mut self.index,
            &self.processor,
            &mut self.costs,
            &mut self.work,
            &mut op.exact,
            &mut op.deferred,
            &mut op.recomputed,
            provider,
            now,
        )
    }

    /// Absorbs the operation's deferral requests treating exactly the
    /// just-recomputed objects as exactly known (the batch/registration
    /// paths' "exact_all" rule: a request for any probed object is dropped
    /// because its region was just refreshed). `op.exact` is rebuilt in
    /// place — after the recompute drain it only holds fixpoint leftovers,
    /// all of which were recomputed too.
    fn absorb_probed_only(&mut self, op: &mut OpBuffers) {
        op.exact.clear();
        for &(o, _) in &op.recomputed {
            op.exact.insert(o, Point::ORIGIN);
        }
        self.location.absorb_deferred(&mut op.deferred, &op.exact, self.index.objects());
    }

    /// Drops all scratch capacity. Bench-only hook: calling this before each
    /// batch reinstates the old allocate-per-batch behavior so the `mem`
    /// bench can measure the before/after delta on one binary.
    #[doc(hidden)]
    pub fn drop_scratch_capacity(&mut self) {
        self.scratch.drop_capacity();
    }

    /// Most entries any scratch buffer held during a single operation.
    pub fn scratch_high_water(&self) -> usize {
        self.scratch.high_water()
    }
}

/// Builds the evaluation context from the split server layers.
#[allow(clippy::too_many_arguments)]
fn ctx<'a, B: SpatialBackend>(
    index: &'a ObjectIndex<B>,
    costs: &'a mut CostTracker,
    work: &'a mut WorkStats,
    exact: &'a mut FastMap<ObjectId, Point>,
    deferred: &'a mut Vec<(ObjectId, f64)>,
    provider: &'a mut dyn LocationProvider,
    max_speed: Option<f64>,
    now: f64,
) -> EvalCtx<'a, B> {
    EvalCtx {
        tree: index.tree(),
        objects: index.objects(),
        exact,
        provider,
        costs,
        work,
        deferred,
        max_speed,
        now,
    }
}

/// Result of [`Server::remove_object`].
#[derive(Clone, Debug)]
pub struct ResultRemoval {
    /// The removed object's last known state.
    pub last_state: ObjectState,
    /// Queries whose results changed.
    pub changes: Vec<ResultChange>,
    /// Safe regions recomputed for objects probed during the removal.
    pub probed: Vec<(ObjectId, Rect)>,
}
