//! Location bounds: what the server knows about where an object can be.
//!
//! During query evaluation an object is represented either by its exact
//! point (after a probe or a source-initiated update) or by a *region*: its
//! safe region, optionally refined by the reachability circle of §6.1
//! (centered at the last reported location `p_lst`, radius `V·(t − T)`).

use srb_geom::{Circle, Point, Rect};

/// Bound on an object's current location.
#[derive(Clone, Copy, Debug)]
pub enum LocBound {
    /// Exactly known location.
    Exact(Point),
    /// The object is somewhere in `sr ∩ reach` (reach = everywhere when
    /// absent).
    Region {
        /// The safe region stored in the object index.
        sr: Rect,
        /// Reachability circle, when the maximum-speed enhancement is on.
        reach: Option<Circle>,
    },
}

impl LocBound {
    /// True when the bound is an exact point.
    pub fn is_exact(&self) -> bool {
        matches!(self, LocBound::Exact(_))
    }

    /// Lower distance bound using only the *stored* region (no reachability
    /// refinement). Quarantine radii must use raw bounds: a reachability
    /// circle keeps growing after the decision, so refined bounds are valid
    /// only at evaluation time, while quarantine areas must stay valid until
    /// the next update (see DESIGN.md §5).
    pub fn raw_min_dist(&self, q: Point) -> f64 {
        match self {
            LocBound::Exact(p) => p.dist(q),
            LocBound::Region { sr, .. } => sr.min_dist(q),
        }
    }

    /// Upper distance bound using only the stored region.
    pub fn raw_max_dist(&self, q: Point) -> f64 {
        match self {
            LocBound::Exact(p) => p.dist(q),
            LocBound::Region { sr, .. } => sr.max_dist(q),
        }
    }

    /// Lower bound on the distance from `q` to the object — the paper's
    /// `δ(q, ·)`, tightened by the reachability circle when available.
    pub fn min_dist(&self, q: Point) -> f64 {
        match self {
            LocBound::Exact(p) => p.dist(q),
            LocBound::Region { sr, reach } => {
                let d = sr.min_dist(q);
                match reach {
                    Some(c) => d.max(c.min_dist(q)),
                    None => d,
                }
            }
        }
    }

    /// Upper bound on the distance from `q` to the object — the paper's
    /// `Δ(q, ·)`, tightened by the reachability circle when available.
    pub fn max_dist(&self, q: Point) -> f64 {
        match self {
            LocBound::Exact(p) => p.dist(q),
            LocBound::Region { sr, reach } => {
                let d = sr.max_dist(q);
                match reach {
                    Some(c) => d.min(c.max_dist(q)),
                    None => d,
                }
            }
        }
    }

    /// True when the object is certainly inside `rect`.
    pub fn definitely_inside(&self, rect: &Rect) -> bool {
        match self {
            LocBound::Exact(p) => rect.contains_point(*p),
            LocBound::Region { sr, reach } => {
                if rect.contains_rect(sr) {
                    return true;
                }
                match reach {
                    Some(c) => match sr.intersection(&c.bbox()) {
                        Some(cap) => rect.contains_rect(&cap),
                        // Inconsistent knowledge (possible under delay):
                        // cannot conclude.
                        None => false,
                    },
                    None => false,
                }
            }
        }
    }

    /// True when the object is certainly outside `rect`.
    pub fn definitely_outside(&self, rect: &Rect) -> bool {
        match self {
            LocBound::Exact(p) => !rect.contains_point(*p),
            LocBound::Region { sr, reach } => {
                if !sr.intersects(rect) {
                    return true;
                }
                match reach {
                    Some(c) => {
                        // Region ⊆ circle: disjoint from rect if the circle is.
                        rect.min_dist(c.center) > c.radius
                            || sr.intersection(&c.bbox()).is_none_or(|cap| !cap.intersects(rect))
                    }
                    None => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect::new(Point::new(x1, y1), Point::new(x2, y2))
    }

    #[test]
    fn exact_bounds() {
        let b = LocBound::Exact(Point::new(0.3, 0.4));
        let q = Point::new(0.0, 0.0);
        assert_eq!(b.min_dist(q), 0.5);
        assert_eq!(b.max_dist(q), 0.5);
        assert!(b.definitely_inside(&r(0.0, 0.0, 1.0, 1.0)));
        assert!(b.definitely_outside(&r(0.5, 0.5, 1.0, 1.0)));
    }

    #[test]
    fn region_without_reach() {
        let b = LocBound::Region { sr: r(0.4, 0.4, 0.6, 0.6), reach: None };
        let q = Point::new(0.0, 0.5);
        assert!((b.min_dist(q) - 0.4).abs() < 1e-12);
        assert!(b.max_dist(q) > 0.6);
        assert!(b.definitely_inside(&r(0.0, 0.0, 1.0, 1.0)));
        assert!(!b.definitely_inside(&r(0.45, 0.0, 1.0, 1.0)));
        assert!(b.definitely_outside(&r(0.7, 0.7, 1.0, 1.0)));
        assert!(!b.definitely_outside(&r(0.5, 0.5, 1.0, 1.0)));
    }

    #[test]
    fn reachability_tightens_bounds() {
        // Large safe region, but the object reported at its center a moment
        // ago: the circle shrinks both bounds.
        let sr = r(0.0, 0.0, 1.0, 1.0);
        let reach = Some(Circle::new(Point::new(0.5, 0.5), 0.1));
        let b = LocBound::Region { sr, reach };
        let q = Point::new(0.5, 0.0);
        let loose = LocBound::Region { sr, reach: None };
        assert!(b.min_dist(q) > loose.min_dist(q));
        assert!(b.max_dist(q) < loose.max_dist(q));
        // The circle confines the object to the middle: definitely inside a
        // rect that covers the circle cap but not the whole safe region.
        assert!(b.definitely_inside(&r(0.3, 0.3, 0.7, 0.7)));
        assert!(!loose.definitely_inside(&r(0.3, 0.3, 0.7, 0.7)));
        // And definitely outside a far corner the circle cannot reach.
        assert!(b.definitely_outside(&r(0.9, 0.9, 1.0, 1.0)));
        assert!(!loose.definitely_outside(&r(0.9, 0.9, 1.0, 1.0)));
    }

    #[test]
    fn bounds_are_consistent() {
        let b = LocBound::Region {
            sr: r(0.2, 0.2, 0.4, 0.5),
            reach: Some(Circle::new(Point::new(0.3, 0.3), 0.15)),
        };
        for q in [Point::new(0.0, 0.0), Point::new(0.3, 0.3), Point::new(1.0, 0.2)] {
            assert!(b.min_dist(q) <= b.max_dist(q) + 1e-12);
        }
    }
}
