//! # srb-core
//!
//! The **safe-region-based (SRB) monitoring framework** of Hu, Xu & Lee,
//! *A Generic Framework for Monitoring Continuous Spatial Queries over
//! Moving Objects* (SIGMOD 2005) — the paper's primary contribution.
//!
//! The central abstraction is the [`Server`]: it registers continuous range
//! and k-nearest-neighbor queries ([`QuerySpec`]) over a population of
//! moving objects, hands each object a rectangular **safe region**, and
//! guarantees that every registered query's result stays exact as long as
//! each object reports (a *source-initiated update*,
//! [`Server::handle_location_update`]) whenever it leaves its safe region.
//! When an update leaves a query undecided, the server *probes* specific
//! objects through the caller-supplied [`LocationProvider`] — and the lazy
//! probing discipline of §4 guarantees each probe is mandatory.
//!
//! ```
//! use srb_core::{ObjectId, QuerySpec, Server, FnProvider};
//! use srb_geom::{Point, Rect};
//!
//! // World state the "clients" live in (normally: real devices).
//! let positions = vec![Point::new(0.2, 0.2), Point::new(0.8, 0.8)];
//! let mut provider = FnProvider(|id: ObjectId| positions[id.index()]);
//!
//! let mut server = Server::with_defaults();
//! for (i, &p) in positions.iter().enumerate() {
//!     server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).expect("fresh id");
//! }
//! let resp = server.register_query(
//!     QuerySpec::knn(Point::new(0.0, 0.0), 1),
//!     &mut provider,
//!     0.0,
//! );
//! assert_eq!(resp.results, vec![ObjectId(0)]);
//! ```
//!
//! Module map (paper section in parentheses): [`query`](crate::query)
//! quarantine areas (§3.3), `grid` query index (§3.3), `eval` evaluation
//! with lazy probes (§4.1–4.2), `reeval` incremental reevaluation (§4.3),
//! `safe_region` Ir-lp-based safe regions (§5), [`bounds`](crate::bounds)
//! reachability refinement (§6.1), weighted-perimeter objective selection
//! (§6.2) via [`ServerConfig::steadiness`].
//!
//! The object index under the server is a pluggable
//! [`SpatialBackend`](srb_index::SpatialBackend): [`Server`] and
//! [`ShardedServer`] default to the paper's R\*-tree, and
//! `Server::<UniformGrid>::with_backend` (or `SRB_BACKEND=grid` through the
//! simulator) swaps in the uniform-grid backend without touching any query
//! semantics. The choice is also revisable at runtime:
//! [`DynBackend`](srb_index::DynBackend) dispatches over both structures
//! behind one type, [`ShardedServer::migrate_shard`] live-rebuilds a shard
//! into the other structure mid-stream with bit-identical results, and
//! `SRB_BACKEND=adaptive` arms an [`AdaptiveController`] that migrates and
//! retunes per shard from observed telemetry at batch boundaries.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod adaptive;
mod bounds;
mod config;
mod error;
mod eval;
mod grid;
mod ids;
mod index;
mod location;
mod object;
mod pipeline;
mod processor;
mod provider;
mod query;
mod reeval;
mod ring;
mod safe_region;
mod scratch;
mod server;
mod sharded;
mod wal;

pub use adaptive::{AdaptAction, AdaptiveController, ShardSignals};
pub use bounds::LocBound;
pub use config::{DurabilityConfig, ServerConfig};
pub use error::{RecoveryError, ServerError};
pub use grid::{Cell, GridIndex};
pub use ids::{ObjectId, QueryId};
pub use index::ObjectIndex;
pub use location::LocationManager;
pub use object::{ObjectSlot, ObjectState, ObjectTable};
pub use processor::QueryProcessor;
pub use provider::{CostModel, CostTracker, FnProvider, LocationProvider, NoProbe, WorkStats};
pub use query::{Quarantine, QuerySpec, QueryState, ResultChange};
pub use server::{
    RegisterResponse, ResponseSink, ResultRemoval, SequencedUpdate, Server, UpdateResponse,
};
pub use sharded::{configured_threads, ShardedServer, SyncProvider, TableProvider};
pub use srb_durable::{CrashPoint, SyncPolicy};
pub use srb_index::{
    AdaptiveConfig, BackendConfig, BackendKind, BackendStats, ConfigError, DynBackend, GridConfig,
    RStarTree, SpatialBackend, TreeConfig, UniformGrid,
};
