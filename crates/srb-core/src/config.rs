//! Server configuration.

use crate::provider::CostModel;
use srb_durable::SyncPolicy;
use srb_geom::Rect;
use srb_index::BackendConfig;

/// Configuration of the durability plane (write-ahead log + checkpoints).
/// The default — `dir: None` — disables durability entirely: the server
/// runs exactly the paper's in-memory semantics with zero logging
/// overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding the log and checkpoint files. `None` disables
    /// durability.
    pub dir: Option<&'static str>,
    /// When appended log records are forced to stable storage.
    pub policy: SyncPolicy,
    /// Operations per group-commit window (used by
    /// [`SyncPolicy::GroupCommit`]).
    pub group_ops: u32,
    /// Rotate to a fresh checkpoint every this many logged operations.
    /// `0` never checkpoints automatically (explicit
    /// `Server::checkpoint` calls still work).
    pub checkpoint_ops: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            dir: None,
            policy: SyncPolicy::GroupCommit,
            group_ops: 64,
            checkpoint_ops: 0,
        }
    }
}

impl DurabilityConfig {
    /// True when a durability directory is configured.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Reads the environment: `SRB_DURABLE=1` enables group-commit
    /// durability into `SRB_DURABLE_DIR` (default `target/srb-durable`).
    pub fn from_env() -> Self {
        if std::env::var("SRB_DURABLE").map(|v| v == "1").unwrap_or(false) {
            static DIR: std::sync::OnceLock<String> = std::sync::OnceLock::new();
            let dir = DIR.get_or_init(|| {
                std::env::var("SRB_DURABLE_DIR")
                    .unwrap_or_else(|_| "target/srb-durable".to_string())
            });
            DurabilityConfig { dir: Some(dir.as_str()), ..Default::default() }
        } else {
            DurabilityConfig::default()
        }
    }
}

/// Configuration of the SRB database server.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// The monitored space (the paper uses the unit square).
    pub space: Rect,
    /// Grid resolution `M` of the query index (§3.3; paper default 50).
    pub grid_m: usize,
    /// Maximum object speed `V`. When set, the server uses the
    /// *reachability circle* enhancement (§6.1) to resolve ambiguities
    /// without probing. Must be a true upper bound on client speed.
    pub max_speed: Option<f64>,
    /// Steadiness parameter `D ∈ [0, 1]` of the *steady movement*
    /// enhancement (§6.2). When set, safe regions maximize the weighted
    /// perimeter instead of the ordinary perimeter.
    pub steadiness: Option<f64>,
    /// Object-index backend selection and parameters. The default is the
    /// paper's R\*-tree; [`BackendConfig::Grid`] swaps in the uniform grid.
    pub backend: BackendConfig,
    /// Wireless cost model (§7.1).
    pub cost: CostModel,
    /// Safe-region lease duration. When set, every issued safe region
    /// expires `lease` time units after the object's last contact; a
    /// server-side timer (the deferred-probe queue) probes objects whose
    /// lease lapsed, bounding the damage of a lost exit report. `None`
    /// (the default) reproduces the paper's reliable-channel semantics.
    pub lease: Option<f64>,
    /// Durability plane: write-ahead log + checkpoints. Off by default.
    /// Excluded from the recovery config fingerprint, so a recovered
    /// store may change sync policy or checkpoint cadence freely.
    pub durability: DurabilityConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            space: Rect::UNIT,
            grid_m: 50,
            max_speed: None,
            steadiness: None,
            backend: BackendConfig::default(),
            cost: CostModel::default(),
            lease: None,
            durability: DurabilityConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Config with both §6 enhancements enabled.
    pub fn enhanced(max_speed: f64, steadiness: f64) -> Self {
        ServerConfig {
            max_speed: Some(max_speed),
            steadiness: Some(steadiness),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ServerConfig::default();
        assert_eq!(c.grid_m, 50);
        assert_eq!(c.space, Rect::UNIT);
        assert!(c.max_speed.is_none());
        assert!(c.steadiness.is_none());
        assert!(c.lease.is_none(), "paper semantics: leases never expire");
        assert!(!c.durability.enabled(), "durability is off by default");
        assert_eq!(c.backend.label(), "rstar", "default backend is the paper's R*-tree");
        assert_eq!(c.cost.c_l, 1.0);
        assert_eq!(c.cost.c_p, 1.5);
    }

    #[test]
    fn enhanced_sets_both() {
        let c = ServerConfig::enhanced(0.02, 0.5);
        assert_eq!(c.max_speed, Some(0.02));
        assert_eq!(c.steadiness, Some(0.5));
    }
}
