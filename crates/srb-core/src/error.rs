//! Typed server errors. A lossy channel can replay, reorder, or misdirect
//! client messages, so every user-reachable server entry point returns
//! `Result` instead of panicking — malformed input must never abort the
//! server.

use crate::ids::ObjectId;
use std::fmt;

/// Why the server rejected a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// A location update or probe referenced an object that was never
    /// registered (or was removed).
    UnknownObject(ObjectId),
    /// `add_object` was called with an id that is already registered.
    DuplicateObject(ObjectId),
    /// A sequenced update carried a sequence number at or below the
    /// object's last accepted one — a duplicate or reordered delivery.
    StaleSequence {
        /// The object the update was for.
        id: ObjectId,
        /// The sequence number carried by the rejected update.
        seq: u64,
        /// The highest sequence number accepted so far.
        last: u64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownObject(id) => write!(f, "unknown object {id}"),
            ServerError::DuplicateObject(id) => write!(f, "duplicate object {id}"),
            ServerError::StaleSequence { id, seq, last } => {
                write!(f, "stale sequence {seq} for {id} (last accepted {last})")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// Why a durability recovery failed. Every variant is a *typed* refusal:
/// corruption in the log or checkpoint degrades into an error (or a
/// truncated tail / checkpoint fallback, which recovery repairs silently
/// and only counts) — it never panics the recovering process.
#[derive(Debug)]
pub enum RecoveryError {
    /// A log or checkpoint file carried the wrong magic bytes.
    BadMagic,
    /// A framed record failed its CRC-32 check mid-file (torn tails are
    /// truncated, not errored).
    CrcMismatch,
    /// A record or state payload ended before its declared length.
    ShortRecord,
    /// A log claimed a different generation than its file name.
    GenerationMismatch {
        /// The generation the file name promised.
        expected: u64,
        /// The generation the header carried.
        found: u64,
    },
    /// The underlying filesystem failed.
    Io(String),
    /// A structurally invalid state payload or record.
    Corrupt(&'static str),
    /// No checkpoint survives in the durability directory.
    NoState,
    /// The recovered state was checkpointed under a different server
    /// configuration than the one supplied to `recover`.
    ConfigMismatch,
    /// The checkpoint records an index structure the recovering backend
    /// type cannot hold. Recover into `Server<DynBackend>` (which accepts
    /// every kind) and migrate explicitly afterwards.
    BackendMismatch {
        /// The kind label the checkpoint recorded.
        found: &'static str,
        /// The backend type that refused it.
        recovering: &'static str,
    },
    /// The durability store was poisoned by an earlier write failure.
    Poisoned,
    /// A crash point injected by the test harness fired.
    Injected,
    /// Recovery was invoked with durability disabled in the config.
    Disabled,
}

impl From<srb_durable::DurableError> for RecoveryError {
    fn from(e: srb_durable::DurableError) -> Self {
        use srb_durable::DurableError as D;
        match e {
            D::BadMagic => RecoveryError::BadMagic,
            D::CrcMismatch => RecoveryError::CrcMismatch,
            D::ShortRecord => RecoveryError::ShortRecord,
            D::GenerationMismatch { expected, found } => {
                RecoveryError::GenerationMismatch { expected, found }
            }
            D::Io(io) => RecoveryError::Io(io.to_string()),
            D::Corrupt(what) => RecoveryError::Corrupt(what),
            D::NoState => RecoveryError::NoState,
            D::Poisoned => RecoveryError::Poisoned,
            D::Injected(_) => RecoveryError::Injected,
        }
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::BadMagic => write!(f, "bad magic bytes"),
            RecoveryError::CrcMismatch => write!(f, "record CRC mismatch"),
            RecoveryError::ShortRecord => write!(f, "record shorter than declared"),
            RecoveryError::GenerationMismatch { expected, found } => {
                write!(f, "generation mismatch: expected {expected}, found {found}")
            }
            RecoveryError::Io(e) => write!(f, "recovery I/O failure: {e}"),
            RecoveryError::Corrupt(what) => write!(f, "corrupt state: {what}"),
            RecoveryError::NoState => write!(f, "no recoverable checkpoint"),
            RecoveryError::ConfigMismatch => {
                write!(f, "checkpoint was taken under a different configuration")
            }
            RecoveryError::BackendMismatch { found, recovering } => write!(
                f,
                "checkpoint holds a {found:?} index but the {recovering:?} backend cannot \
                 hold one; recover with DynBackend and migrate explicitly"
            ),
            RecoveryError::Poisoned => write!(f, "durability store poisoned"),
            RecoveryError::Injected => write!(f, "injected crash point fired"),
            RecoveryError::Disabled => write!(f, "durability is not configured"),
        }
    }
}

impl std::error::Error for RecoveryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServerError::StaleSequence { id: ObjectId(7), seq: 3, last: 5 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3') && s.contains('5'), "{s}");
        assert_eq!(
            ServerError::UnknownObject(ObjectId(1)).to_string(),
            format!("unknown object {}", ObjectId(1))
        );
    }
}
