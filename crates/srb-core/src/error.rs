//! Typed server errors. A lossy channel can replay, reorder, or misdirect
//! client messages, so every user-reachable server entry point returns
//! `Result` instead of panicking — malformed input must never abort the
//! server.

use crate::ids::ObjectId;
use std::fmt;

/// Why the server rejected a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// A location update or probe referenced an object that was never
    /// registered (or was removed).
    UnknownObject(ObjectId),
    /// `add_object` was called with an id that is already registered.
    DuplicateObject(ObjectId),
    /// A sequenced update carried a sequence number at or below the
    /// object's last accepted one — a duplicate or reordered delivery.
    StaleSequence {
        /// The object the update was for.
        id: ObjectId,
        /// The sequence number carried by the rejected update.
        seq: u64,
        /// The highest sequence number accepted so far.
        last: u64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownObject(id) => write!(f, "unknown object {id}"),
            ServerError::DuplicateObject(id) => write!(f, "duplicate object {id}"),
            ServerError::StaleSequence { id, seq, last } => {
                write!(f, "stale sequence {seq} for {id} (last accepted {last})")
            }
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServerError::StaleSequence { id: ObjectId(7), seq: 3, last: 5 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3') && s.contains('5'), "{s}");
        assert_eq!(
            ServerError::UnknownObject(ObjectId(1)).to_string(),
            format!("unknown object {}", ObjectId(1))
        );
    }
}
