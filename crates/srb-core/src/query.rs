//! Continuous-query specifications, quarantine areas, and per-query server
//! state (paper §3.3).

use crate::ids::ObjectId;
use srb_geom::{Circle, Point, Rect};

/// The specification of a continuous spatial query, as registered by an
/// application server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuerySpec {
    /// A continuous range query: report the set of objects inside `rect`.
    Range {
        /// The query rectangle.
        rect: Rect,
    },
    /// A continuous k-nearest-neighbor query anchored at `center`.
    Knn {
        /// The query point.
        center: Point,
        /// Number of neighbors to monitor (`k >= 1`).
        k: usize,
        /// Whether the *order* of the k neighbors is part of the result
        /// (§3.3): an order-sensitive query is affected by any movement
        /// inside its quarantine area, an order-insensitive one only by
        /// boundary crossings.
        order_sensitive: bool,
    },
}

impl QuerySpec {
    /// Convenience constructor for a range query.
    pub fn range(rect: Rect) -> Self {
        QuerySpec::Range { rect }
    }

    /// Convenience constructor for an order-sensitive kNN query.
    pub fn knn(center: Point, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        QuerySpec::Knn { center, k, order_sensitive: true }
    }

    /// Convenience constructor for an order-insensitive kNN query.
    pub fn knn_unordered(center: Point, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        QuerySpec::Knn { center, k, order_sensitive: false }
    }
}

/// The quarantine area of a query (§3.3): while every result object stays
/// inside it and every non-result object stays outside, the query result
/// cannot change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Quarantine {
    /// A range query's quarantine area is its own rectangle.
    Rect(Rect),
    /// A kNN query's quarantine area is a circle centered at the query point
    /// whose radius lies between `Δ(q, o_k.sr)` and `δ(q, o_{k+1}.sr)`.
    Circle(Circle),
}

impl Quarantine {
    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        match self {
            Quarantine::Rect(r) => r.contains_point(p),
            Quarantine::Circle(c) => c.contains(p),
        }
    }

    /// Bounding box — used to register the query in the grid index.
    #[inline]
    pub fn bbox(&self) -> Rect {
        match self {
            Quarantine::Rect(r) => *r,
            Quarantine::Circle(c) => c.bbox(),
        }
    }
}

/// Per-query state kept by the database server: the specification, the
/// current result set, and the quarantine area.
#[derive(Clone, Debug)]
pub struct QueryState {
    /// The registered specification.
    pub spec: QuerySpec,
    /// Current results. For an order-sensitive kNN query the order is the
    /// distance order (nearest first); for ranges and order-insensitive kNN
    /// the order carries no meaning.
    pub results: Vec<ObjectId>,
    /// The quarantine area.
    pub quarantine: Quarantine,
}

impl QueryState {
    /// True when `oid` is currently a result.
    pub fn is_result(&self, oid: ObjectId) -> bool {
        self.results.contains(&oid)
    }

    /// Position of `oid` in the (ordered) result list.
    pub fn result_rank(&self, oid: ObjectId) -> Option<usize> {
        self.results.iter().position(|&o| o == oid)
    }
}

/// A change to a query's result set, reported to the application server
/// (step 3 in Figure 3.1).
#[derive(Clone, Debug, PartialEq)]
pub struct ResultChange {
    /// The affected query.
    pub query: crate::ids::QueryId,
    /// The result set after the change (ordered for order-sensitive kNN).
    pub results: Vec<ObjectId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_contains() {
        let r = Quarantine::Rect(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.5, 0.5)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(1.1, 0.5)));
        let c = Quarantine::Circle(Circle::new(Point::new(0.0, 0.0), 1.0));
        assert!(c.contains(Point::new(1.0, 0.0)));
        assert!(!c.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn quarantine_bbox() {
        let c = Quarantine::Circle(Circle::new(Point::new(0.5, 0.5), 0.2));
        let b = c.bbox();
        assert_eq!(b, Rect::centered(Point::new(0.5, 0.5), 0.2, 0.2));
    }

    #[test]
    fn query_state_rank() {
        let qs = QueryState {
            spec: QuerySpec::knn(Point::new(0.0, 0.0), 3),
            results: vec![ObjectId(5), ObjectId(2), ObjectId(9)],
            quarantine: Quarantine::Circle(Circle::new(Point::new(0.0, 0.0), 0.5)),
        };
        assert!(qs.is_result(ObjectId(2)));
        assert!(!qs.is_result(ObjectId(1)));
        assert_eq!(qs.result_rank(ObjectId(9)), Some(2));
        assert_eq!(qs.result_rank(ObjectId(1)), None);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = QuerySpec::knn(Point::new(0.0, 0.0), 0);
    }
}
