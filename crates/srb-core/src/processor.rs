//! The query processor layer (paper §3.1, Figure 3.1 box "query
//! processor", plus the grid query index of §3.3 it drives).
//!
//! Owns the registered query states and the grid index over their
//! quarantine areas, and drives evaluation (§4.1–§4.2) and incremental
//! reevaluation (§4.3) of individual queries. Probes and cost accounting
//! flow through the [`EvalCtx`] the caller supplies, so the processor
//! itself stays free of communication concerns.

use crate::eval::{evaluate_knn_ordered, evaluate_knn_unordered, evaluate_range, EvalCtx};
use crate::grid::GridIndex;
use crate::ids::{ObjectId, QueryId};
use crate::query::{Quarantine, QuerySpec, QueryState};
use crate::reeval::{reevaluate, reevaluate_multi};
use srb_geom::{Circle, Point, Rect};
use srb_hash::FastMap;

/// The query processor: registered query states plus the grid index that
/// locates the queries a moving object can affect.
pub struct QueryProcessor {
    /// Slot-allocated query states (`None` = free slot, ids are reused).
    /// A [`QueryId`] *is* its slot index — the sharded engine relies on
    /// lockstep lowest-free-id allocation across shards.
    queries: Vec<Option<QueryState>>,
    /// Per-slot reuse generation, bumped on deregistration, so callers can
    /// tell a reused id apart from the query that previously held it.
    gens: Vec<u32>,
    /// Live-query count (kept so occupancy is O(1)).
    live: usize,
    /// Most queries ever live at once.
    high_water: usize,
    grid: GridIndex,
}

impl QueryProcessor {
    /// Creates an empty processor over `space` with an `m x m` grid.
    pub fn new(space: Rect, m: usize) -> Self {
        QueryProcessor {
            queries: Vec::new(),
            gens: Vec::new(),
            live: 0,
            high_water: 0,
            grid: GridIndex::new(space, m),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The grid query index.
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// The raw query slots — the shape safe-region computation consumes.
    pub fn slots(&self) -> &[Option<QueryState>] {
        &self.queries
    }

    /// Number of registered queries.
    pub fn count(&self) -> usize {
        self.live
    }

    /// Most queries ever registered at once (process-lifetime high-water).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Reuse generation of a query slot: how many times the slot has been
    /// freed. A reused id carries a higher generation than its predecessor,
    /// which the churn tests use to prove a dead query's results can never
    /// be resurrected through slot reuse.
    pub fn generation(&self, id: QueryId) -> Option<u32> {
        self.gens.get(id.index()).copied()
    }

    /// Iterates over the registered query ids.
    pub fn ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.iter().enumerate().filter_map(|(i, q)| q.as_ref().map(|_| QueryId(i as u32)))
    }

    /// The state of one query.
    pub fn get(&self, id: QueryId) -> Option<&QueryState> {
        self.queries.get(id.index()).and_then(|q| q.as_ref())
    }

    /// Mutable state access. The grid is not adjusted — callers changing
    /// the quarantine must re-register via [`grid_update`](Self::grid_update).
    pub fn get_mut(&mut self, id: QueryId) -> Option<&mut QueryState> {
        self.queries.get_mut(id.index()).and_then(|q| q.as_mut())
    }

    /// Total grid bucket entries (§7.3 footprint metric).
    pub fn grid_footprint(&self) -> usize {
        self.grid.bucket_entries()
    }

    // ------------------------------------------------------------------
    // Registration lifecycle
    // ------------------------------------------------------------------

    /// Allocates the lowest free query id.
    pub fn alloc_id(&mut self) -> QueryId {
        for (i, slot) in self.queries.iter().enumerate() {
            if slot.is_none() {
                return QueryId(i as u32);
            }
        }
        self.queries.push(None);
        self.gens.push(0);
        QueryId((self.queries.len() - 1) as u32)
    }

    /// Installs a query state under a previously allocated id and registers
    /// its quarantine in the grid.
    pub fn install(&mut self, id: QueryId, qs: QueryState) {
        self.grid.insert(id, &qs.quarantine.bbox());
        if self.queries[id.index()].replace(qs).is_none() {
            self.live += 1;
        }
        if self.live > self.high_water {
            self.high_water = self.live;
            srb_obs::gauge!("processor.slot_high_water").set(self.high_water as u64);
        }
        srb_obs::gauge!("processor.slot_occupancy").set(self.live as u64);
    }

    /// Deregisters a query, clearing its grid buckets and bumping the
    /// slot's reuse generation. Returns `false` for unknown ids.
    pub fn remove(&mut self, id: QueryId) -> bool {
        let Some(slot) = self.queries.get_mut(id.index()) else {
            return false;
        };
        let Some(qs) = slot.take() else { return false };
        self.grid.remove(id, &qs.quarantine.bbox());
        self.gens[id.index()] = self.gens[id.index()].wrapping_add(1);
        self.live -= 1;
        srb_obs::gauge!("processor.slot_occupancy").set(self.live as u64);
        true
    }

    /// Re-registers a query whose quarantine bounding box changed.
    pub fn grid_update(&mut self, id: QueryId, old_bbox: &Rect, new_bbox: &Rect) {
        self.grid.update(id, old_bbox, new_bbox);
    }

    // ------------------------------------------------------------------
    // Evaluation / reevaluation (§4)
    // ------------------------------------------------------------------

    /// The affected-query candidates of a move from `p_lst` to `pos`: the
    /// buckets of the new and old cells, deduplicated in that order.
    pub fn candidates(&self, pos: Point, p_lst: Point) -> Vec<QueryId> {
        let mut out = Vec::new();
        self.candidates_into(pos, p_lst, &mut out);
        out
    }

    /// Allocation-free variant of [`candidates`](Self::candidates): clears
    /// `out` and fills it with the candidate set, reusing its capacity.
    pub fn candidates_into(&self, pos: Point, p_lst: Point, out: &mut Vec<QueryId>) {
        out.clear();
        out.extend_from_slice(self.grid.queries_at(pos));
        for &q in self.grid.queries_at(p_lst) {
            if !out.contains(&q) {
                out.push(q);
            }
        }
    }

    /// Chunked-yield variant of [`candidates_into`](Self::candidates_into)
    /// for streaming consumers: the candidate set is produced in the same
    /// deduplicated order, handed to `emit` as slices of at most
    /// `chunk_cap` ids. `scratch` is the caller's reusable staging buffer
    /// (cleared here), so repeated calls allocate nothing once warm.
    pub fn candidates_chunked(
        &self,
        pos: Point,
        p_lst: Point,
        chunk_cap: usize,
        scratch: &mut Vec<QueryId>,
        emit: &mut dyn FnMut(&[QueryId]),
    ) {
        let chunk_cap = chunk_cap.max(1);
        self.candidates_into(pos, p_lst, scratch);
        for chunk in scratch.chunks(chunk_cap) {
            emit(chunk);
        }
    }

    /// Evaluates a brand-new query from scratch (§4.1–§4.2), returning its
    /// initial results and quarantine area. Nothing is registered yet.
    pub(crate) fn evaluate_new<B: srb_index::SpatialBackend>(
        &self,
        ctx: &mut EvalCtx<'_, B>,
        spec: QuerySpec,
        space: &Rect,
    ) -> (Vec<ObjectId>, Quarantine) {
        let _span = srb_obs::span!("processor.evaluate_new");
        match spec {
            QuerySpec::Range { rect } => (evaluate_range(ctx, &rect), Quarantine::Rect(rect)),
            QuerySpec::Knn { center, k, order_sensitive } => {
                let eval = if order_sensitive {
                    evaluate_knn_ordered(ctx, center, k, space, &[])
                } else {
                    evaluate_knn_unordered(ctx, center, k, space, &[])
                };
                (eval.results, Quarantine::Circle(Circle::new(center, eval.radius)))
            }
        }
    }

    /// Incrementally reevaluates `qid` after `oid` moved from `p_lst` to
    /// `pos` (§4.3), updating the grid when the quarantine changed. Returns
    /// the new result set when it changed, `None` otherwise (including for
    /// unknown ids).
    pub(crate) fn reevaluate_single<B: srb_index::SpatialBackend>(
        &mut self,
        ctx: &mut EvalCtx<'_, B>,
        qid: QueryId,
        oid: ObjectId,
        pos: Point,
        p_lst: Point,
        space: &Rect,
    ) -> Option<Vec<ObjectId>> {
        let _span = srb_obs::span!("processor.reevaluate");
        let mut qs = self.queries.get_mut(qid.index())?.take()?;
        let old_bbox = qs.quarantine.bbox();
        let outcome = reevaluate(ctx, &mut qs, oid, pos, p_lst, space);
        if outcome.quarantine_changed {
            self.grid.update(qid, &old_bbox, &qs.quarantine.bbox());
        }
        let changed = outcome.results_changed.then(|| qs.results.clone());
        self.queries[qid.index()] = Some(qs);
        changed
    }

    /// Reevaluates `qid` for a batch of simultaneous movers: incrementally
    /// when a single mover affects it, from scratch when several do. All
    /// movers' exact positions must already be in `ctx.exact`; `prev` holds
    /// their previous anchors.
    pub(crate) fn reevaluate_batch<B: srb_index::SpatialBackend>(
        &mut self,
        ctx: &mut EvalCtx<'_, B>,
        qid: QueryId,
        movers: &[ObjectId],
        prev: &FastMap<ObjectId, Point>,
        space: &Rect,
    ) -> Option<Vec<ObjectId>> {
        if movers.len() == 1 {
            let id = movers[0];
            let pos = *ctx.exact.get(&id).expect("mover is exact");
            return self.reevaluate_single(ctx, qid, id, pos, prev[&id], space);
        }
        // Delegated single-mover calls are timed inside reevaluate_single;
        // opening the span after the delegation keeps counts one-per-call.
        let _span = srb_obs::span!("processor.reevaluate");
        let mut qs = self.queries.get_mut(qid.index())?.take()?;
        let old_bbox = qs.quarantine.bbox();
        let outcome = reevaluate_multi(ctx, &mut qs, movers, prev, space);
        if outcome.quarantine_changed {
            self.grid.update(qid, &old_bbox, &qs.quarantine.bbox());
        }
        let changed = outcome.results_changed.then(|| qs.results.clone());
        self.queries[qid.index()] = Some(qs);
        changed
    }

    /// Re-runs a kNN query from scratch and installs the fresh results and
    /// quarantine (used when object churn invalidates the incremental
    /// cases). No-op for range queries and unknown ids.
    pub(crate) fn refold_knn<B: srb_index::SpatialBackend>(
        &mut self,
        ctx: &mut EvalCtx<'_, B>,
        qid: QueryId,
        space: &Rect,
    ) {
        let Some(mut qs) = self.queries.get_mut(qid.index()).and_then(Option::take) else {
            return;
        };
        if let QuerySpec::Knn { center, k, order_sensitive } = qs.spec {
            let eval = if order_sensitive {
                evaluate_knn_ordered(ctx, center, k, space, &[])
            } else {
                evaluate_knn_unordered(ctx, center, k, space, &[])
            };
            qs.results = eval.results;
            let old = qs.quarantine.bbox();
            qs.quarantine = Quarantine::Circle(Circle::new(center, eval.radius));
            self.grid.update(qid, &old, &qs.quarantine.bbox());
        }
        self.queries[qid.index()] = Some(qs);
    }

    /// Serializes the processor for a durability checkpoint: the query
    /// slots in slot order (ids are slot indices, so this preserves the
    /// lockstep lowest-free-id allocation), the per-slot reuse
    /// generations, the occupancy counters, and the grid index.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        use srb_durable::codec::*;
        put_usize(out, self.queries.len());
        for slot in &self.queries {
            match slot {
                None => put_u8(out, 0),
                Some(qs) => {
                    put_u8(out, 1);
                    crate::wal::put_query_state(out, qs);
                }
            }
        }
        for &g in &self.gens {
            put_u32(out, g);
        }
        put_usize(out, self.high_water);
        self.grid.encode_state(out);
    }

    /// Rebuilds a processor serialized by
    /// [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        dec: &mut srb_durable::Dec<'_>,
    ) -> Result<Self, srb_durable::DurableError> {
        use srb_durable::DurableError;
        let n = dec.len(1)?;
        let mut queries = Vec::with_capacity(n);
        let mut live = 0;
        for _ in 0..n {
            match dec.u8()? {
                0 => queries.push(None),
                1 => {
                    queries.push(Some(crate::wal::dec_query_state(dec)?));
                    live += 1;
                }
                _ => return Err(DurableError::Corrupt("bad query slot tag")),
            }
        }
        let mut gens = Vec::with_capacity(n);
        for _ in 0..n {
            gens.push(dec.u32()?);
        }
        let high_water = dec.usize()?;
        if high_water < live {
            return Err(DurableError::Corrupt("high water below occupancy"));
        }
        let grid = GridIndex::decode_state(dec)?;
        Ok(QueryProcessor { queries, gens, live, high_water, grid })
    }

    /// Deep consistency check: kNN result lists never exceed `k`.
    pub fn check_result_sizes(&self) {
        for qs in self.queries.iter().flatten() {
            if let QuerySpec::Knn { k, .. } = qs.spec {
                assert!(qs.results.len() <= k, "kNN result overflow");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(rect: Rect) -> QueryState {
        QueryState {
            spec: QuerySpec::range(rect),
            results: Vec::new(),
            quarantine: Quarantine::Rect(rect),
        }
    }

    #[test]
    fn alloc_reuses_freed_slots() {
        let mut p = QueryProcessor::new(Rect::UNIT, 4);
        let r = Rect::new(Point::new(0.1, 0.1), Point::new(0.2, 0.2));
        let a = p.alloc_id();
        p.install(a, state(r));
        let b = p.alloc_id();
        p.install(b, state(r));
        assert_eq!((a.0, b.0), (0, 1));
        assert!(p.remove(a));
        assert!(!p.remove(a), "double deregistration is a no-op");
        let c = p.alloc_id();
        assert_eq!(c, a, "freed slot is reused first");
        p.install(c, state(r));
        assert_eq!(p.count(), 2);
        assert_eq!(p.ids().count(), 2);
    }

    #[test]
    fn deregistration_bumps_slot_generation() {
        let mut p = QueryProcessor::new(Rect::UNIT, 4);
        let r = Rect::new(Point::new(0.1, 0.1), Point::new(0.2, 0.2));
        let a = p.alloc_id();
        p.install(a, state(r));
        assert_eq!(p.generation(a), Some(0));
        p.remove(a);
        assert_eq!(p.generation(a), Some(1));
        let b = p.alloc_id();
        assert_eq!(b, a, "slot reused");
        p.install(b, state(r));
        assert_eq!(p.generation(b), Some(1), "reused id carries the bumped generation");
        assert_eq!(p.high_water(), 1);
    }

    #[test]
    fn install_registers_quarantine_in_grid() {
        let mut p = QueryProcessor::new(Rect::UNIT, 10);
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(0.15, 0.15));
        let id = p.alloc_id();
        p.install(id, state(r));
        assert!(p.grid().queries_at(Point::new(0.05, 0.05)).contains(&id));
        assert!(p.grid_footprint() > 0);
        p.remove(id);
        assert_eq!(p.grid_footprint(), 0);
    }

    #[test]
    fn candidates_union_old_and_new_cells() {
        let mut p = QueryProcessor::new(Rect::UNIT, 10);
        let near_origin = Rect::new(Point::new(0.0, 0.0), Point::new(0.05, 0.05));
        let far_corner = Rect::new(Point::new(0.9, 0.9), Point::new(0.95, 0.95));
        let a = p.alloc_id();
        p.install(a, state(near_origin));
        let b = p.alloc_id();
        p.install(b, state(far_corner));
        let c = p.candidates(Point::new(0.92, 0.92), Point::new(0.02, 0.02));
        assert!(c.contains(&a) && c.contains(&b));
        // Same cell twice: no duplicates.
        let c = p.candidates(Point::new(0.01, 0.01), Point::new(0.02, 0.02));
        assert_eq!(c, vec![a]);
    }
}
