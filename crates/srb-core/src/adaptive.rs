//! The adaptive backend controller (DESIGN.md §16).
//!
//! Watches per-shard workload signals at batch boundaries and decides when
//! a shard should *migrate* between index structures or *retune* its grid
//! resolution. The controller deliberately reads only quantities that are
//! part of the engine's serialized state — object counts, the backend
//! visit counter, the cost tracker's update count — never wall-clock time
//! or the process-global telemetry registry. That makes every decision a
//! deterministic function of replayable state: a recovered engine re-makes
//! exactly the decisions the original made, so adaptive runs stay
//! bit-identical through the durability plane.
//!
//! The decision rule is intentionally simple (thresholds + hysteresis; see
//! [`AdaptiveConfig`]): dense shards amortize the grid's cell scans, sparse
//! shards waste ring expansion on empty cells and prefer the tree, and a
//! search-bound window (many index visits per operation) tips a mid-size
//! shard toward the grid. A shard must cast the same vote on
//! `confirm` consecutive decisions before it migrates — a one-batch spike
//! must not pay two rebuild sweeps.

use srb_durable::codec::{put_u64, put_u8};
use srb_durable::{Dec, DurableError};
use srb_index::{AdaptiveConfig, BackendConfig, BackendKind, GridConfig};

/// What the controller decided for one shard at a decision boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptAction {
    /// Rebuild the shard's index as `kind`, under the adaptive policy's
    /// per-kind build parameters.
    Migrate(BackendKind),
    /// Keep the grid, but rebuild it with this resolution.
    Retune(usize),
}

/// One shard's signal snapshot, taken by the coordinator at a decision
/// boundary. All fields come from serialized per-shard state.
#[derive(Clone, Copy, Debug)]
pub struct ShardSignals {
    /// Objects currently owned by the shard.
    pub len: usize,
    /// Cumulative index visit counter ([`crate::Server::index_visits`]).
    pub visits: u64,
    /// Cumulative source updates handled ([`crate::CostTracker`]).
    pub updates: u64,
    /// The structure currently live on the shard.
    pub kind: BackendKind,
    /// Current grid resolution, when the live structure is a grid.
    pub grid_m: Option<usize>,
}

/// Per-shard decision window: where the counters stood last decision, and
/// the running migration vote.
struct ShardWindow {
    last_visits: u64,
    last_updates: u64,
    /// `0` = no pending vote, else `BackendKind::tag() + 1`.
    vote: u8,
    votes: u32,
}

impl ShardWindow {
    fn new() -> Self {
        ShardWindow { last_visits: 0, last_updates: 0, vote: 0, votes: 0 }
    }
}

/// Telemetry-driven backend selection for the sharded engine: owns the
/// per-shard decision windows and the batch cadence. See the module docs
/// for the determinism contract.
pub struct AdaptiveController {
    config: AdaptiveConfig,
    /// Coordinator batches seen since construction (or recovery).
    batches: u64,
    /// Controller-triggered kind migrations, total.
    migrations: u64,
    /// Controller-triggered grid retunes, total.
    retunes: u64,
    shards: Vec<ShardWindow>,
}

impl AdaptiveController {
    /// A controller over `n_shards` shards applying `config`'s thresholds.
    pub fn new(config: AdaptiveConfig, n_shards: usize) -> Self {
        let mut shards = Vec::with_capacity(n_shards);
        shards.resize_with(n_shards, ShardWindow::new);
        AdaptiveController { config, batches: 0, migrations: 0, retunes: 0, shards }
    }

    /// The thresholds in force.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Controller-triggered kind migrations so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Controller-triggered grid retunes so far.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Counts one coordinator batch; returns `true` when this batch is a
    /// decision boundary (`decision_every` cadence).
    pub fn note_batch(&mut self) -> bool {
        self.batches += 1;
        self.batches.is_multiple_of(u64::from(self.config.decision_every.max(1)))
    }

    /// Decides one shard's fate at a decision boundary. Call once per
    /// shard per boundary, in shard order — the decision windows advance
    /// as a side effect. Allocation-free.
    pub fn decide(&mut self, shard: usize, sig: ShardSignals) -> Option<AdaptAction> {
        let config = self.config;
        let w = &mut self.shards[shard];
        let d_visits = sig.visits.saturating_sub(w.last_visits);
        let d_updates = sig.updates.saturating_sub(w.last_updates);
        w.last_visits = sig.visits;
        w.last_updates = sig.updates;
        let visits_per_op = d_visits as f64 / d_updates.max(1) as f64;

        let desired = if sig.len >= config.dense_above {
            BackendKind::Grid
        } else if sig.len <= config.sparse_below {
            BackendKind::RStar
        } else if visits_per_op >= config.hot_visits_per_op {
            BackendKind::Grid
        } else {
            sig.kind
        };

        if desired != sig.kind {
            let tag = desired.tag() + 1;
            if w.vote == tag {
                w.votes += 1;
            } else {
                w.vote = tag;
                w.votes = 1;
            }
            if w.votes >= config.confirm.max(1) {
                w.vote = 0;
                w.votes = 0;
                self.migrations += 1;
                return Some(AdaptAction::Migrate(desired));
            }
            return None;
        }

        // Settled on the current kind: clear any pending vote, and when
        // that kind is the grid, consider a resolution retune.
        w.vote = 0;
        w.votes = 0;
        let m = sig.grid_m?;
        let ideal = ideal_resolution(sig.len, config.target_per_cell);
        if (ideal as f64 - m as f64).abs() > config.retune_ratio * m as f64 {
            self.retunes += 1;
            return Some(AdaptAction::Retune(ideal));
        }
        None
    }

    /// The concrete [`BackendConfig`] that applies `action` under this
    /// policy's per-kind parameters.
    pub fn config_for(&self, action: AdaptAction) -> BackendConfig {
        match action {
            AdaptAction::Migrate(kind) => self.config.config_for(kind),
            AdaptAction::Retune(m) => BackendConfig::Grid(GridConfig { m }),
        }
    }

    /// Serializes the decision state (not the thresholds — those live in
    /// the server config, whose fingerprint the checkpoint already pins).
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        put_u64(out, self.batches);
        put_u64(out, self.migrations);
        put_u64(out, self.retunes);
        put_u64(out, self.shards.len() as u64);
        for w in &self.shards {
            put_u64(out, w.last_visits);
            put_u64(out, w.last_updates);
            put_u8(out, w.vote);
            put_u64(out, u64::from(w.votes));
        }
    }

    /// Rebuilds a controller checkpointed by
    /// [`encode_state`](Self::encode_state); `n_shards` must match.
    pub(crate) fn decode_state(
        config: AdaptiveConfig,
        n_shards: usize,
        dec: &mut Dec<'_>,
    ) -> Result<Self, DurableError> {
        let batches = dec.u64()?;
        let migrations = dec.u64()?;
        let retunes = dec.u64()?;
        let shard_count = dec.usize()?;
        if shard_count != n_shards {
            return Err(DurableError::Corrupt("controller shard count mismatch"));
        }
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let last_visits = dec.u64()?;
            let last_updates = dec.u64()?;
            let vote = dec.u8()?;
            if vote > 2 {
                return Err(DurableError::Corrupt("controller vote tag"));
            }
            let votes = u32::try_from(dec.u64()?)
                .map_err(|_| DurableError::Corrupt("controller vote count"))?;
            shards.push(ShardWindow { last_visits, last_updates, vote, votes });
        }
        Ok(AdaptiveController { config, batches, migrations, retunes, shards })
    }
}

/// The grid resolution whose average occupied cell would hold about
/// `target_per_cell` objects, clamped to the validated `GridConfig` range.
fn ideal_resolution(len: usize, target_per_cell: f64) -> usize {
    let cells = (len as f64 / target_per_cell.max(0.5)).max(1.0);
    (cells.sqrt().round() as usize).clamp(4, 1 << 15)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(len: usize, kind: BackendKind) -> ShardSignals {
        ShardSignals { len, visits: 0, updates: 0, kind, grid_m: None }
    }

    #[test]
    fn hysteresis_requires_consecutive_votes() {
        let config = AdaptiveConfig { confirm: 2, ..AdaptiveConfig::default() };
        let mut ctl = AdaptiveController::new(config, 1);
        // First dense reading: a vote, not yet a migration.
        assert_eq!(ctl.decide(0, sig(config.dense_above, BackendKind::RStar)), None);
        // A settled reading clears the vote.
        assert_eq!(ctl.decide(0, sig(config.dense_above - 1, BackendKind::RStar)), None);
        assert_eq!(ctl.decide(0, sig(config.dense_above, BackendKind::RStar)), None);
        // Second consecutive dense reading confirms.
        assert_eq!(
            ctl.decide(0, sig(config.dense_above, BackendKind::RStar)),
            Some(AdaptAction::Migrate(BackendKind::Grid))
        );
        assert_eq!(ctl.migrations(), 1);
    }

    #[test]
    fn sparse_shards_prefer_the_tree() {
        let config = AdaptiveConfig { confirm: 1, ..AdaptiveConfig::default() };
        let mut ctl = AdaptiveController::new(config, 1);
        assert_eq!(
            ctl.decide(0, sig(config.sparse_below, BackendKind::Grid)),
            Some(AdaptAction::Migrate(BackendKind::RStar))
        );
    }

    #[test]
    fn search_bound_window_tips_toward_grid() {
        let config = AdaptiveConfig { confirm: 1, ..AdaptiveConfig::default() };
        let mut ctl = AdaptiveController::new(config, 1);
        let mid = (config.sparse_below + config.dense_above) / 2;
        let hot = ShardSignals {
            len: mid,
            visits: 100_000,
            updates: 100,
            kind: BackendKind::RStar,
            grid_m: None,
        };
        assert_eq!(ctl.decide(0, hot), Some(AdaptAction::Migrate(BackendKind::Grid)));
        // The window advanced: the same cumulative counters now read as a
        // quiet window.
        let mut ctl2 = AdaptiveController::new(config, 1);
        ctl2.decide(0, hot);
        assert_eq!(ctl2.decide(0, ShardSignals { kind: BackendKind::RStar, ..hot }), None);
    }

    #[test]
    fn retune_respects_deadband() {
        let config = AdaptiveConfig::default();
        let mut ctl = AdaptiveController::new(config, 1);
        let settled = |len: usize, m: usize| ShardSignals {
            len,
            visits: 0,
            updates: 0,
            kind: BackendKind::Grid,
            grid_m: Some(m),
        };
        // Mid-band population on a wildly undersized grid: retune fires.
        let mid = (config.sparse_below + config.dense_above) / 2;
        let ideal = ideal_resolution(mid, config.target_per_cell);
        assert_eq!(ctl.decide(0, settled(mid, 4)), Some(AdaptAction::Retune(ideal)));
        // Already near ideal: inside the deadband, no churn.
        assert_eq!(ctl.decide(0, settled(mid, ideal)), None);
        assert_eq!(ctl.retunes(), 1);
    }

    #[test]
    fn state_round_trips() {
        let config = AdaptiveConfig { confirm: 3, ..AdaptiveConfig::default() };
        let mut ctl = AdaptiveController::new(config, 2);
        ctl.note_batch();
        ctl.decide(0, sig(config.dense_above, BackendKind::RStar));
        ctl.decide(1, sig(10_000, BackendKind::Grid));
        let mut bytes = Vec::new();
        ctl.encode_state(&mut bytes);
        let mut dec = Dec::new(&bytes);
        let mut back = AdaptiveController::decode_state(config, 2, &mut dec).expect("decode");
        dec.finish().expect("clean tail");
        // The recovered controller continues the vote streak exactly.
        assert_eq!(back.decide(0, sig(config.dense_above, BackendKind::RStar)), None);
        assert_eq!(
            back.decide(0, sig(config.dense_above, BackendKind::RStar)),
            Some(AdaptAction::Migrate(BackendKind::Grid))
        );
        // Shard-count mismatch is a typed refusal.
        let mut dec = Dec::new(&bytes);
        assert!(AdaptiveController::decode_state(config, 3, &mut dec).is_err());
    }
}
