//! The object index layer (paper §3.1, Figure 3.1 box "object index").
//!
//! Couples a pluggable [`SpatialBackend`] over safe regions (the paper's
//! R\*-tree by default, the uniform grid as the update-optimized
//! alternative) with the per-object state table and keeps the two
//! coherent: every mutation that changes an object's stored rectangle
//! goes through this wrapper, so the backend entry and
//! [`ObjectState::safe_region`] can never drift apart. The query layers
//! above ([`crate::grid`], the query processor) only ever see shared
//! references.

use crate::ids::ObjectId;
use crate::object::{ObjectState, ObjectTable};
use srb_geom::{Point, Rect};
use srb_index::{BackendConfig, RStarTree, SpatialBackend, TreeConfig};

/// The object index: a spatial backend over safe regions plus the dense
/// object state table, kept in lockstep. Generic in the backend `B`,
/// defaulted to the paper's R\*-tree so existing call sites are unchanged.
pub struct ObjectIndex<B: SpatialBackend = RStarTree> {
    tree: B,
    objects: ObjectTable,
}

impl ObjectIndex<RStarTree> {
    /// Creates an empty R\*-tree-backed index with the given tree
    /// configuration.
    pub fn new(tree: TreeConfig) -> Self {
        ObjectIndex { tree: RStarTree::new(tree), objects: ObjectTable::new() }
    }
}

impl<B: SpatialBackend> ObjectIndex<B> {
    /// Creates an empty index whose backend is built from `config` over
    /// `space`. Panics when `config`'s variant does not match `B`.
    pub fn with_backend(config: &BackendConfig, space: Rect) -> Self {
        ObjectIndex { tree: B::build(config, space), objects: ObjectTable::new() }
    }

    /// The spatial backend, for search and best-first browsing.
    pub fn tree(&self) -> &B {
        &self.tree
    }

    /// The object state table.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The state of `id`, if registered.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectState> {
        self.objects.get(id)
    }

    /// Mutable state access. Safe for fields the backend does not mirror
    /// (`last_seq`, `p_lst`, `t_lst`); safe-region changes must go through
    /// [`install_region`](Self::install_region) instead.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut ObjectState> {
        self.objects.get_mut(id)
    }

    /// Registers a new object: inserts its rectangle into the backend and
    /// its state into the table.
    pub fn insert(&mut self, id: ObjectId, state: ObjectState) {
        let _span = srb_obs::span!("object_index.insert");
        self.tree.insert(id.entry(), state.safe_region);
        self.objects.set(id, state);
    }

    /// Removes an object from both structures, returning its last state.
    pub fn remove(&mut self, id: ObjectId) -> Option<ObjectState> {
        let _span = srb_obs::span!("object_index.remove");
        let st = self.objects.remove(id)?;
        self.tree.remove(id.entry());
        Some(st)
    }

    /// Collapses `id`'s stored rectangle to the exact point `pos` — used
    /// the moment a report or probe invalidates the old safe region, so
    /// index-based evaluation stays sound until the region is recomputed.
    /// The state table is left untouched (the state is rewritten wholesale
    /// by [`install_region`](Self::install_region) at the end of the
    /// operation).
    pub fn pin_to_point(&mut self, id: ObjectId, pos: Point) {
        // Deliberately span-free: this runs once per report and takes well
        // under a microsecond, so a wall-clock span would cost more than
        // the work it measures. The backend-side counters/histograms in
        // `srb-index` cover this path.
        self.tree.update(id.entry(), Rect::point(pos));
    }

    /// Installs a freshly computed safe region: updates the backend entry
    /// and rewrites the state with the new anchor `pos` at time `now`,
    /// preserving the accepted sequence number.
    pub fn install_region(&mut self, id: ObjectId, pos: Point, sr: Rect, now: f64) {
        // Span-free for the same reason as `pin_to_point`.
        self.tree.update(id.entry(), sr);
        let last_seq = self.objects.get(id).map(|s| s.last_seq).unwrap_or(0);
        self.objects.set(id, ObjectState { p_lst: pos, t_lst: now, safe_region: sr, last_seq });
    }

    /// Deterministic work units: backend structural-unit visits.
    pub fn visits(&self) -> u64 {
        self.tree.visits()
    }

    /// Rebuilds the backend in place under a new [`BackendConfig`] (the
    /// adaptive plane's live migration). The state table is untouched —
    /// migration preserves every stored rectangle, so coherence holds by
    /// construction. Returns `false` when `B` cannot represent the
    /// requested config (every backend except `DynBackend`).
    pub fn migrate_backend(&mut self, config: &BackendConfig) -> bool {
        self.tree.migrate(config)
    }

    /// Cheap structural check: the backend and the table index the same
    /// number of objects.
    pub fn check_counts(&self) {
        assert_eq!(self.tree.len(), self.objects.len(), "tree/table length mismatch");
    }

    /// Serializes the backend and the state table for a durability
    /// checkpoint. The backend serializes its own structure (arena slots,
    /// free lists, visit counters), so the decoded index emits searches in
    /// the same order and charges the same visit counts as the original.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        self.tree.encode_state(out);
        self.objects.encode_state(out);
    }

    /// Rebuilds an index serialized by
    /// [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        dec: &mut srb_durable::Dec<'_>,
    ) -> Result<Self, srb_durable::DurableError> {
        let tree = B::decode_state(dec)?;
        let objects = ObjectTable::decode_state(dec)?;
        if tree.len() != objects.len() {
            return Err(srb_durable::DurableError::Corrupt("tree/table length mismatch"));
        }
        Ok(ObjectIndex { tree, objects })
    }

    /// Full O(n) coherence scan: backend invariants plus an entry-by-entry
    /// comparison of stored rectangles against table safe regions.
    pub fn check_coherence(&self) {
        self.tree.check_invariants();
        self.check_counts();
        for (oid, st) in self.objects.iter() {
            let stored = self.tree.get(oid.entry()).expect("object in tree");
            assert_eq!(stored, st.safe_region, "tree/state safe region mismatch for {oid}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_index::{GridConfig, UniformGrid};

    fn state(p: Point, sr: Rect) -> ObjectState {
        ObjectState { p_lst: p, t_lst: 0.0, safe_region: sr, last_seq: 3 }
    }

    #[test]
    fn insert_remove_keeps_tree_and_table_coherent() {
        let mut idx = ObjectIndex::new(TreeConfig::default());
        assert!(idx.is_empty());
        let p = Point::new(0.2, 0.3);
        idx.insert(ObjectId(1), state(p, Rect::point(p)));
        assert_eq!(idx.len(), 1);
        idx.check_coherence();
        assert!(idx.remove(ObjectId(1)).is_some());
        assert!(idx.remove(ObjectId(1)).is_none());
        idx.check_coherence();
    }

    #[test]
    fn pin_then_install_region_roundtrip() {
        let mut idx = ObjectIndex::new(TreeConfig::default());
        let p0 = Point::new(0.1, 0.1);
        idx.insert(ObjectId(7), state(p0, Rect::point(p0)));
        let p1 = Point::new(0.4, 0.4);
        idx.pin_to_point(ObjectId(7), p1);
        assert_eq!(idx.tree().get(7), Some(Rect::point(p1)));
        let sr = Rect::new(Point::new(0.3, 0.3), Point::new(0.5, 0.5));
        idx.install_region(ObjectId(7), p1, sr, 2.0);
        let st = idx.get(ObjectId(7)).unwrap();
        assert_eq!(st.safe_region, sr);
        assert_eq!(st.p_lst, p1);
        assert_eq!(st.t_lst, 2.0);
        assert_eq!(st.last_seq, 3, "install preserves the sequence number");
        idx.check_coherence();
    }

    #[test]
    fn install_region_on_unknown_object_defaults_seq() {
        let mut idx = ObjectIndex::new(TreeConfig::default());
        let p = Point::new(0.6, 0.6);
        idx.tree_insert_for_test(ObjectId(2), Rect::point(p));
        idx.install_region(ObjectId(2), p, Rect::point(p), 1.0);
        assert_eq!(idx.get(ObjectId(2)).unwrap().last_seq, 0);
    }

    #[test]
    fn grid_backed_index_stays_coherent() {
        let cfg = BackendConfig::Grid(GridConfig::default());
        let mut idx: ObjectIndex<UniformGrid> = ObjectIndex::with_backend(&cfg, Rect::UNIT);
        let p0 = Point::new(0.15, 0.85);
        idx.insert(ObjectId(9), state(p0, Rect::point(p0)));
        let p1 = Point::new(0.9, 0.1);
        idx.pin_to_point(ObjectId(9), p1);
        let sr = Rect::new(Point::new(0.8, 0.05), Point::new(0.95, 0.2));
        idx.install_region(ObjectId(9), p1, sr, 1.5);
        assert_eq!(idx.tree().get(9), Some(sr));
        idx.check_coherence();
        assert!(idx.remove(ObjectId(9)).is_some());
        idx.check_coherence();
    }

    impl ObjectIndex {
        fn tree_insert_for_test(&mut self, id: ObjectId, r: Rect) {
            self.tree.insert(id.entry(), r);
        }
    }
}
