//! A bounded single-producer / single-consumer ring with *in-place* slot
//! payloads — the transport of the pipelined ingestion front-end.
//!
//! Classic SPSC queues move `T` by value, which for our batch payloads
//! (update vectors, response chunks) would re-allocate on every hop. This
//! ring instead keeps `cap` permanent slot payloads alive inside the ring
//! and hands the producer/consumer a `&mut T` callback view: the producer
//! *fills* a slot (typically by `mem::swap`-ing its warmed buffers in) and
//! the consumer *drains* it the same way. The slot buffers therefore join
//! the engine's reusable arena pool — once capacities have warmed up, a
//! push/pop round trip performs zero heap allocations.
//!
//! Concurrency model (safe Rust only — this crate denies `unsafe`):
//!
//! - `head` counts pushes, `tail` counts pops; both are monotonically
//!   increasing wrapping counters. The producer alone writes `head`, the
//!   consumer alone writes `tail`.
//! - Slot `i` is touched by the producer only while `head - tail < cap`
//!   (the slot is free) and by the consumer only while `tail < head` (the
//!   slot is filled), so each slot always has exactly one visitor. The
//!   per-slot `Mutex` encodes that exclusivity in the type system; it is
//!   never contended, and the Release store / Acquire load pair on
//!   `head`/`tail` publishes the payload across threads.
//!
//! The unit tests below double as the ThreadSanitizer targets of the CI
//! `concurrency` job.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A bounded SPSC ring of reusable `T` slots. See the module docs for the
/// ownership discipline; violating single-producer/single-consumer cannot
/// corrupt memory (slots are mutex-guarded) but can stall progress.
pub(crate) struct Spsc<T> {
    slots: Box<[Mutex<T>]>,
    /// Total pushes (wrapping). Written by the producer only.
    head: AtomicUsize,
    /// Total pops (wrapping). Written by the consumer only.
    tail: AtomicUsize,
}

impl<T: Default> Spsc<T> {
    /// Creates a ring with `cap` slots, each holding a default payload.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "a ring needs at least one slot");
        Spsc {
            slots: (0..cap).map(|_| Mutex::new(T::default())).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }
}

impl<T> Spsc<T> {
    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Filled slots awaiting the consumer (racy by nature; exact from
    /// either endpoint's own side).
    pub fn len(&self) -> usize {
        self.head.load(Ordering::Acquire).wrapping_sub(self.tail.load(Ordering::Acquire))
    }

    /// Producer side: claims the next free slot, runs `fill` on its
    /// payload, and publishes it. Returns `false` (without calling `fill`)
    /// when the ring is full.
    pub fn try_push(&self, fill: impl FnOnce(&mut T)) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            return false;
        }
        {
            let mut slot = self.slots[head % self.slots.len()].lock().expect("ring slot poisoned");
            fill(&mut slot);
        }
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: drains the oldest filled slot through `drain` and
    /// releases it back to the producer. Returns `false` (without calling
    /// `drain`) when the ring is empty.
    pub fn try_pop(&self, drain: impl FnOnce(&mut T)) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if head == tail {
            return false;
        }
        {
            let mut slot = self.slots[tail % self.slots.len()].lock().expect("ring slot poisoned");
            drain(&mut slot);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trip_in_order() {
        let ring: Spsc<Vec<u32>> = Spsc::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..3u32 {
            assert!(ring.try_push(|v| {
                v.clear();
                v.push(i);
            }));
        }
        assert_eq!(ring.len(), 3);
        for i in 0..3u32 {
            let mut got = None;
            assert!(ring.try_pop(|v| got = Some(v[0])));
            assert_eq!(got, Some(i), "FIFO order");
        }
        assert!(!ring.try_pop(|_| panic!("empty ring must not call drain")));
    }

    #[test]
    fn full_ring_rejects_push_without_calling_fill() {
        let ring: Spsc<u64> = Spsc::new(2);
        assert!(ring.try_push(|s| *s = 1));
        assert!(ring.try_push(|s| *s = 2));
        assert!(!ring.try_push(|_| panic!("full ring must not call fill")));
        let mut got = 0;
        assert!(ring.try_pop(|s| got = *s));
        assert_eq!(got, 1);
        assert!(ring.try_push(|s| *s = 3), "pop frees a slot");
    }

    #[test]
    fn slot_buffers_retain_capacity_across_wraps() {
        let ring: Spsc<Vec<u8>> = Spsc::new(2);
        // Warm both slots with capacity.
        for _ in 0..2 {
            ring.try_push(|v| {
                v.clear();
                v.extend_from_slice(&[0u8; 256]);
            });
            ring.try_pop(|v| v.clear());
        }
        // After the warm-up lap, pushing 256 bytes reuses capacity.
        for lap in 0..8 {
            assert!(ring.try_push(|v| {
                assert!(v.capacity() >= 256, "lap {lap} lost slot capacity");
                v.clear();
                v.extend_from_slice(&[lap as u8; 256]);
            }));
            assert!(ring.try_pop(|v| assert_eq!(v[0], lap as u8)));
        }
    }

    /// Two-thread stress: every value crosses the ring exactly once, in
    /// order, under real concurrency. This is the primary TSan target.
    #[test]
    fn spsc_stress_preserves_every_message_in_order() {
        const N: u64 = 100_000;
        let ring: Arc<Spsc<u64>> = Arc::new(Spsc::new(8));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while i < N {
                    if ring.try_push(|s| *s = i) {
                        i += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut expected = 0u64;
        while expected < N {
            let mut got = None;
            ring.try_pop(|s| got = Some(*s));
            match got {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                None => std::hint::spin_loop(),
            }
        }
        producer.join().expect("producer panicked");
        assert_eq!(ring.len(), 0);
    }

    /// Payload-swap stress with vector payloads: no message is lost or
    /// duplicated even when producer and consumer recycle buffers.
    #[test]
    fn spsc_stress_with_swapped_buffers() {
        const N: u32 = 20_000;
        let ring: Arc<Spsc<Vec<u32>>> = Arc::new(Spsc::new(4));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut stage: Vec<u32> = Vec::new();
                let mut i = 0u32;
                while i < N {
                    stage.clear();
                    stage.extend([i, i.wrapping_mul(31)]);
                    loop {
                        if ring.try_push(|slot| std::mem::swap(slot, &mut stage)) {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    i += 1;
                }
            })
        };
        let mut local: Vec<u32> = Vec::new();
        let mut seen = 0u32;
        while seen < N {
            let popped = ring.try_pop(|slot| std::mem::swap(slot, &mut local));
            if !popped {
                std::hint::spin_loop();
                continue;
            }
            assert_eq!(local.len(), 2);
            assert_eq!(local[0], seen);
            assert_eq!(local[1], seen.wrapping_mul(31));
            seen += 1;
        }
        producer.join().expect("producer panicked");
    }
}
