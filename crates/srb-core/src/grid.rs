//! The in-memory grid-based query index (paper §3.3).
//!
//! The space is partitioned into `M x M` uniform cells; each cell's bucket
//! holds the ids of the queries whose quarantine area overlaps the cell.
//! The grid serves two purposes:
//!
//! 1. on a location update, only queries in the buckets of the old and new
//!    cells can be affected;
//! 2. safe regions are required to stay within the object's current cell, so
//!    the *relevant queries* for safe-region computation are exactly the
//!    cell's bucket (§5).

use crate::ids::QueryId;
use srb_geom::{Point, Rect};

/// Grid cell coordinates.
pub type Cell = (usize, usize);

/// The `M x M` grid index over query quarantine areas.
#[derive(Clone, Debug)]
pub struct GridIndex {
    space: Rect,
    m: usize,
    buckets: Vec<Vec<QueryId>>,
}

impl GridIndex {
    /// Creates an empty grid over `space` with `m x m` cells.
    pub fn new(space: Rect, m: usize) -> Self {
        assert!(m >= 1, "grid must have at least one cell");
        GridIndex { space, m, buckets: vec![Vec::new(); m * m] }
    }

    /// The grid resolution `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The indexed space.
    pub fn space(&self) -> Rect {
        self.space
    }

    /// The cell containing `p` (clamped to the space).
    pub fn cell_of(&self, p: Point) -> Cell {
        let fx = (p.x - self.space.min().x) / self.space.width();
        let fy = (p.y - self.space.min().y) / self.space.height();
        let i = ((fx * self.m as f64) as isize).clamp(0, self.m as isize - 1) as usize;
        let j = ((fy * self.m as f64) as isize).clamp(0, self.m as isize - 1) as usize;
        (i, j)
    }

    /// The rectangle of a cell.
    pub fn cell_rect(&self, (i, j): Cell) -> Rect {
        let w = self.space.width() / self.m as f64;
        let h = self.space.height() / self.m as f64;
        let min = Point::new(self.space.min().x + i as f64 * w, self.space.min().y + j as f64 * h);
        Rect::new(min, Point::new(min.x + w, min.y + h))
    }

    /// The cell rectangle containing a point — the container of every safe
    /// region computed for an object at `p` (§5).
    pub fn cell_rect_of(&self, p: Point) -> Rect {
        self.cell_rect(self.cell_of(p))
    }

    fn bucket_index(&self, (i, j): Cell) -> usize {
        j * self.m + i
    }

    fn cells_overlapping(&self, rect: &Rect) -> impl Iterator<Item = Cell> {
        let w = self.space.width() / self.m as f64;
        let h = self.space.height() / self.m as f64;
        let lo_x = (((rect.min().x - self.space.min().x) / w).floor() as isize)
            .clamp(0, self.m as isize - 1) as usize;
        let hi_x = (((rect.max().x - self.space.min().x) / w).floor() as isize)
            .clamp(0, self.m as isize - 1) as usize;
        let lo_y = (((rect.min().y - self.space.min().y) / h).floor() as isize)
            .clamp(0, self.m as isize - 1) as usize;
        let hi_y = (((rect.max().y - self.space.min().y) / h).floor() as isize)
            .clamp(0, self.m as isize - 1) as usize;
        (lo_x..=hi_x).flat_map(move |i| (lo_y..=hi_y).map(move |j| (i, j)))
    }

    /// Registers a query whose quarantine bounding box is `bbox`.
    pub fn insert(&mut self, qid: QueryId, bbox: &Rect) {
        let cells: Vec<Cell> = self.cells_overlapping(bbox).collect();
        for c in cells {
            let idx = self.bucket_index(c);
            self.buckets[idx].push(qid);
        }
    }

    /// Removes a query previously registered with bounding box `bbox`.
    pub fn remove(&mut self, qid: QueryId, bbox: &Rect) {
        let cells: Vec<Cell> = self.cells_overlapping(bbox).collect();
        for c in cells {
            let idx = self.bucket_index(c);
            self.buckets[idx].retain(|&q| q != qid);
        }
    }

    /// Re-registers a query whose quarantine bounding box changed.
    pub fn update(&mut self, qid: QueryId, old_bbox: &Rect, new_bbox: &Rect) {
        self.remove(qid, old_bbox);
        self.insert(qid, new_bbox);
    }

    /// The bucket of the cell containing `p`.
    pub fn queries_at(&self, p: Point) -> &[QueryId] {
        let idx = self.bucket_index(self.cell_of(p));
        &self.buckets[idx]
    }

    /// The bucket of an explicit cell.
    pub fn queries_in_cell(&self, cell: Cell) -> &[QueryId] {
        &self.buckets[self.bucket_index(cell)]
    }

    /// Total size of all buckets (each overlapped cell counts once) — used
    /// to report the index footprint like the paper's §7.3 does.
    pub fn bucket_entries(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Serializes the grid for a durability checkpoint. Buckets are
    /// written verbatim (their order is candidate-probe order, so it must
    /// survive a restart bit-identically).
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        use srb_durable::codec::*;
        crate::wal::put_rect(out, &self.space);
        put_usize(out, self.m);
        for b in &self.buckets {
            put_usize(out, b.len());
            for q in b {
                put_u32(out, q.0);
            }
        }
    }

    /// Rebuilds a grid serialized by [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        dec: &mut srb_durable::Dec<'_>,
    ) -> Result<Self, srb_durable::DurableError> {
        use srb_durable::DurableError;
        let space = crate::wal::dec_rect(dec)?;
        let m = dec.usize()?;
        if !(1..=1usize << 15).contains(&m) {
            return Err(DurableError::Corrupt("grid resolution out of range"));
        }
        // Every bucket costs at least its length prefix; a corrupt `m`
        // must not drive a huge up-front allocation.
        if m * m * 8 > dec.remaining() {
            return Err(DurableError::Corrupt("grid larger than payload"));
        }
        let mut buckets = Vec::with_capacity(m * m);
        for _ in 0..m * m {
            let n = dec.len(4)?;
            let mut b = Vec::with_capacity(n);
            for _ in 0..n {
                b.push(QueryId(dec.u32()?));
            }
            buckets.push(b);
        }
        Ok(GridIndex { space, m, buckets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(m: usize) -> GridIndex {
        GridIndex::new(Rect::UNIT, m)
    }

    #[test]
    fn cell_of_corners_and_interior() {
        let g = grid(10);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(0.999, 0.999)), (9, 9));
        // The max corner clamps into the last cell.
        assert_eq!(g.cell_of(Point::new(1.0, 1.0)), (9, 9));
        assert_eq!(g.cell_of(Point::new(0.55, 0.25)), (5, 2));
        // Out-of-space points clamp.
        assert_eq!(g.cell_of(Point::new(-1.0, 2.0)), (0, 9));
    }

    #[test]
    fn cell_rect_tiles_space() {
        let g = grid(4);
        let r = g.cell_rect((2, 1));
        assert!((r.min().x - 0.5).abs() < 1e-12);
        assert!((r.max().x - 0.75).abs() < 1e-12);
        assert!((r.min().y - 0.25).abs() < 1e-12);
        assert!((r.max().y - 0.5).abs() < 1e-12);
        // Every point maps into a cell whose rect contains it.
        for &p in &[Point::new(0.01, 0.99), Point::new(0.5, 0.5), Point::new(0.74, 0.26)] {
            assert!(g.cell_rect(g.cell_of(p)).contains_point(p));
        }
    }

    #[test]
    fn insert_registers_in_overlapping_cells() {
        let mut g = grid(10);
        let q = QueryId(1);
        // Covers cells (2..=4) x (3..=3).
        let bbox = Rect::new(Point::new(0.25, 0.35), Point::new(0.45, 0.39));
        g.insert(q, &bbox);
        assert!(g.queries_in_cell((2, 3)).contains(&q));
        assert!(g.queries_in_cell((3, 3)).contains(&q));
        assert!(g.queries_in_cell((4, 3)).contains(&q));
        assert!(!g.queries_in_cell((5, 3)).contains(&q));
        assert!(!g.queries_in_cell((3, 4)).contains(&q));
        assert_eq!(g.bucket_entries(), 3);
    }

    #[test]
    fn remove_clears_buckets() {
        let mut g = grid(5);
        let bbox = Rect::new(Point::new(0.1, 0.1), Point::new(0.9, 0.9));
        g.insert(QueryId(7), &bbox);
        assert!(g.bucket_entries() > 0);
        g.remove(QueryId(7), &bbox);
        assert_eq!(g.bucket_entries(), 0);
    }

    #[test]
    fn update_moves_registration() {
        let mut g = grid(10);
        let old = Rect::new(Point::new(0.0, 0.0), Point::new(0.05, 0.05));
        let new = Rect::new(Point::new(0.9, 0.9), Point::new(0.95, 0.95));
        g.insert(QueryId(3), &old);
        g.update(QueryId(3), &old, &new);
        assert!(!g.queries_in_cell((0, 0)).contains(&QueryId(3)));
        assert!(g.queries_in_cell((9, 9)).contains(&QueryId(3)));
    }

    #[test]
    fn queries_at_point_lookup() {
        let mut g = grid(10);
        g.insert(QueryId(1), &Rect::new(Point::new(0.0, 0.0), Point::new(0.2, 0.2)));
        g.insert(QueryId(2), &Rect::new(Point::new(0.15, 0.15), Point::new(0.3, 0.3)));
        let qs = g.queries_at(Point::new(0.16, 0.16));
        assert!(qs.contains(&QueryId(1)) && qs.contains(&QueryId(2)));
        let qs = g.queries_at(Point::new(0.05, 0.05));
        assert!(qs.contains(&QueryId(1)) && !qs.contains(&QueryId(2)));
    }

    #[test]
    fn bbox_spanning_entire_space() {
        let mut g = grid(3);
        g.insert(QueryId(0), &Rect::UNIT);
        assert_eq!(g.bucket_entries(), 9);
    }
}
