//! The pipelined ingestion front-end: persistent shard workers behind
//! per-shard SPSC rings.
//!
//! The old parallel batch path forked a rayon task per shard and joined
//! at a barrier every batch. This module replaces that with standing
//! machinery:
//!
//! - every shard gets a [`ShardCell`] — a bounded job ring
//!   (coordinator → worker) and a bounded result ring (worker →
//!   coordinator), both [`Spsc`] rings whose slot payloads recirculate
//!   warmed buffers;
//! - a small pool of **worker threads** runs continuously, parking when
//!   idle instead of being spawned and joined per batch. Worker `k`
//!   services the cells `{i : i mod T == k}`, so each cell's rings keep
//!   exactly one producer and one consumer;
//! - the shard's [`Server`] is **moved** into the job slot and handed
//!   back in the final `Done` result, so workers own the shard state
//!   outright while a batch is in flight — no locks around the engine,
//!   no `unsafe`, and at rest every server is checked back into the
//!   coordinator.
//!
//! Probes a shard needs mid-batch are answered locally when the
//! provider exposes a dense position table
//! ([`snapshot`](crate::sharded::SyncProvider::snapshot)): the
//! coordinator copies the table into the job slot and the worker reads
//! it directly — no cross-thread rendezvous, so probe-heavy shards do
//! not serialize on the coordinator. Providers without a table fall
//! back to a tiny RPC: the worker posts a `Probe` result, parks, and
//! the coordinator answers with a `ProbeAnswer` job. Either way the
//! worker records the probe transcript (in probe order, per shard)
//! whenever a WAL log rides along, and returns it with `Done`.
//! Responses stream back in fixed-size chunks the coordinator merges as
//! they arrive; determinism is restored by the coordinator's stable
//! sort (same-object entries always come from the same shard in FIFO
//! order, so arrival interleaving is invisible).

use crate::ids::ObjectId;
use crate::provider::LocationProvider;
use crate::ring::Spsc;
use crate::server::{SequencedUpdate, Server, UpdateResponse};
use srb_durable::log::LogWriter;
use srb_geom::Point;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

/// Job-ring capacity. One batch job plus one probe answer can be in
/// flight per cell, so a handful of slots is plenty.
pub(crate) const JOB_RING: usize = 4;
/// Result-ring capacity: response chunks stream through here; a deeper
/// ring lets a fast shard run ahead of the merge without parking.
pub(crate) const RESULT_RING: usize = 8;
/// Response entries per streamed chunk.
pub(crate) const CHUNK_ENTRIES: usize = 64;
/// How long an idle worker sleeps between ring scans when no unpark
/// arrives (insurance against a lost wakeup, not the primary signal).
const IDLE_PARK: Duration = Duration::from_micros(200);
/// Back-off while a full/empty ring blocks one endpoint mid-batch.
const BUSY_PARK: Duration = Duration::from_micros(50);

/// What a job slot currently carries.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobKind {
    /// Empty slot awaiting reuse.
    Idle,
    /// A shard batch: the server, its update partition, and (under a
    /// WAL) the shard's log for the partition append.
    Batch,
    /// The coordinator's answer to the worker's outstanding probe.
    ProbeAnswer,
}

/// A coordinator → worker job. Fields are flattened (not an enum) so the
/// ring slot's buffers survive kind changes and keep their capacity.
pub(crate) struct JobSlot<B: srb_index::SpatialBackend> {
    pub kind: JobKind,
    /// The shard server, moved in for `Batch` jobs.
    pub server: Option<Server<B>>,
    /// The shard's update partition for `Batch` jobs.
    pub updates: Vec<SequencedUpdate>,
    /// Batch timestamp.
    pub now: f64,
    /// Probe answer payload for `ProbeAnswer` jobs.
    pub answer: Point,
    /// Dense position table (index = object id) for worker-local probe
    /// answering; empty when the provider has no snapshot, in which case
    /// probes round-trip to the coordinator.
    pub table: Vec<Point>,
    /// Warmed buffer lent to the worker for the probe transcript.
    pub probe_log: Vec<(ObjectId, Point)>,
    /// The shard's WAL partition log, lent for the duration of the batch
    /// (the worker appends the partition record before processing).
    pub log: Option<LogWriter>,
}

impl<B: srb_index::SpatialBackend> Default for JobSlot<B> {
    fn default() -> Self {
        JobSlot {
            kind: JobKind::Idle,
            server: None,
            updates: Vec::new(),
            now: 0.0,
            answer: Point::ORIGIN,
            table: Vec::new(),
            probe_log: Vec::new(),
            log: None,
        }
    }
}

/// What a result slot currently carries.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResultKind {
    /// Empty slot awaiting reuse.
    Idle,
    /// The worker needs `probe` answered before it can continue.
    Probe,
    /// A chunk of response entries, in shard-FIFO order.
    Chunk,
    /// Batch finished: the server (and log) come home.
    Done,
}

/// A worker → coordinator result. Flattened like [`JobSlot`] so buffers
/// recirculate.
pub(crate) struct ResultSlot<B: srb_index::SpatialBackend> {
    pub kind: ResultKind,
    /// Response entries for `Chunk` results.
    pub entries: Vec<(ObjectId, UpdateResponse)>,
    /// The object to probe for `Probe` results.
    pub probe: ObjectId,
    /// The shard server, returned in the `Done` result.
    pub server: Option<Server<B>>,
    /// The batch's update buffer, returned so its capacity goes back to
    /// the coordinator's partition scratch.
    pub updates: Vec<SequencedUpdate>,
    /// Worker-side batch duration (`None` when telemetry is off).
    pub duration_ns: Option<u64>,
    /// The position table coming home with `Done` (capacity recirculates
    /// through the coordinator's scratch).
    pub table: Vec<Point>,
    /// The probe transcript, in probe order, recorded by the worker when
    /// a WAL log rode along with the batch; returned with `Done`.
    pub probe_log: Vec<(ObjectId, Point)>,
    /// The lent WAL partition log, returned in the `Done` result.
    pub log: Option<LogWriter>,
    /// True when the WAL partition append failed — the coordinator must
    /// poison the store.
    pub log_err: bool,
    /// Set when the shard batch panicked; the server still comes home so
    /// the coordinator can finish draining before propagating.
    pub panic: Option<String>,
}

impl<B: srb_index::SpatialBackend> Default for ResultSlot<B> {
    fn default() -> Self {
        ResultSlot {
            kind: ResultKind::Idle,
            entries: Vec::new(),
            probe: ObjectId(0),
            server: None,
            updates: Vec::new(),
            duration_ns: None,
            table: Vec::new(),
            probe_log: Vec::new(),
            log: None,
            log_err: false,
            panic: None,
        }
    }
}

/// One shard's communication endpoint: a job ring in, a result ring
/// out, and the handle of the worker servicing it (for unparking).
pub(crate) struct ShardCell<B: srb_index::SpatialBackend> {
    pub jobs: Spsc<JobSlot<B>>,
    pub results: Spsc<ResultSlot<B>>,
    worker: Mutex<Option<Thread>>,
}

impl<B: srb_index::SpatialBackend> ShardCell<B> {
    fn new() -> Self {
        ShardCell {
            jobs: Spsc::new(JOB_RING),
            results: Spsc::new(RESULT_RING),
            worker: Mutex::new(None),
        }
    }

    /// Wakes the worker servicing this cell (no-op until it registers).
    pub fn unpark_worker(&self) {
        if let Some(t) = self.worker.lock().expect("worker handle poisoned").as_ref() {
            t.unpark();
        }
    }
}

/// The coordinator's wakeup slot: workers ring it after pushing any
/// result; the coordinator registers itself before parking in the
/// streaming-merge loop.
#[derive(Default)]
pub(crate) struct CoordSignal {
    waiter: Mutex<Option<Thread>>,
}

impl CoordSignal {
    /// Registers the calling thread as the one to wake.
    pub fn register(&self) {
        *self.waiter.lock().expect("signal poisoned") = Some(thread::current());
    }

    /// Clears the registration after the coordinator wakes.
    pub fn clear(&self) {
        *self.waiter.lock().expect("signal poisoned") = None;
    }

    /// Wakes the registered coordinator, if any.
    pub fn notify(&self) {
        if let Some(t) = self.waiter.lock().expect("signal poisoned").as_ref() {
            t.unpark();
        }
    }
}

/// The standing pipeline: per-shard cells plus the persistent worker
/// pool. Dropping it shuts the workers down and joins them (at rest the
/// rings are empty and every server is checked back in, so nothing is
/// lost).
pub(crate) struct PipelineState<B: srb_index::SpatialBackend> {
    pub cells: Vec<Arc<ShardCell<B>>>,
    pub signal: Arc<CoordSignal>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    /// The worker-pool size this pipeline was built for.
    pub workers: usize,
}

impl<B: srb_index::SpatialBackend + Send + 'static> PipelineState<B> {
    /// Builds the cells and spawns `workers` persistent threads (capped
    /// at the shard count); worker `k` services cells `{i : i mod T == k}`.
    pub fn new(n_shards: usize, workers: usize) -> Self {
        let t = workers.min(n_shards).max(1);
        let cells: Vec<Arc<ShardCell<B>>> =
            (0..n_shards).map(|_| Arc::new(ShardCell::new())).collect();
        debug_assert!(
            cells
                .iter()
                .all(|c| c.jobs.capacity() == JOB_RING && c.results.capacity() == RESULT_RING),
            "cell rings must match their configured depths"
        );
        let signal = Arc::new(CoordSignal::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let handles = (0..t)
            .map(|k| {
                let mine: Vec<Arc<ShardCell<B>>> =
                    cells.iter().skip(k).step_by(t).map(Arc::clone).collect();
                let signal = Arc::clone(&signal);
                let shutdown = Arc::clone(&shutdown);
                thread::Builder::new()
                    .name(format!("srb-shard-worker-{k}"))
                    .spawn(move || worker_main(&mine, &signal, &shutdown))
                    .expect("failed to spawn shard worker")
            })
            .collect();
        srb_obs::gauge!("sharded.pipeline_workers").set(t as u64);
        PipelineState { cells, signal, shutdown, handles, workers: t }
    }
}

impl<B: srb_index::SpatialBackend> Drop for PipelineState<B> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for c in &self.cells {
            c.unpark_worker();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A worker's event loop: scan owned cells for jobs, run them, park when
/// everything is idle.
fn worker_main<B: srb_index::SpatialBackend>(
    cells: &[Arc<ShardCell<B>>],
    signal: &CoordSignal,
    shutdown: &AtomicBool,
) {
    for c in cells {
        *c.worker.lock().expect("worker handle poisoned") = Some(thread::current());
    }
    let mut wal_buf: Vec<u8> = Vec::new();
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut busy = false;
        for cell in cells {
            busy |= service(cell, signal, shutdown, &mut wal_buf);
        }
        if !busy {
            thread::park_timeout(IDLE_PARK);
        }
    }
}

/// Pops and runs at most one batch job from `cell`. Returns whether a
/// job was found.
fn service<B: srb_index::SpatialBackend>(
    cell: &ShardCell<B>,
    signal: &CoordSignal,
    shutdown: &AtomicBool,
    wal_buf: &mut Vec<u8>,
) -> bool {
    let mut server: Option<Server<B>> = None;
    let mut updates: Vec<SequencedUpdate> = Vec::new();
    let mut now = 0.0f64;
    let mut log: Option<LogWriter> = None;
    let mut table: Vec<Point> = Vec::new();
    let mut probe_log: Vec<(ObjectId, Point)> = Vec::new();
    let got = cell.jobs.try_pop(|slot| {
        debug_assert!(slot.kind == JobKind::Batch, "idle worker found a non-batch job");
        slot.kind = JobKind::Idle;
        server = slot.server.take();
        std::mem::swap(&mut updates, &mut slot.updates);
        std::mem::swap(&mut table, &mut slot.table);
        std::mem::swap(&mut probe_log, &mut slot.probe_log);
        now = slot.now;
        log = slot.log.take();
    });
    if !got {
        return false;
    }
    let mut server = server.expect("batch job carries its shard server");

    // WAL first, mirroring the sequential protocol: the partition record
    // is appended (to this shard's own log) before processing, so the
    // coordinator's marker — written only after every shard finished —
    // is always the last record referencing it.
    let mut log_err = false;
    if let Some(l) = log.as_mut() {
        wal_buf.clear();
        crate::wal::encode_part_seq(wal_buf, &updates);
        log_err = l.append(wal_buf).is_err();
    }

    let watch = srb_obs::Stopwatch::start();
    probe_log.clear();
    let record = log.is_some();
    let panic_msg = {
        let mut provider = RpcProvider {
            cell,
            signal,
            shutdown,
            table: &table,
            probe_log: &mut probe_log,
            record,
        };
        let mut emit = |chunk: &mut Vec<(ObjectId, UpdateResponse)>| {
            push_result(cell, signal, shutdown, |slot| {
                slot.kind = ResultKind::Chunk;
                std::mem::swap(&mut slot.entries, chunk);
            });
        };
        catch_unwind(AssertUnwindSafe(|| {
            server.handle_sequenced_updates_chunked(
                &updates,
                &mut provider,
                now,
                CHUNK_ENTRIES,
                &mut emit,
            );
        }))
        .err()
        .map(panic_message)
    };
    let duration_ns = watch.elapsed_ns();

    let mut server = Some(server);
    let mut log = log;
    let mut panic_msg = panic_msg;
    push_result(cell, signal, shutdown, |slot| {
        slot.kind = ResultKind::Done;
        slot.server = server.take();
        slot.log = log.take();
        slot.log_err = log_err;
        slot.duration_ns = duration_ns;
        slot.panic = panic_msg.take();
        std::mem::swap(&mut slot.updates, &mut updates);
        std::mem::swap(&mut slot.table, &mut table);
        std::mem::swap(&mut slot.probe_log, &mut probe_log);
    });
    true
}

/// Pushes one result, retrying until a slot frees up. `fill` runs at
/// most once (only on the successful push). Bails out silently on
/// shutdown so a dying pipeline cannot deadlock its workers.
fn push_result<B: srb_index::SpatialBackend>(
    cell: &ShardCell<B>,
    signal: &CoordSignal,
    shutdown: &AtomicBool,
    mut fill: impl FnMut(&mut ResultSlot<B>),
) {
    loop {
        if cell.results.try_push(&mut fill) {
            signal.notify();
            return;
        }
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        thread::park_timeout(BUSY_PARK);
    }
}

/// The worker-side face of a shard batch's probes. Ids covered by the
/// position table are answered locally; the rest post a `Probe` result
/// and park until the matching `ProbeAnswer` job arrives. At most one
/// RPC probe is outstanding per worker (probes are answered
/// synchronously inside the shard batch), and probes precede any chunk
/// emission, so the result ring always has room for the request. With
/// `record` set (a WAL log rides along), every answer lands in
/// `probe_log` in probe order — the shard's replay transcript.
struct RpcProvider<'a, B: srb_index::SpatialBackend> {
    cell: &'a ShardCell<B>,
    signal: &'a CoordSignal,
    shutdown: &'a AtomicBool,
    table: &'a [Point],
    probe_log: &'a mut Vec<(ObjectId, Point)>,
    record: bool,
}

impl<B: srb_index::SpatialBackend> LocationProvider for RpcProvider<'_, B> {
    fn probe(&mut self, id: ObjectId) -> Point {
        let p = match self.table.get(id.index()) {
            Some(&p) => p,
            None => self.rpc(id),
        };
        if self.record {
            self.probe_log.push((id, p));
        }
        p
    }
}

impl<B: srb_index::SpatialBackend> RpcProvider<'_, B> {
    fn rpc(&mut self, id: ObjectId) -> Point {
        loop {
            let pushed = self.cell.results.try_push(|slot| {
                slot.kind = ResultKind::Probe;
                slot.probe = id;
            });
            if pushed {
                break;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return Point::ORIGIN;
            }
            thread::park_timeout(BUSY_PARK);
        }
        self.signal.notify();
        loop {
            let mut answer: Option<Point> = None;
            self.cell.jobs.try_pop(|slot| {
                debug_assert!(
                    slot.kind == JobKind::ProbeAnswer,
                    "mid-batch job ring may only carry probe answers"
                );
                answer = Some(slot.answer);
                slot.kind = JobKind::Idle;
            });
            if let Some(p) = answer {
                return p;
            }
            if self.shutdown.load(Ordering::Acquire) {
                // The coordinator is gone; answer anything so the worker
                // can unwind to its shutdown check.
                return Point::ORIGIN;
            }
            thread::park_timeout(BUSY_PARK);
        }
    }
}

/// Renders a `catch_unwind` payload into a printable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "shard worker panicked".to_string()
    }
}
