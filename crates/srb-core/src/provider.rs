//! The server ↔ client communication boundary: location probes and the
//! wireless cost model (paper §3, §7.1).

use crate::ids::ObjectId;
use srb_geom::Point;

/// Supplies exact object locations to the server when it issues a
/// *server-initiated probe* (§1, §4). The simulator implements this with the
/// true client positions; a real deployment would page the device.
pub trait LocationProvider {
    /// Returns the exact current location of `id`. Called only when query
    /// evaluation cannot proceed on safe regions alone (lazy probing, §4).
    fn probe(&mut self, id: ObjectId) -> Point;
}

/// A provider backed by a closure — convenient for tests and examples.
pub struct FnProvider<F: FnMut(ObjectId) -> Point>(pub F);

impl<F: FnMut(ObjectId) -> Point> LocationProvider for FnProvider<F> {
    fn probe(&mut self, id: ObjectId) -> Point {
        (self.0)(id)
    }
}

/// A provider that panics — for call sites where probing must not happen
/// (e.g. asserting that an operation is probe-free).
pub struct NoProbe;

impl LocationProvider for NoProbe {
    fn probe(&mut self, id: ObjectId) -> Point {
        panic!("unexpected probe of {id}");
    }
}

/// The wireless communication cost model of §7.1: a source-initiated update
/// costs `c_l` (uplink only), a server-initiated probe plus the forced
/// update costs `c_p` (downlink request + uplink reply; the paper prices the
/// uplink at twice the downlink, giving `c_l = 1`, `c_p = 1.5`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost of one source-initiated location update.
    pub c_l: f64,
    /// Cost of one server-initiated probe and the update it triggers.
    pub c_p: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { c_l: 1.0, c_p: 1.5 }
    }
}

/// Running totals of communication events, maintained by the server.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostTracker {
    /// Number of source-initiated location updates received.
    pub source_updates: u64,
    /// Number of server-initiated probes issued.
    pub probes: u64,
}

impl CostTracker {
    /// The total wireless cost under `model`.
    pub fn total(&self, model: &CostModel) -> f64 {
        self.source_updates as f64 * model.c_l + self.probes as f64 * model.c_p
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &CostTracker) -> CostTracker {
        CostTracker {
            source_updates: self.source_updates - earlier.source_updates,
            probes: self.probes - earlier.probes,
        }
    }

    /// Adds another tracker's totals into this one — used to aggregate
    /// per-shard trackers into a fleet-wide view.
    pub fn merge(&mut self, other: &CostTracker) {
        self.source_updates += other.source_updates;
        self.probes += other.probes;
    }
}

/// Deterministic work counters for the scalability experiments (§7.3): the
/// harness reports these alongside wall-clock CPU time so results are
/// machine-independent.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkStats {
    /// Queries (re)evaluated.
    pub evaluations: u64,
    /// Safe regions computed.
    pub safe_regions: u64,
    /// Ambiguities resolved without probing thanks to the reachability
    /// circle (§6.1) — zero unless the enhancement is enabled.
    pub probes_avoided: u64,
    /// Full reevaluations forced by a broken ordering invariant (should be
    /// rare; asserted small in tests).
    pub ordering_fallbacks: u64,
    /// Probes issued while evaluating range queries.
    pub probes_range: u64,
    /// Probes issued by kNN evaluation (held-object ambiguity).
    pub probes_knn_eval: u64,
    /// Probes issued to separate the quarantine radius.
    pub probes_radius: u64,
    /// Probes issued by the §4.3 incremental reevaluation (case 2/3).
    pub probes_reeval: u64,
    /// Probes issued to resolve conflicting neighbor safe regions during
    /// safe-region computation.
    pub probes_neighbor: u64,
    /// Sequenced updates dropped because their sequence number was at or
    /// below the last accepted one (duplicate / reordered deliveries).
    pub stale_seq_drops: u64,
    /// Updates dropped because they referenced an unregistered object.
    pub unknown_object_drops: u64,
    /// Probes fired because an object's safe-region lease lapsed without
    /// contact (subset of `CostTracker::probes`).
    pub lease_probes: u64,
    /// Current safe regions re-sent in response to duplicate updates — the
    /// ACK-retransmission path of a lossy downlink.
    pub regrants: u64,
}

impl WorkStats {
    /// Adds another set of counters into this one — used to aggregate
    /// per-shard stats into a fleet-wide view.
    pub fn merge(&mut self, other: &WorkStats) {
        self.evaluations += other.evaluations;
        self.safe_regions += other.safe_regions;
        self.probes_avoided += other.probes_avoided;
        self.ordering_fallbacks += other.ordering_fallbacks;
        self.probes_range += other.probes_range;
        self.probes_knn_eval += other.probes_knn_eval;
        self.probes_radius += other.probes_radius;
        self.probes_reeval += other.probes_reeval;
        self.probes_neighbor += other.probes_neighbor;
        self.stale_seq_drops += other.stale_seq_drops;
        self.unknown_object_drops += other.unknown_object_drops;
        self.lease_probes += other.lease_probes;
        self.regrants += other.regrants;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_model_matches_paper() {
        let m = CostModel::default();
        assert_eq!(m.c_l, 1.0);
        assert_eq!(m.c_p, 1.5);
    }

    #[test]
    fn tracker_totals() {
        let t = CostTracker { source_updates: 4, probes: 2 };
        assert_eq!(t.total(&CostModel::default()), 4.0 + 3.0);
        let earlier = CostTracker { source_updates: 1, probes: 0 };
        assert_eq!(t.since(&earlier), CostTracker { source_updates: 3, probes: 2 });
    }

    #[test]
    fn fn_provider_probes() {
        let mut p = FnProvider(|id: ObjectId| Point::new(id.0 as f64, 0.0));
        assert_eq!(p.probe(ObjectId(3)), Point::new(3.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "unexpected probe")]
    fn no_probe_panics() {
        NoProbe.probe(ObjectId(0));
    }
}
