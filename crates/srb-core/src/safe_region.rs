//! Safe region computation (paper §5).
//!
//! The safe region of an object `p` is the intersection of per-query regions
//! `p.sr_Q` over the *relevant queries* — those whose quarantine area
//! overlaps `p`'s grid cell — clipped to the cell itself (so every other
//! query is satisfied by construction). Range queries whose quarantine does
//! not contain `p` are handled together by the batch staircase algorithm of
//! §5.3; everything else goes through the Ir-lp constructions of §5.1–§5.2.

use crate::eval::EvalCtx;
use crate::grid::GridIndex;
use crate::ids::ObjectId;
use crate::query::{Quarantine, QuerySpec, QueryState};
use srb_geom::{
    irlp_circle, irlp_circle_complement, irlp_rect_complement_batch, irlp_ring, ClearanceObjective,
    OrdinaryPerimeter, PerimeterObjective, Point, Rect, Ring, WeightedPerimeter,
};

/// Fraction of the grid-cell size up to which an object's clearance from
/// its safe-region boundary is rewarded (see [`ClearanceObjective`]).
const CLEARANCE_FRACTION: f64 = 0.05;

/// Computes the safe region for object `oid` located exactly at `pos`.
///
/// `steadiness` selects the §6.2 weighted-perimeter objective; `p_lst` (the
/// previous exactly-known location) supplies the movement direction.
/// Objects recorded in `ctx.exact` are treated as having *invalid* safe
/// regions (probed but not yet recomputed), triggering the midpoint
/// replacement rule of §5.2.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_safe_region<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    grid: &GridIndex,
    queries: &[Option<QueryState>],
    oid: ObjectId,
    pos: Point,
    p_lst: Point,
    steadiness: Option<f64>,
) -> Rect {
    let cell = grid.cell_rect_of(pos);
    let scale = CLEARANCE_FRACTION * cell.width().min(cell.height());
    // Stack-dispatched objective: this runs once per safe-region
    // computation (every report), so the previous `Box<dyn>` was a heap
    // allocation on the hot path. Both variants live on the stack; only
    // the vtable pointer differs.
    let weighted;
    let ordinary;
    let objective: &dyn PerimeterObjective = match steadiness {
        Some(d) if p_lst != pos => {
            weighted = ClearanceObjective::new(WeightedPerimeter::new(pos, p_lst, d), pos, scale);
            &weighted
        }
        _ => {
            ordinary = ClearanceObjective::new(OrdinaryPerimeter, pos, scale);
            &ordinary
        }
    };
    srb_obs::counter!("safe_region.computations").inc();
    srb_obs::histogram!("safe_region.relevant_queries").record(grid.queries_at(pos).len() as u64);
    let mut sr = cell;
    let mut range_blocks: Vec<Rect> = Vec::new();

    for &qid in grid.queries_at(pos) {
        let Some(qs) = queries.get(qid.index()).and_then(|q| q.as_ref()) else {
            continue;
        };
        match sr_for_query(ctx, qs, oid, pos, &cell, objective) {
            SrQ::Rect(r) => {
                sr = sr.intersection(&r).unwrap_or_else(|| Rect::point(pos));
            }
            SrQ::RangeBlock(b) => range_blocks.push(b),
            SrQ::Whole => {}
        }
    }

    if !range_blocks.is_empty() {
        let batch = irlp_rect_complement_batch(&range_blocks, pos, &cell, objective);
        sr = sr.intersection(&batch).unwrap_or_else(|| Rect::point(pos));
    }
    if !sr.contains_point(pos) {
        // Numerical corner case: never hand a client a safe region it is
        // already outside of. The cell rectangle is derived from a grid
        // index computed by truncation, so `pos` can sit an ulp outside it;
        // the union must include `pos` itself (an ulp of spill past the
        // cell is harmless, a safe region excluding its own client loops
        // forever).
        sr = sr.union_point(pos);
    }
    sr
}

/// Computes the safe region contribution `p.sr_Q` of a *single* query — used
/// when a probe during new-query evaluation only needs the intersection
/// `p.sr ∩ p.sr_Q` (§5, case 1).
#[allow(dead_code)]
pub(crate) fn sr_for_single_query<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    grid: &GridIndex,
    qs: &QueryState,
    oid: ObjectId,
    pos: Point,
) -> Rect {
    let cell = grid.cell_rect_of(pos);
    match sr_for_query(ctx, qs, oid, pos, &cell, &OrdinaryPerimeter) {
        SrQ::Rect(r) => r,
        SrQ::RangeBlock(b) => irlp_rect_complement_batch(&[b], pos, &cell, &OrdinaryPerimeter),
        SrQ::Whole => cell,
    }
}

enum SrQ {
    /// A concrete rectangle to intersect into the safe region.
    Rect(Rect),
    /// A range-query rectangle to avoid — deferred to the batch algorithm.
    RangeBlock(Rect),
    /// No constraint from this query within the cell.
    Whole,
}

fn sr_for_query<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    qs: &QueryState,
    oid: ObjectId,
    pos: Point,
    cell: &Rect,
    objective: &dyn PerimeterObjective,
) -> SrQ {
    match (&qs.spec, &qs.quarantine) {
        (QuerySpec::Range { rect }, _) => {
            if rect.contains_point(pos) {
                // Result object: the quarantine area itself is the best safe
                // region (§5.1).
                srb_obs::counter!("safe_region.case.range_result").inc();
                SrQ::Rect(*rect)
            } else if rect.intersects(cell) {
                srb_obs::counter!("safe_region.case.range_block").inc();
                SrQ::RangeBlock(*rect)
            } else {
                srb_obs::counter!("safe_region.case.range_clear").inc();
                SrQ::Whole
            }
        }
        (QuerySpec::Knn { center, k, order_sensitive }, Quarantine::Circle(c)) => {
            let q = *center;
            match qs.result_rank(oid) {
                None => {
                    // Non-result: stay outside the quarantine circle (§5.2).
                    srb_obs::counter!("safe_region.case.knn_nonresult").inc();
                    match irlp_circle_complement(c, pos, cell, objective) {
                        Some(r) => SrQ::Rect(r),
                        None => SrQ::Rect(Rect::point(pos)),
                    }
                }
                Some(i) if !*order_sensitive => {
                    let _ = i;
                    // Order-insensitive result: stay inside the circle.
                    srb_obs::counter!("safe_region.case.knn_result_circle").inc();
                    match irlp_circle(c, pos, cell, objective) {
                        Some(r) => SrQ::Rect(r),
                        None => SrQ::Rect(Rect::point(pos)),
                    }
                }
                Some(i) => {
                    // Order-sensitive result: stay between the neighbors
                    // (§5.2, ring). i is 0-based; the paper's index is i+1.
                    srb_obs::counter!("safe_region.case.knn_result_ring").inc();
                    let d = pos.dist(q);
                    let inner = if i == 0 {
                        0.0
                    } else {
                        neighbor_bound(ctx, qs.results[i - 1], q, pos, true)
                    };
                    let outer = if i + 1 >= qs.results.len() || i + 1 >= *k {
                        c.radius
                    } else {
                        neighbor_bound(ctx, qs.results[i + 1], q, pos, false)
                    };
                    // Robustness: the ring must contain pos.
                    let inner = inner.min(d);
                    let outer = outer.max(d);
                    let ring = Ring::new(q, inner, outer);
                    match irlp_ring(&ring, pos, cell, objective) {
                        Some(r) => SrQ::Rect(r),
                        None => SrQ::Rect(Rect::point(pos)),
                    }
                }
            }
        }
        (QuerySpec::Knn { .. }, Quarantine::Rect(_)) => {
            unreachable!("kNN query with rectangular quarantine")
        }
    }
}

/// The ring bound contributed by the neighbor `o` of a result object at
/// `pos`: `Δ(q, o.sr)` for the inner neighbor / `δ(q, o.sr)` for the outer.
/// When `o`'s safe region is *invalid* (probed this round, not yet
/// recomputed — i.e. present in `ctx.exact`), §5.2 replaces the bound by the
/// midpoint `(d(q, o) + d(q, pos)) / 2`.
///
/// When the neighbor's *stale* safe region conflicts with `pos` (its bound
/// would leave no room for the ring — `Δ(q, o.sr) >= d(q, pos)` for the
/// inner neighbor, or `δ(q, o.sr) <= d(q, pos)` for the outer), the
/// neighbor is probed, which both resolves the conflict via the midpoint
/// rule and queues the neighbor's own safe region for recomputation.
/// Without the probe the ring collapses to a sliver pinned at `pos`, and
/// the object would have to update continuously.
fn neighbor_bound<B: srb_index::SpatialBackend>(
    ctx: &mut EvalCtx<'_, B>,
    o: ObjectId,
    q: Point,
    pos: Point,
    inner: bool,
) -> f64 {
    let d = pos.dist(q);
    if let Some(&pt) = ctx.exact.get(&o) {
        return (pt.dist(q) + d) * 0.5;
    }
    let Some(bound_full) = ctx.bound_of(o) else {
        return d; // unknown neighbor: degenerate to pos distance
    };
    let raw = if inner { bound_full.raw_max_dist(q) } else { bound_full.raw_min_dist(q) };
    let conflict = if inner { raw >= d - 1e-12 } else { raw <= d + 1e-12 };
    if !conflict {
        return raw;
    }
    // The neighbor's stale safe region conflicts with `pos`. Try the
    // reachability circle first (§6.1): if it bounds the neighbor away
    // from `d`, use the midpoint and schedule the deferred probe that
    // keeps the decision sound as the circle grows.
    if inner {
        let refined = bound_full.max_dist(q);
        if refined < d - 1e-12 {
            let chosen = (refined + d) * 0.5;
            ctx.defer_dist_threshold(o, q, chosen);
            return chosen;
        }
    } else {
        let refined = bound_full.min_dist(q);
        if refined > d + 1e-12 {
            let chosen = (refined + d) * 0.5;
            ctx.defer_min_dist_threshold(o, q, chosen);
            return chosen;
        }
    }
    ctx.work.probes_neighbor += 1;
    srb_obs::counter!("safe_region.neighbor_probes").inc();
    let pt = ctx.probe(o);
    (pt.dist(q) + d) * 0.5
}
