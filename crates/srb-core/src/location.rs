//! The location manager layer (paper §3.1, Figure 3.1 box "location
//! manager").
//!
//! Owns safe-region computation (§5), safe-region leases, and the deferred
//! probe queue that keeps the reachability enhancement (§6.1) sound over
//! time. The manager mutates the [`ObjectIndex`] when it installs fresh
//! regions and reads the [`QueryProcessor`] for the constraints, but owns
//! neither — the `Server` façade wires the layers together per operation.

use crate::config::ServerConfig;
use crate::eval::EvalCtx;
use crate::ids::ObjectId;
use crate::index::ObjectIndex;
use crate::object::ObjectTable;
use crate::processor::QueryProcessor;
use crate::provider::{CostTracker, LocationProvider, WorkStats};
use crate::safe_region::compute_safe_region;
use srb_geom::{Point, Rect};
use srb_hash::FastMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Why a deferred timer entry exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeferKind {
    /// Reachability-circle slack expiry (§6.1 soundness restoration).
    Slack,
    /// Safe-region lease expiry: the object has not been heard from for a
    /// full lease period — probe it in case its exit report was lost.
    Lease,
}

/// A scheduled deferred probe (see DESIGN.md): `epoch` is the object's
/// last-report timestamp at scheduling time — the entry is stale (and
/// silently dropped) if the object has reported or been probed since.
/// Lease renewals ride the same staleness rule: any contact bumps `t_lst`,
/// invalidating the old lease entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Deferred {
    pub due: f64,
    pub oid: ObjectId,
    pub epoch: f64,
    pub kind: DeferKind,
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.total_cmp(&other.due)
    }
}

/// The location manager: safe-region computation, leases, and the deferred
/// probe queue.
#[derive(Default)]
pub struct LocationManager {
    deferred: BinaryHeap<Reverse<Deferred>>,
}

impl LocationManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves evaluation-time deferral requests into the timer queue.
    /// Requests for objects that ended up exactly known in this operation
    /// are dropped — their safe regions were just recomputed.
    pub(crate) fn absorb_deferred(
        &mut self,
        scratch: &mut Vec<(ObjectId, f64)>,
        exact: &FastMap<ObjectId, Point>,
        objects: &ObjectTable,
    ) {
        for (oid, due) in scratch.drain(..) {
            if exact.contains_key(&oid) {
                continue;
            }
            let Some(st) = objects.get(oid) else { continue };
            self.deferred.push(Reverse(Deferred {
                due,
                oid,
                epoch: st.t_lst,
                kind: DeferKind::Slack,
            }));
        }
    }

    /// The earliest pending deferred-probe time, if any. Stale entries are
    /// discarded lazily.
    pub(crate) fn next_due(&mut self, objects: &ObjectTable) -> Option<f64> {
        while let Some(Reverse(d)) = self.deferred.peek() {
            let fresh = objects.get(d.oid).map(|st| st.t_lst == d.epoch).unwrap_or(false);
            if fresh {
                return Some(d.due);
            }
            self.deferred.pop();
        }
        None
    }

    /// Pops the next fresh entry due at or before `now`, if any.
    pub(crate) fn pop_due(&mut self, objects: &ObjectTable, now: f64) -> Option<Deferred> {
        let due = self.next_due(objects)?;
        if due > now + 1e-12 {
            return None;
        }
        self.deferred.pop().map(|Reverse(d)| d)
    }

    /// Serializes the deferred-probe queue for a durability checkpoint.
    /// Entries are written in the heap's internal array order; rebuilding
    /// a `BinaryHeap` from an array that already satisfies the heap
    /// property moves nothing, so the decoded queue pops in exactly the
    /// original order (ties included) — a requirement for bit-identical
    /// recovery.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        use srb_durable::codec::*;
        put_usize(out, self.deferred.len());
        for Reverse(d) in self.deferred.iter() {
            put_f64(out, d.due);
            put_u32(out, d.oid.0);
            put_f64(out, d.epoch);
            put_u8(
                out,
                match d.kind {
                    DeferKind::Slack => 0,
                    DeferKind::Lease => 1,
                },
            );
        }
    }

    /// Rebuilds a manager serialized by
    /// [`encode_state`](Self::encode_state).
    pub(crate) fn decode_state(
        dec: &mut srb_durable::Dec<'_>,
    ) -> Result<Self, srb_durable::DurableError> {
        use srb_durable::DurableError;
        let n = dec.len(21)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let due = dec.f64()?;
            let oid = ObjectId(dec.u32()?);
            let epoch = dec.f64()?;
            let kind = match dec.u8()? {
                0 => DeferKind::Slack,
                1 => DeferKind::Lease,
                _ => return Err(DurableError::Corrupt("bad defer kind")),
            };
            if due.is_nan() || epoch.is_nan() {
                return Err(DurableError::Corrupt("NaN deferred timestamp"));
            }
            entries.push(Reverse(Deferred { due, oid, epoch, kind }));
        }
        Ok(LocationManager { deferred: BinaryHeap::from(entries) })
    }

    /// Recomputes and installs safe regions for every exactly-known object
    /// of the current server operation (Algorithm 1, lines 14-15), and
    /// schedules a lease-expiry probe per region when leases are enabled.
    /// Appends the new regions to `out` (a reused scratch buffer the caller
    /// clears beforehand, so steady-state batches allocate nothing here).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recompute_safe_regions<B: srb_index::SpatialBackend>(
        &mut self,
        config: &ServerConfig,
        index: &mut ObjectIndex<B>,
        processor: &QueryProcessor,
        costs: &mut CostTracker,
        work: &mut WorkStats,
        exact: &mut FastMap<ObjectId, Point>,
        scratch: &mut Vec<(ObjectId, f64)>,
        out: &mut Vec<(ObjectId, Rect)>,
        provider: &mut dyn LocationProvider,
        now: f64,
    ) {
        let _span = srb_obs::span!("location.recompute_safe_regions");
        debug_assert!(out.is_empty(), "caller clears the recompute buffer");
        // Worklist in deterministic (id) order. Recomputing one object's
        // ring can probe a conflicting neighbor (see
        // `safe_region::neighbor_bound`), which inserts it into `exact` —
        // the loop picks it up until fixpoint. Objects already recomputed
        // leave the invalid set, so later ring bounds use their fresh safe
        // regions.
        while let Some(oid) =
            exact.keys().copied().filter(|o| !out.iter().any(|(done, _)| done == o)).min()
        {
            let pos = exact.remove(&oid).expect("picked from map");
            let p_lst = index.get(oid).map(|s| s.p_lst).unwrap_or(pos);
            let sr = {
                let mut ctx = EvalCtx {
                    tree: index.tree(),
                    objects: index.objects(),
                    exact,
                    provider,
                    costs,
                    work,
                    deferred: scratch,
                    max_speed: config.max_speed,
                    now,
                };
                compute_safe_region(
                    &mut ctx,
                    processor.grid(),
                    processor.slots(),
                    oid,
                    pos,
                    p_lst,
                    config.steadiness,
                )
            };
            work.safe_regions += 1;
            index.install_region(oid, pos, sr, now);
            if let Some(lease) = config.lease {
                if lease > 0.0 {
                    // Renewal-on-contact is implicit: this entry's epoch is
                    // the fresh `t_lst`, so any later contact (which bumps
                    // `t_lst`) invalidates it via the staleness rule.
                    self.deferred.push(Reverse(Deferred {
                        due: now + lease,
                        oid,
                        epoch: now,
                        kind: DeferKind::Lease,
                    }));
                }
            }
            out.push((oid, sr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectState;

    fn table_with(oid: ObjectId, t_lst: f64) -> ObjectTable {
        let mut t = ObjectTable::new();
        let p = Point::new(0.5, 0.5);
        t.set(oid, ObjectState { p_lst: p, t_lst, safe_region: Rect::point(p), last_seq: 0 });
        t
    }

    #[test]
    fn absorb_skips_exact_and_unknown_objects() {
        let mut lm = LocationManager::new();
        let objects = table_with(ObjectId(1), 0.0);
        let mut exact = FastMap::default();
        exact.insert(ObjectId(2), Point::new(0.1, 0.1));
        let mut scratch = vec![(ObjectId(1), 5.0), (ObjectId(2), 1.0), (ObjectId(9), 2.0)];
        lm.absorb_deferred(&mut scratch, &exact, &objects);
        assert!(scratch.is_empty());
        // Only the known, non-exact object survives.
        assert_eq!(lm.next_due(&objects), Some(5.0));
    }

    #[test]
    fn stale_entries_are_dropped_lazily() {
        let mut lm = LocationManager::new();
        let mut objects = table_with(ObjectId(3), 0.0);
        lm.absorb_deferred(&mut vec![(ObjectId(3), 2.0)], &FastMap::default(), &objects);
        assert_eq!(lm.next_due(&objects), Some(2.0));
        // A later contact bumps t_lst and invalidates the entry.
        objects.get_mut(ObjectId(3)).unwrap().t_lst = 1.0;
        assert_eq!(lm.next_due(&objects), None);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut lm = LocationManager::new();
        let objects = table_with(ObjectId(4), 0.0);
        lm.absorb_deferred(&mut vec![(ObjectId(4), 3.0)], &FastMap::default(), &objects);
        assert!(lm.pop_due(&objects, 2.9).is_none());
        let d = lm.pop_due(&objects, 3.0).expect("due now");
        assert_eq!(d.oid, ObjectId(4));
        assert_eq!(d.kind, DeferKind::Slack);
        assert!(lm.pop_due(&objects, 10.0).is_none());
    }
}
