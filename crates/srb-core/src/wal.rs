//! The durability plane's server-side half: operation records, probe
//! transcripts, and the write-ahead log wrapper.
//!
//! Every top-level server entry point is one *logical operation*. The log
//! records the operation's inputs **plus the transcript of every probe
//! the provider answered during it** — probes are the only
//! non-deterministic input (they read the outside world), so with the
//! transcript in hand a recovering server can replay the operation
//! through the same public entry point with a [`ReplayProvider`] and
//! reach a bit-identical state, no matter what the real clients are
//! doing by then.
//!
//! Record framing, CRC protection, group commit, checkpoint rotation,
//! and torn-tail repair all live one layer down in `srb-durable`; this
//! module only defines what goes *inside* a frame.

use crate::ids::{ObjectId, QueryId};
use crate::provider::LocationProvider;
use crate::query::{Quarantine, QuerySpec, QueryState};
use crate::server::SequencedUpdate;
use srb_durable::codec::{put_f64, put_u32, put_u64, put_u8, put_usize};
use srb_durable::{Dec, DurableError, Store};
use srb_geom::{Circle, Point, Rect};

// ----------------------------------------------------------------------
// Shared geometry / query codecs
// ----------------------------------------------------------------------

/// Encodes a point (f64 bit patterns, so NaN payloads round-trip).
pub(crate) fn put_point(out: &mut Vec<u8>, p: Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

/// Decodes a point, rejecting non-finite coordinates.
pub(crate) fn dec_point(dec: &mut Dec<'_>) -> Result<Point, DurableError> {
    let x = dec.f64()?;
    let y = dec.f64()?;
    if !x.is_finite() || !y.is_finite() {
        return Err(DurableError::Corrupt("non-finite point"));
    }
    Ok(Point::new(x, y))
}

/// Encodes a rectangle as its two corners.
pub(crate) fn put_rect(out: &mut Vec<u8>, r: &Rect) {
    put_point(out, r.min());
    put_point(out, r.max());
}

/// Decodes a rectangle, rejecting inverted or non-finite corners.
pub(crate) fn dec_rect(dec: &mut Dec<'_>) -> Result<Rect, DurableError> {
    let min = dec_point(dec)?;
    let max = dec_point(dec)?;
    if min.x > max.x || min.y > max.y {
        return Err(DurableError::Corrupt("inverted rect"));
    }
    Ok(Rect::new(min, max))
}

/// Encodes a query spec (shared by the sharded coordinator checkpoint).
pub(crate) fn put_spec(out: &mut Vec<u8>, spec: &QuerySpec) {
    match spec {
        QuerySpec::Range { rect } => {
            put_u8(out, 0);
            put_rect(out, rect);
        }
        QuerySpec::Knn { center, k, order_sensitive } => {
            put_u8(out, 1);
            put_point(out, *center);
            put_usize(out, *k);
            put_u8(out, u8::from(*order_sensitive));
        }
    }
}

/// Decodes a query spec written by [`put_spec`].
pub(crate) fn dec_spec(dec: &mut Dec<'_>) -> Result<QuerySpec, DurableError> {
    match dec.u8()? {
        0 => Ok(QuerySpec::Range { rect: dec_rect(dec)? }),
        1 => {
            let center = dec_point(dec)?;
            let k = dec.usize()?;
            if k == 0 {
                return Err(DurableError::Corrupt("kNN with k = 0"));
            }
            let order_sensitive = match dec.u8()? {
                0 => false,
                1 => true,
                _ => return Err(DurableError::Corrupt("bad bool")),
            };
            Ok(QuerySpec::Knn { center, k, order_sensitive })
        }
        _ => Err(DurableError::Corrupt("bad query spec tag")),
    }
}

fn put_quarantine(out: &mut Vec<u8>, q: &Quarantine) {
    match q {
        Quarantine::Rect(r) => {
            put_u8(out, 0);
            put_rect(out, r);
        }
        Quarantine::Circle(c) => {
            put_u8(out, 1);
            put_point(out, c.center);
            put_f64(out, c.radius);
        }
    }
}

fn dec_quarantine(dec: &mut Dec<'_>) -> Result<Quarantine, DurableError> {
    match dec.u8()? {
        0 => Ok(Quarantine::Rect(dec_rect(dec)?)),
        1 => {
            let center = dec_point(dec)?;
            let radius = dec.f64()?;
            if !radius.is_finite() || radius < 0.0 {
                return Err(DurableError::Corrupt("bad quarantine radius"));
            }
            Ok(Quarantine::Circle(Circle::new(center, radius)))
        }
        _ => Err(DurableError::Corrupt("bad quarantine tag")),
    }
}

/// Encodes one registered query's full state (spec, ordered results,
/// quarantine area).
pub(crate) fn put_query_state(out: &mut Vec<u8>, qs: &QueryState) {
    put_spec(out, &qs.spec);
    put_usize(out, qs.results.len());
    for o in &qs.results {
        put_u32(out, o.0);
    }
    put_quarantine(out, &qs.quarantine);
}

/// Decodes a query state written by [`put_query_state`].
pub(crate) fn dec_query_state(dec: &mut Dec<'_>) -> Result<QueryState, DurableError> {
    let spec = dec_spec(dec)?;
    let n = dec.len(4)?;
    let mut results = Vec::with_capacity(n);
    for _ in 0..n {
        results.push(ObjectId(dec.u32()?));
    }
    let quarantine = dec_quarantine(dec)?;
    Ok(QueryState { spec, results, quarantine })
}

// ----------------------------------------------------------------------
// Digest / fingerprint helpers
// ----------------------------------------------------------------------

/// 64-bit FNV-1a — the state digest the crash harness compares, and the
/// config fingerprint guarding checkpoints.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of every config field that shapes the serialized state.
/// `durability` is deliberately excluded: a recovered store may change
/// sync policy, directory, or checkpoint cadence freely.
pub(crate) fn config_fingerprint(cfg: &crate::config::ServerConfig) -> u64 {
    let s = format!(
        "{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
        cfg.space, cfg.grid_m, cfg.max_speed, cfg.steadiness, cfg.backend, cfg.cost, cfg.lease
    );
    fnv1a64(s.as_bytes())
}

// ----------------------------------------------------------------------
// Operation records
// ----------------------------------------------------------------------

const OP_ADD: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_REGISTER: u8 = 3;
const OP_DEREGISTER: u8 = 4;
const OP_UPDATE: u8 = 5;
const OP_BATCH: u8 = 6;
const OP_RAW_BATCH: u8 = 7;
const OP_DEFERRED: u8 = 8;
const OP_NEXT_DUE: u8 = 9;
const OP_PART_SEQ: u8 = 10;
const OP_PART_RAW: u8 = 11;

/// A decoded log record: one top-level operation plus its probe
/// transcript. `Batch`/`RawBatch` come in two shapes — *inline* (the
/// plain server logs the updates in the record) and *marker* (the
/// sharded coordinator logs per-shard counts; the updates themselves
/// live as partition records in the shard logs).
pub(crate) enum Record {
    /// `Server::add_object`.
    AddObject { id: ObjectId, pos: Point, now: f64, probes: Vec<(ObjectId, Point)> },
    /// `Server::remove_object`.
    RemoveObject { id: ObjectId, now: f64, probes: Vec<(ObjectId, Point)> },
    /// `Server::register_query`.
    RegisterQuery { spec: QuerySpec, now: f64, probes: Vec<(ObjectId, Point)> },
    /// `Server::deregister_query`.
    DeregisterQuery { id: QueryId },
    /// `Server::handle_location_update`.
    Update { id: ObjectId, pos: Point, now: f64, probes: Vec<(ObjectId, Point)> },
    /// A sequenced batch: inline updates or per-shard marker counts.
    Batch {
        now: f64,
        updates: Vec<SequencedUpdate>,
        shard_counts: Vec<u32>,
        probes: Vec<(ObjectId, Point)>,
    },
    /// A convenience (unsequenced) batch: same two shapes.
    RawBatch {
        now: f64,
        updates: Vec<(ObjectId, Point)>,
        shard_counts: Vec<u32>,
        probes: Vec<(ObjectId, Point)>,
    },
    /// `Server::process_deferred`.
    ProcessDeferred { now: f64, probes: Vec<(ObjectId, Point)> },
    /// `Server::next_deferred_due` — it lazily pops stale timer entries,
    /// so even this "read" mutates durable state.
    NextDue,
}

fn put_probes(out: &mut Vec<u8>, probes: &[(ObjectId, Point)]) {
    put_usize(out, probes.len());
    for &(oid, p) in probes {
        put_u32(out, oid.0);
        put_point(out, p);
    }
}

fn dec_probes(dec: &mut Dec<'_>) -> Result<Vec<(ObjectId, Point)>, DurableError> {
    let n = dec.len(20)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let oid = ObjectId(dec.u32()?);
        out.push((oid, dec_point(dec)?));
    }
    Ok(out)
}

fn dec_seq_updates(dec: &mut Dec<'_>) -> Result<Vec<SequencedUpdate>, DurableError> {
    let n = dec.len(28)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = ObjectId(dec.u32()?);
        let pos = dec_point(dec)?;
        out.push(SequencedUpdate { id, pos, seq: dec.u64()? });
    }
    Ok(out)
}

fn dec_raw_updates(dec: &mut Dec<'_>) -> Result<Vec<(ObjectId, Point)>, DurableError> {
    let n = dec.len(20)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = ObjectId(dec.u32()?);
        out.push((id, dec_point(dec)?));
    }
    Ok(out)
}

fn dec_shard_counts(dec: &mut Dec<'_>) -> Result<Vec<u32>, DurableError> {
    let n = dec.len(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(dec.u32()?);
    }
    Ok(out)
}

/// Decodes one operation record. Total: every malformed payload yields a
/// typed error, never a panic.
pub(crate) fn decode_record(payload: &[u8]) -> Result<Record, DurableError> {
    let mut dec = Dec::new(payload);
    let rec = match dec.u8()? {
        OP_ADD => {
            let id = ObjectId(dec.u32()?);
            let pos = dec_point(&mut dec)?;
            let now = dec.f64()?;
            Record::AddObject { id, pos, now, probes: dec_probes(&mut dec)? }
        }
        OP_REMOVE => {
            let id = ObjectId(dec.u32()?);
            let now = dec.f64()?;
            Record::RemoveObject { id, now, probes: dec_probes(&mut dec)? }
        }
        OP_REGISTER => {
            let spec = dec_spec(&mut dec)?;
            let now = dec.f64()?;
            Record::RegisterQuery { spec, now, probes: dec_probes(&mut dec)? }
        }
        OP_DEREGISTER => Record::DeregisterQuery { id: QueryId(dec.u32()?) },
        OP_UPDATE => {
            let id = ObjectId(dec.u32()?);
            let pos = dec_point(&mut dec)?;
            let now = dec.f64()?;
            Record::Update { id, pos, now, probes: dec_probes(&mut dec)? }
        }
        OP_BATCH => {
            let now = dec.f64()?;
            let (updates, shard_counts) = match dec.u8()? {
                0 => (dec_seq_updates(&mut dec)?, Vec::new()),
                1 => (Vec::new(), dec_shard_counts(&mut dec)?),
                _ => return Err(DurableError::Corrupt("bad batch mode")),
            };
            Record::Batch { now, updates, shard_counts, probes: dec_probes(&mut dec)? }
        }
        OP_RAW_BATCH => {
            let now = dec.f64()?;
            let (updates, shard_counts) = match dec.u8()? {
                0 => (dec_raw_updates(&mut dec)?, Vec::new()),
                1 => (Vec::new(), dec_shard_counts(&mut dec)?),
                _ => return Err(DurableError::Corrupt("bad batch mode")),
            };
            Record::RawBatch { now, updates, shard_counts, probes: dec_probes(&mut dec)? }
        }
        OP_DEFERRED => {
            let now = dec.f64()?;
            Record::ProcessDeferred { now, probes: dec_probes(&mut dec)? }
        }
        OP_NEXT_DUE => Record::NextDue,
        _ => return Err(DurableError::Corrupt("unknown opcode")),
    };
    dec.finish()?;
    Ok(rec)
}

/// Encodes a shard-log partition of sequenced updates into `buf`
/// (append-only; callers clear). Shared by the coordinator's sequential
/// logged path and the pipeline workers, which encode on their own
/// thread into a thread-local buffer.
pub(crate) fn encode_part_seq(buf: &mut Vec<u8>, updates: &[SequencedUpdate]) {
    put_u8(buf, OP_PART_SEQ);
    put_usize(buf, updates.len());
    for u in updates {
        put_u32(buf, u.id.0);
        put_point(buf, u.pos);
        put_u64(buf, u.seq);
    }
}

/// Decodes a shard-log partition of sequenced updates.
pub(crate) fn decode_part_seq(payload: &[u8]) -> Result<Vec<SequencedUpdate>, DurableError> {
    let mut dec = Dec::new(payload);
    if dec.u8()? != OP_PART_SEQ {
        return Err(DurableError::Corrupt("not a sequenced partition"));
    }
    let v = dec_seq_updates(&mut dec)?;
    dec.finish()?;
    Ok(v)
}

/// Decodes a shard-log partition of raw (unsequenced) updates.
pub(crate) fn decode_part_raw(payload: &[u8]) -> Result<Vec<(ObjectId, Point)>, DurableError> {
    let mut dec = Dec::new(payload);
    if dec.u8()? != OP_PART_RAW {
        return Err(DurableError::Corrupt("not a raw partition"));
    }
    let v = dec_raw_updates(&mut dec)?;
    dec.finish()?;
    Ok(v)
}

// ----------------------------------------------------------------------
// Providers
// ----------------------------------------------------------------------

/// Wraps the real provider and records every answered probe into the
/// operation's transcript.
pub(crate) struct RecordingProvider<'a> {
    inner: &'a mut dyn LocationProvider,
    transcript: &'a mut Vec<(ObjectId, Point)>,
}

impl LocationProvider for RecordingProvider<'_> {
    fn probe(&mut self, id: ObjectId) -> Point {
        let p = self.inner.probe(id);
        self.transcript.push((id, p));
        p
    }
}

/// Answers probes from a recorded transcript during replay. A healthy
/// replay consumes the transcript exactly; any mismatch (wrong object,
/// exhausted transcript) flips `diverged` and answers the origin instead
/// of panicking — recovery must never abort mid-repair.
pub(crate) struct ReplayProvider<'a> {
    transcript: &'a [(ObjectId, Point)],
    pos: usize,
    diverged: bool,
}

impl<'a> ReplayProvider<'a> {
    pub(crate) fn new(transcript: &'a [(ObjectId, Point)]) -> Self {
        ReplayProvider { transcript, pos: 0, diverged: false }
    }

    /// True when replay asked for probes the transcript cannot answer —
    /// the sign of a config/state mismatch the caller should surface.
    pub(crate) fn diverged(&self) -> bool {
        self.diverged || self.pos != self.transcript.len()
    }
}

impl LocationProvider for ReplayProvider<'_> {
    fn probe(&mut self, id: ObjectId) -> Point {
        match self.transcript.get(self.pos) {
            Some(&(oid, p)) => {
                self.pos += 1;
                if oid != id {
                    self.diverged = true;
                }
                p
            }
            None => {
                self.diverged = true;
                Point::ORIGIN
            }
        }
    }
}

// ----------------------------------------------------------------------
// The WAL wrapper
// ----------------------------------------------------------------------

/// The write-ahead log attached to a server: a generation [`Store`], the
/// current operation's probe transcript, and the checkpoint cadence.
/// Log index 0 is the coordinator/arbiter log; a sharded engine adds one
/// partition log per shard at indices `1..=n_shards`.
pub(crate) struct Wal {
    store: Store,
    probes: Vec<(ObjectId, Point)>,
    buf: Vec<u8>,
    checkpoint_ops: u64,
    ops_since_ckpt: u64,
}

impl Wal {
    pub(crate) fn new(store: Store, checkpoint_ops: u64) -> Self {
        Wal { store, probes: Vec::new(), buf: Vec::new(), checkpoint_ops, ops_since_ckpt: 0 }
    }

    /// Wraps `inner` so probes answered during the operation are
    /// transcribed into the pending record.
    pub(crate) fn recorder<'a>(
        &'a mut self,
        inner: &'a mut dyn LocationProvider,
    ) -> RecordingProvider<'a> {
        RecordingProvider { inner, transcript: &mut self.probes }
    }

    /// Whether an earlier I/O failure poisoned the store. A poisoned WAL
    /// accepts no further writes; the server must be recovered.
    pub(crate) fn poisoned(&self) -> bool {
        self.store.poisoned()
    }

    /// The active checkpoint generation.
    pub(crate) fn generation(&self) -> u64 {
        self.store.generation()
    }

    fn emit(&mut self) {
        put_probes(&mut self.buf, &self.probes);
        self.probes.clear();
        let _ = self.store.append(0, &self.buf);
    }

    /// Emits a record that carries no probe transcript (deregister,
    /// next-due): any probes left over from a nested context are dropped,
    /// matching the decoder, which reads no transcript for these opcodes.
    fn emit_no_probes(&mut self) {
        self.probes.clear();
        let _ = self.store.append(0, &self.buf);
    }

    pub(crate) fn log_add_object(&mut self, id: ObjectId, pos: Point, now: f64) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_ADD);
        put_u32(&mut self.buf, id.0);
        put_point(&mut self.buf, pos);
        put_f64(&mut self.buf, now);
        self.emit();
    }

    pub(crate) fn log_remove_object(&mut self, id: ObjectId, now: f64) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_REMOVE);
        put_u32(&mut self.buf, id.0);
        put_f64(&mut self.buf, now);
        self.emit();
    }

    pub(crate) fn log_register_query(&mut self, spec: &QuerySpec, now: f64) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_REGISTER);
        put_spec(&mut self.buf, spec);
        put_f64(&mut self.buf, now);
        self.emit();
    }

    pub(crate) fn log_deregister_query(&mut self, id: QueryId) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_DEREGISTER);
        put_u32(&mut self.buf, id.0);
        self.emit_no_probes();
    }

    pub(crate) fn log_update(&mut self, id: ObjectId, pos: Point, now: f64) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_UPDATE);
        put_u32(&mut self.buf, id.0);
        put_point(&mut self.buf, pos);
        put_f64(&mut self.buf, now);
        self.emit();
    }

    /// Plain-server sequenced batch: updates inline in the record.
    pub(crate) fn log_batch_inline(&mut self, now: f64, updates: &[SequencedUpdate]) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_BATCH);
        put_f64(&mut self.buf, now);
        put_u8(&mut self.buf, 0);
        put_usize(&mut self.buf, updates.len());
        for u in updates {
            put_u32(&mut self.buf, u.id.0);
            put_point(&mut self.buf, u.pos);
            put_u64(&mut self.buf, u.seq);
        }
        self.emit();
    }

    /// Plain-server raw batch: updates inline in the record.
    pub(crate) fn log_raw_batch_inline(&mut self, now: f64, updates: &[(ObjectId, Point)]) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_RAW_BATCH);
        put_f64(&mut self.buf, now);
        put_u8(&mut self.buf, 0);
        put_usize(&mut self.buf, updates.len());
        for &(id, pos) in updates {
            put_u32(&mut self.buf, id.0);
            put_point(&mut self.buf, pos);
        }
        self.emit();
    }

    /// Coordinator marker for a sharded sequenced batch: only the
    /// per-shard record counts; the partitions live in the shard logs.
    pub(crate) fn log_batch_marker(&mut self, now: f64, counts: &[u32]) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_BATCH);
        put_f64(&mut self.buf, now);
        put_u8(&mut self.buf, 1);
        put_usize(&mut self.buf, counts.len());
        for &c in counts {
            put_u32(&mut self.buf, c);
        }
        self.emit();
    }

    /// Coordinator marker for a sharded raw batch.
    pub(crate) fn log_raw_batch_marker(&mut self, now: f64, counts: &[u32]) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_RAW_BATCH);
        put_f64(&mut self.buf, now);
        put_u8(&mut self.buf, 1);
        put_usize(&mut self.buf, counts.len());
        for &c in counts {
            put_u32(&mut self.buf, c);
        }
        self.emit();
    }

    pub(crate) fn log_process_deferred(&mut self, now: f64) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_DEFERRED);
        put_f64(&mut self.buf, now);
        self.emit();
    }

    pub(crate) fn log_next_due(&mut self) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_NEXT_DUE);
        self.emit_no_probes();
    }

    /// Appends one shard's partition of a sequenced batch to shard log
    /// `shard` (0-based shard id → log index `shard + 1`).
    pub(crate) fn append_part_seq(&mut self, shard: usize, updates: &[SequencedUpdate]) {
        self.buf.clear();
        encode_part_seq(&mut self.buf, updates);
        let _ = self.store.append(shard + 1, &self.buf);
    }

    /// Lends shard `shard`'s partition log to a pipeline worker so the
    /// partition record can be appended on the worker thread. Returns
    /// `None` when the log is already checked out or the store is
    /// poisoned (callers fall back to the sequential logged path).
    pub(crate) fn take_shard_log(&mut self, shard: usize) -> Option<srb_durable::log::LogWriter> {
        self.store.take_log(shard + 1)
    }

    /// Returns a lent shard log after the worker's batch completed.
    pub(crate) fn put_shard_log(&mut self, shard: usize, log: srb_durable::log::LogWriter) {
        self.store.put_log(shard + 1, log);
    }

    /// Poisons the store after a worker-side append failure; subsequent
    /// batches take the sequential fallback and writes are refused.
    pub(crate) fn poison(&mut self) {
        self.store.poison();
    }

    /// Splices a pipeline worker's probe transcript (answered by the
    /// coordinator, in shard order) onto the pending record's transcript.
    /// Drains `probes` but keeps its capacity.
    pub(crate) fn extend_probes(&mut self, probes: &mut Vec<(ObjectId, Point)>) {
        self.probes.append(probes);
    }

    /// Appends one shard's partition of a raw batch.
    pub(crate) fn append_part_raw(&mut self, shard: usize, updates: &[(ObjectId, Point)]) {
        self.buf.clear();
        put_u8(&mut self.buf, OP_PART_RAW);
        put_usize(&mut self.buf, updates.len());
        for &(id, pos) in updates {
            put_u32(&mut self.buf, id.0);
            put_point(&mut self.buf, pos);
        }
        let _ = self.store.append(shard + 1, &self.buf);
    }

    /// Ends one logical operation: applies the sync policy (group
    /// commit) and reports whether the checkpoint cadence is due.
    pub(crate) fn note_op(&mut self) -> bool {
        let _ = self.store.op_end();
        self.ops_since_ckpt += 1;
        self.checkpoint_ops > 0 && self.ops_since_ckpt >= self.checkpoint_ops
    }

    /// Rotates to a fresh checkpoint rooted at `payload`.
    pub(crate) fn checkpoint(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        self.ops_since_ckpt = 0;
        self.store.checkpoint(payload)
    }

    /// Forces every buffered record to stable storage now.
    pub(crate) fn sync(&mut self) {
        let _ = self.store.commit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let probes = vec![(ObjectId(4), Point::new(0.25, 0.75))];
        let mut buf = Vec::new();
        put_u8(&mut buf, OP_ADD);
        put_u32(&mut buf, 9);
        put_point(&mut buf, Point::new(0.1, 0.2));
        put_f64(&mut buf, 3.5);
        put_probes(&mut buf, &probes);
        match decode_record(&buf).expect("valid record") {
            Record::AddObject { id, pos, now, probes: p } => {
                assert_eq!(id, ObjectId(9));
                assert_eq!(pos, Point::new(0.1, 0.2));
                assert_eq!(now, 3.5);
                assert_eq!(p, probes);
            }
            _ => panic!("wrong record kind"),
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut buf = Vec::new();
        put_u8(&mut buf, OP_NEXT_DUE);
        assert!(matches!(decode_record(&buf), Ok(Record::NextDue)));
        buf.push(0xFF);
        assert!(decode_record(&buf).is_err());
    }

    #[test]
    fn decode_is_total_on_garbage() {
        // No input may panic the decoder.
        for len in 0..64usize {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let _ = decode_record(&junk);
            let _ = decode_part_seq(&junk);
            let _ = decode_part_raw(&junk);
        }
    }

    #[test]
    fn replay_provider_flags_divergence() {
        let transcript = vec![(ObjectId(1), Point::new(0.5, 0.5))];
        let mut rp = ReplayProvider::new(&transcript);
        assert_eq!(rp.probe(ObjectId(1)), Point::new(0.5, 0.5));
        assert!(!rp.diverged());
        // Exhausted transcript: answers origin, flags divergence.
        assert_eq!(rp.probe(ObjectId(2)), Point::ORIGIN);
        assert!(rp.diverged());
    }

    /// Builds one valid record payload of the given kind, fields derived
    /// deterministically from `seed`.
    fn encode_valid(kind: u8, seed: u64) -> Vec<u8> {
        let f = |s: u64| (s % 997) as f64 / 997.0;
        let pt = |s: u64| Point::new(f(s), f(s >> 13));
        let probes = vec![(ObjectId((seed % 7) as u32), pt(seed ^ 0xABCD))];
        let mut buf = Vec::new();
        match kind {
            OP_ADD => {
                put_u8(&mut buf, OP_ADD);
                put_u32(&mut buf, seed as u32);
                put_point(&mut buf, pt(seed));
                put_f64(&mut buf, f(seed));
                put_probes(&mut buf, &probes);
            }
            OP_REMOVE => {
                put_u8(&mut buf, OP_REMOVE);
                put_u32(&mut buf, seed as u32);
                put_f64(&mut buf, f(seed));
                put_probes(&mut buf, &probes);
            }
            OP_REGISTER => {
                put_u8(&mut buf, OP_REGISTER);
                let spec = if seed.is_multiple_of(2) {
                    QuerySpec::range(Rect::centered(pt(seed), 0.1, 0.1))
                } else {
                    QuerySpec::knn(pt(seed), 1 + (seed % 5) as usize)
                };
                put_spec(&mut buf, &spec);
                put_f64(&mut buf, f(seed));
                put_probes(&mut buf, &probes);
            }
            OP_DEREGISTER => {
                put_u8(&mut buf, OP_DEREGISTER);
                put_u32(&mut buf, seed as u32);
            }
            OP_UPDATE => {
                put_u8(&mut buf, OP_UPDATE);
                put_u32(&mut buf, seed as u32);
                put_point(&mut buf, pt(seed));
                put_f64(&mut buf, f(seed));
                put_probes(&mut buf, &probes);
            }
            OP_BATCH => {
                put_u8(&mut buf, OP_BATCH);
                put_f64(&mut buf, f(seed));
                put_u8(&mut buf, (seed % 2) as u8);
                if seed.is_multiple_of(2) {
                    put_usize(&mut buf, 1);
                    put_u32(&mut buf, seed as u32);
                    put_point(&mut buf, pt(seed));
                    put_u64(&mut buf, seed);
                } else {
                    put_usize(&mut buf, 2);
                    put_u32(&mut buf, 1);
                    put_u32(&mut buf, 2);
                }
                put_probes(&mut buf, &probes);
            }
            OP_RAW_BATCH => {
                put_u8(&mut buf, OP_RAW_BATCH);
                put_f64(&mut buf, f(seed));
                put_u8(&mut buf, 0);
                put_usize(&mut buf, 1);
                put_u32(&mut buf, seed as u32);
                put_point(&mut buf, pt(seed));
                put_probes(&mut buf, &probes);
            }
            OP_DEFERRED => {
                put_u8(&mut buf, OP_DEFERRED);
                put_f64(&mut buf, f(seed));
                put_probes(&mut buf, &probes);
            }
            OP_PART_SEQ => {
                put_u8(&mut buf, OP_PART_SEQ);
                put_usize(&mut buf, 1);
                put_u32(&mut buf, seed as u32);
                put_point(&mut buf, pt(seed));
                put_u64(&mut buf, seed);
            }
            OP_PART_RAW => {
                put_u8(&mut buf, OP_PART_RAW);
                put_usize(&mut buf, 1);
                put_u32(&mut buf, seed as u32);
                put_point(&mut buf, pt(seed));
            }
            _ => put_u8(&mut buf, OP_NEXT_DUE),
        }
        buf
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]

        /// Every decoder is total: a valid record of any kind, corrupted
        /// by truncation, a bit flip, or appended garbage, must come back
        /// as `Ok` or a typed error — never a panic. (Damaged frames are
        /// routine input after a crash; the recovery path feeds every
        /// surviving payload through these decoders.)
        #[test]
        fn corrupted_records_never_panic_decoders(
            kind in 1u8..=11,
            seed in 0u64..u64::MAX,
            cut in 0usize..256,
            flip_at in 0usize..256,
            xor in 1u8..=255,
            junk in proptest::collection::vec(0u8..=255, 0..24),
        ) {
            let valid = encode_valid(kind, seed);

            let mut variants: Vec<Vec<u8>> = Vec::new();
            variants.push(valid[..cut.min(valid.len())].to_vec());
            let mut flipped = valid.clone();
            let at = flip_at % flipped.len().max(1);
            if let Some(b) = flipped.get_mut(at) {
                *b ^= xor;
            }
            variants.push(flipped);
            let mut extended = valid.clone();
            extended.extend_from_slice(&junk);
            variants.push(extended);
            variants.push(junk);

            for v in &variants {
                let _ = decode_record(v);
                let _ = decode_part_seq(v);
                let _ = decode_part_raw(v);
            }

            // The untouched payload still decodes through its own entry
            // point (corruption of *other* copies must not matter).
            match kind {
                OP_PART_SEQ => assert!(decode_part_seq(&valid).is_ok()),
                OP_PART_RAW => assert!(decode_part_raw(&valid).is_ok()),
                _ => assert!(decode_record(&valid).is_ok()),
            }
        }
    }

    #[test]
    fn query_state_codec_round_trips() {
        let qs = QueryState {
            spec: QuerySpec::knn(Point::new(0.3, 0.4), 2),
            results: vec![ObjectId(7), ObjectId(1)],
            quarantine: Quarantine::Circle(Circle::new(Point::new(0.3, 0.4), 0.1)),
        };
        let mut buf = Vec::new();
        put_query_state(&mut buf, &qs);
        let mut dec = Dec::new(&buf);
        let back = dec_query_state(&mut dec).expect("valid");
        dec.finish().expect("fully consumed");
        assert_eq!(back.spec, qs.spec);
        assert_eq!(back.results, qs.results);
        assert_eq!(back.quarantine, qs.quarantine);
    }
}
