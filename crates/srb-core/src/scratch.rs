//! Reusable per-operation buffers — the server's memory plane.
//!
//! Every state-mutating server operation used to open with the same block:
//! build a fresh `exact: HashMap<ObjectId, Point>` and a fresh deferred-probe
//! `Vec`, run the operation, drop both. At millions of reports per second
//! that per-batch construction — not geometry — bounds throughput, so the
//! buffers now live in a [`BatchScratch`] arena owned by each `Server`
//! (per-shard in the sharded engine) and are cleared and reused instead of
//! reallocated. Once capacities have warmed up, the steady-state report path
//! performs **zero** heap allocations (pinned by the counting-allocator test
//! `alloc_steady.rs` and the `mem` bench).
//!
//! The buffers are handed out by value (`take_*`) and returned (`put_*`)
//! rather than borrowed, so an operation can hold its buffers as locals
//! while freely taking `&mut self` borrows of the server's layers. Taking
//! moves three pointers per group; nothing is copied.

use crate::ids::{ObjectId, QueryId};
use srb_geom::{Point, Rect};
use srb_hash::FastMap;

/// Buffers shared by *every* state-mutating operation (`add_object`,
/// `remove_object`, `register_query`, `process_report`, the batch path) —
/// the deduplicated form of the per-operation preamble each of them used to
/// build inline.
#[derive(Default)]
pub(crate) struct OpBuffers {
    /// Exactly-known locations of the current operation (the updater plus
    /// every probed object) — Algorithm 1's invalid set.
    pub exact: FastMap<ObjectId, Point>,
    /// Deferred-probe requests accumulated during evaluation.
    pub deferred: Vec<(ObjectId, f64)>,
    /// Safe regions recomputed at the end of the operation.
    pub recomputed: Vec<(ObjectId, Rect)>,
    /// Affected-query candidates of the current report.
    pub candidates: Vec<QueryId>,
}

impl OpBuffers {
    fn clear(&mut self) {
        self.exact.clear();
        self.deferred.clear();
        self.recomputed.clear();
        self.candidates.clear();
    }
}

/// Extra buffers for the multi-update batch path.
#[derive(Default)]
pub(crate) struct BatchBuffers {
    /// Previous anchor (`p_lst`) of every mover in the batch.
    pub prev: FastMap<ObjectId, Point>,
    /// Movers grouped by affected query.
    pub per_query: Vec<(QueryId, Vec<ObjectId>)>,
}

impl BatchBuffers {
    fn clear(&mut self) {
        self.prev.clear();
        self.per_query.clear();
    }
}

/// Buffers for the chunked-yield response path (the pipelined front-end):
/// the whole batch is staged in `stage`, then drained into `chunk`-sized
/// pieces that are swapped with ring-slot buffers. Both vectors recirculate
/// capacity with the ring, keeping the streaming path allocation-free.
#[derive(Default)]
pub(crate) struct RespBuffers {
    /// The full batch response, staged before chunked emission.
    pub stage: Vec<(ObjectId, crate::server::UpdateResponse)>,
    /// The chunk currently being handed to the emitter.
    pub chunk: Vec<(ObjectId, crate::server::UpdateResponse)>,
}

impl RespBuffers {
    fn clear(&mut self) {
        self.stage.clear();
        self.chunk.clear();
    }
}

/// Buffers for the sequenced-update admission pass.
#[derive(Default)]
pub(crate) struct SeqBuffers {
    /// Updates that passed the sequence check, in arrival order.
    pub accepted: Vec<(ObjectId, Point)>,
    /// Stale-sequence senders owed a safe-region re-grant.
    pub regrants: Vec<ObjectId>,
}

impl SeqBuffers {
    fn clear(&mut self) {
        self.accepted.clear();
        self.regrants.clear();
    }
}

/// The per-server scratch arena. All buffers retain their capacity across
/// operations; `take_*` clears content (never capacity) before handing a
/// group out.
#[derive(Default)]
pub(crate) struct BatchScratch {
    op: OpBuffers,
    batch: BatchBuffers,
    seq: SeqBuffers,
    resp: RespBuffers,
    high_water: usize,
}

impl BatchScratch {
    /// Takes the shared per-operation buffers, cleared.
    pub fn take_op(&mut self) -> OpBuffers {
        let mut b = std::mem::take(&mut self.op);
        b.clear();
        b
    }

    /// Returns the per-operation buffers, recording the high-water mark.
    pub fn put_op(&mut self, b: OpBuffers) {
        self.note(b.recomputed.len().max(b.exact.len()));
        self.op = b;
    }

    /// Takes the batch-path buffers, cleared.
    pub fn take_batch(&mut self) -> BatchBuffers {
        let mut b = std::mem::take(&mut self.batch);
        b.clear();
        b
    }

    /// Returns the batch-path buffers.
    pub fn put_batch(&mut self, b: BatchBuffers) {
        self.note(b.prev.len());
        self.batch = b;
    }

    /// Takes the sequenced-admission buffers, cleared.
    pub fn take_seq(&mut self) -> SeqBuffers {
        let mut b = std::mem::take(&mut self.seq);
        b.clear();
        b
    }

    /// Returns the sequenced-admission buffers.
    pub fn put_seq(&mut self, b: SeqBuffers) {
        self.note(b.accepted.len());
        self.seq = b;
    }

    /// Takes the chunked-response buffers, cleared.
    pub fn take_resp(&mut self) -> RespBuffers {
        let mut b = std::mem::take(&mut self.resp);
        b.clear();
        b
    }

    /// Returns the chunked-response buffers.
    pub fn put_resp(&mut self, b: RespBuffers) {
        self.note(b.stage.len());
        self.resp = b;
    }

    /// Most entries any scratch buffer held during a single operation.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drops every retained capacity (bench baseline: simulates the old
    /// build-buffers-per-batch behavior when called before each batch).
    pub fn drop_capacity(&mut self) {
        self.op = OpBuffers::default();
        self.batch = BatchBuffers::default();
        self.seq = SeqBuffers::default();
        self.resp = RespBuffers::default();
    }

    fn note(&mut self, used: usize) {
        if used > self.high_water {
            self.high_water = used;
            srb_obs::gauge!("server.scratch_high_water").set(self.high_water as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_clears_content_but_keeps_capacity() {
        let mut s = BatchScratch::default();
        let mut op = s.take_op();
        for i in 0..64u32 {
            op.exact.insert(ObjectId(i), Point::new(0.0, 0.0));
            op.deferred.push((ObjectId(i), 1.0));
        }
        let map_cap = op.exact.capacity();
        let vec_cap = op.deferred.capacity();
        s.put_op(op);

        let op = s.take_op();
        assert!(op.exact.is_empty() && op.deferred.is_empty());
        assert!(op.exact.capacity() >= map_cap);
        assert!(op.deferred.capacity() >= vec_cap);
        s.put_op(op);
        assert_eq!(s.high_water(), 64);
    }

    #[test]
    fn drop_capacity_resets_buffers() {
        let mut s = BatchScratch::default();
        let mut op = s.take_op();
        op.deferred.reserve(128);
        s.put_op(op);
        s.drop_capacity();
        assert_eq!(s.take_op().deferred.capacity(), 0);
    }
}
