//! Identifier newtypes for moving objects and registered queries.

use std::fmt;

/// Identifier of a moving object (mobile client). Object ids are expected to
/// be small dense integers; the server stores per-object state in a vector
/// indexed by them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// Identifier of a registered continuous query, assigned by the server at
/// registration time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl ObjectId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id as an R-tree entry id.
    #[inline]
    pub fn entry(self) -> u64 {
        self.0 as u64
    }
}

impl QueryId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_and_indexing() {
        assert_eq!(format!("{}", ObjectId(7)), "o7");
        assert_eq!(format!("{:?}", QueryId(3)), "q3");
        assert_eq!(ObjectId(9).index(), 9);
        assert_eq!(ObjectId(9).entry(), 9u64);
        assert_eq!(QueryId(4).index(), 4);
    }

    #[test]
    fn ordering() {
        assert!(ObjectId(1) < ObjectId(2));
        assert!(QueryId(5) > QueryId(0));
    }
}
