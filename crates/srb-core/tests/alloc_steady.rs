//! Counting-allocator pin for the memory plane: once capacities have warmed
//! up, a steady-state sequenced-update batch performs **zero** heap
//! allocations — on the plain [`Server`] and on the sequential 2-shard
//! [`ShardedServer`] path alike.
//!
//! The allocator counters are thread-local (const-initialized `Cell`s, so
//! reading them never allocates and other test threads cannot pollute a
//! measurement). The workload keeps objects jittering around fixed homes in
//! the interiors of distinct grid cells, with the only query far away: after
//! warmup every batch reuses the scratch arenas, the R*-tree updates stay on
//! the in-place path, and the response buffers retain their capacity.

use srb_core::{
    FnProvider, ObjectId, QuerySpec, SequencedUpdate, Server, ServerConfig, ShardedServer,
    UpdateResponse,
};
use srb_geom::{Point, Rect};
use srb_index::{NearestScratch, SpatialBackend};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`; only bumps a thread-local
// counter on the allocating entry points.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

const N_OBJECTS: usize = 12;
const WARMUP_BATCHES: u64 = 32;
const MEASURED_BATCHES: u64 = 32;

/// Home position of object `i`: the center of a distinct grid cell
/// (`grid_m = 50` means 0.02-wide cells with centers at `0.01 + 0.02 k`),
/// so the ±0.003 jitter never crosses a cell boundary.
fn home(i: usize) -> Point {
    Point::new(0.01 + 0.02 * (3 * i) as f64, 0.01 + 0.02 * (2 * i + 1) as f64)
}

/// Position of object `i` in batch `b`: alternating jitter around home.
fn pos_at(i: usize, b: u64) -> Point {
    let h = home(i);
    let d = if b & 1 == 0 { 0.003 } else { -0.003 };
    Point::new(h.x + d, h.y - d)
}

fn batch(b: u64) -> Vec<SequencedUpdate> {
    (0..N_OBJECTS)
        .map(|i| SequencedUpdate { id: ObjectId(i as u32), pos: pos_at(i, b), seq: b + 1 })
        .collect()
}

/// Runs the workload through `step` (one call per batch, appending into the
/// reused response buffer) and returns the number of heap allocations made
/// by the measured batches.
fn measure(mut step: impl FnMut(&[SequencedUpdate], &mut Vec<(ObjectId, UpdateResponse)>)) -> u64 {
    let mut out: Vec<(ObjectId, UpdateResponse)> = Vec::new();
    for b in 0..WARMUP_BATCHES {
        out.clear();
        step(&batch(b), &mut out);
        assert_eq!(out.len(), N_OBJECTS, "every updater gets a response");
    }
    let before = allocs();
    for b in WARMUP_BATCHES..WARMUP_BATCHES + MEASURED_BATCHES {
        let updates = batch(b);
        let baseline = allocs();
        out.clear();
        step(&updates, &mut out);
        assert_eq!(allocs(), baseline, "batch {b} allocated on the steady-state path");
        assert_eq!(out.len(), N_OBJECTS);
    }
    // `batch()` itself allocates the update vector; everything else must not.
    allocs() - before - MEASURED_BATCHES
}

#[test]
fn server_steady_state_batches_do_not_allocate() {
    let mut provider = FnProvider(|id: ObjectId| home(id.index()));
    let mut server = Server::new(ServerConfig::default());
    for i in 0..N_OBJECTS {
        server.add_object(ObjectId(i as u32), home(i), &mut provider, 0.0).expect("fresh id");
    }
    // A query far from every object: present (so the query plane is
    // exercised) but never affected by the jitter.
    let far = Rect::new(Point::new(0.9, 0.9), Point::new(0.95, 0.95));
    server.register_query(QuerySpec::Range { rect: far }, &mut provider, 0.0);

    let extra = measure(|updates, out| {
        server.handle_sequenced_updates_into(updates, &mut provider, 1.0, out);
    });
    assert_eq!(extra, 0, "steady-state Server batch must be allocation-free");
}

/// The enum-dispatched backend must hit the same zero: `DynBackend`'s
/// per-op `match` adds branch cost, never heap traffic, so the dispatch
/// seam stays invisible to the memory plane.
#[test]
fn dyn_server_steady_state_batches_do_not_allocate() {
    let mut provider = FnProvider(|id: ObjectId| home(id.index()));
    let mut server = Server::<srb_core::DynBackend>::with_backend(ServerConfig::default());
    for i in 0..N_OBJECTS {
        server.add_object(ObjectId(i as u32), home(i), &mut provider, 0.0).expect("fresh id");
    }
    let far = Rect::new(Point::new(0.9, 0.9), Point::new(0.95, 0.95));
    server.register_query(QuerySpec::Range { rect: far }, &mut provider, 0.0);

    let extra = measure(|updates, out| {
        server.handle_sequenced_updates_into(updates, &mut provider, 1.0, out);
    });
    assert_eq!(extra, 0, "steady-state DynBackend batch must be allocation-free");
}

#[test]
fn sharded_steady_state_batches_do_not_allocate() {
    let mut provider = FnProvider(|id: ObjectId| home(id.index()));
    let mut server = ShardedServer::new(ServerConfig::default(), 2);
    for i in 0..N_OBJECTS {
        server.add_object(ObjectId(i as u32), home(i), &mut provider, 0.0).expect("fresh id");
    }
    let far = Rect::new(Point::new(0.9, 0.9), Point::new(0.95, 0.95));
    server.register_query(QuerySpec::Range { rect: far }, &mut provider, 0.0);

    let extra = measure(|updates, out| {
        server.handle_sequenced_updates_into(updates, &mut provider, 1.0, out);
    });
    assert_eq!(extra, 0, "steady-state sharded batch must be allocation-free");
}

/// The kNN leg of the allocation-free story: once the scratch frontier has
/// warmed up, a full best-first browse through `nearest_iter_with` performs
/// zero heap allocations, on both spatial backends.
#[test]
fn nearest_iter_with_steady_state_does_not_allocate() {
    fn check<B: SpatialBackend>(backend: &mut B, label: &str) {
        for i in 0..64u64 {
            let p = Point::new(0.013 * (i % 8) as f64 + 0.05, 0.011 * (i / 8) as f64 + 0.05);
            backend.insert(i, Rect::point(p));
        }
        let mut scratch = NearestScratch::new();
        let q = Point::new(0.4, 0.6);
        // Warmup: grows the frontier buffer (and any per-browse telemetry
        // buffers) to steady-state capacity.
        for _ in 0..4 {
            assert_eq!(backend.nearest_iter_with(q, &mut scratch).count(), 64);
        }
        let before = allocs();
        let mut n = 0u64;
        let mut last = 0.0f64;
        for nb in backend.nearest_iter_with(q, &mut scratch) {
            assert!(nb.dist >= last);
            last = nb.dist;
            n += 1;
        }
        assert_eq!(n, 64);
        assert_eq!(allocs(), before, "steady-state {label} kNN browse must be allocation-free");
    }
    check(&mut srb_core::RStarTree::new(srb_core::TreeConfig::default()), "rstar");
    check(&mut srb_core::UniformGrid::new(srb_core::GridConfig::default(), Rect::UNIT), "grid");
    // And through the enum dispatch seam, on both inner structures.
    check(
        &mut srb_core::DynBackend::build(
            &srb_core::BackendConfig::RStar(srb_core::TreeConfig::default()),
            Rect::UNIT,
        ),
        "dyn-rstar",
    );
    check(
        &mut srb_core::DynBackend::build(
            &srb_core::BackendConfig::Grid(srb_core::GridConfig::default()),
            Rect::UNIT,
        ),
        "dyn-grid",
    );
}
