//! Property-based query-churn test for the generational query slots:
//! `register_query` / `deregister_query` interleaved with sequenced update
//! batches on a [`ShardedServer`] (mirrored against a plain [`Server`]).
//!
//! The point under test is slot reuse. Deregistering a query frees its
//! dense slot and a later registration may claim the same [`QueryId`]; the
//! slot's generation must bump on every free so that
//!
//! - a dead query's results are gone the moment it is deregistered and
//!   never reappear after later batches (no resurrection through a reused
//!   slot), and
//! - a query that *reuses* the slot answers exactly its own (range)
//!   predicate — checked against a brute-force oracle over the true
//!   positions, which every moved object reports at batch end.

use proptest::prelude::*;
use srb_core::{
    DurabilityConfig, FnProvider, ObjectId, QueryId, QuerySpec, SequencedUpdate, Server,
    ServerConfig, ShardedServer, SyncPolicy,
};
use srb_geom::{Point, Rect};

const N_OBJECTS: usize = 16;

#[derive(Clone, Debug)]
enum Ev {
    /// Register a fresh range query (clamped to the unit square).
    Register { cx: f64, cy: f64, half: f64 },
    /// Deregister the `pick % live`-th live query (no-op when none are).
    Deregister { pick: usize },
    /// Move an object and have it report in this batch's sequenced updates.
    Move { obj: usize, dx: f64, dy: f64 },
}

fn arb_event() -> impl Strategy<Value = Ev> {
    // kind 0..2: register; 2..4: deregister; 4..8: move+report.
    (0u8..8, 0.0f64..1.0, 0.0f64..1.0, 0.02f64..0.3, 0usize..64).prop_map(
        |(kind, cx, cy, half, pick)| match kind {
            0 | 1 => Ev::Register { cx, cy, half },
            2 | 3 => Ev::Deregister { pick },
            _ => Ev::Move { obj: pick % N_OBJECTS, dx: (cx - 0.5) * 0.4, dy: (cy - 0.5) * 0.4 },
        },
    )
}

fn range_rect(cx: f64, cy: f64, half: f64) -> Rect {
    Rect::centered(Point::new(cx, cy), half, half)
        .intersection(&Rect::UNIT)
        .unwrap_or(Rect::point(Point::new(cx.clamp(0.0, 1.0), cy.clamp(0.0, 1.0))))
}

/// Drives the churn stream through a plain server and a sharded one.
/// `pipelined` routes the sharded batches through the persistent-worker
/// front-end (`handle_sequenced_updates_parallel` with 4 workers) instead
/// of the sequential path; every oracle below must hold identically.
fn drive(n_shards: usize, pipelined: bool, seed_pts: &[(f64, f64)], batches: &[Vec<Ev>]) {
    let mut positions: Vec<Point> = (0..N_OBJECTS)
        .map(|i| {
            let (x, y) = seed_pts[i % seed_pts.len()];
            Point::new((x + i as f64 * 0.013).fract(), (y + i as f64 * 0.029).fract())
        })
        .collect();
    let cfg = ServerConfig { grid_m: 10, ..Default::default() };
    let mut plain = Server::new(cfg);
    let mut sharded = ShardedServer::new(cfg, n_shards).with_threads(if pipelined { 4 } else { 1 });
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            plain.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            sharded.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
    }

    let mut live: Vec<(QueryId, Rect)> = Vec::new();
    let mut dead: Vec<QueryId> = Vec::new();
    let mut seqs = [0u64; N_OBJECTS];
    let mut now = 0.0;
    for batch_events in batches {
        now += 0.1;
        let mut batch: Vec<SequencedUpdate> = Vec::new();
        for ev in batch_events {
            match *ev {
                Ev::Register { cx, cy, half } => {
                    let rect = range_rect(cx, cy, half);
                    let snapshot = positions.clone();
                    let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
                    let a = plain.register_query(QuerySpec::range(rect), &mut provider, now);
                    let b = sharded.register_query(QuerySpec::range(rect), &mut provider, now);
                    assert_eq!(a.id, b.id, "query allocators in lockstep under churn");
                    dead.retain(|&d| d != a.id);
                    live.push((a.id, rect));
                }
                Ev::Deregister { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (qid, _) = live.remove(pick % live.len());
                    let gen_before = plain.query_processor().generation(qid);
                    assert!(plain.deregister_query(qid), "was registered");
                    assert!(sharded.deregister_query(qid), "was registered");
                    // Results vanish immediately, on both engines.
                    assert!(plain.results(qid).is_none(), "dead query {qid} still answers");
                    assert!(sharded.results(qid).is_none(), "dead query {qid} still answers");
                    // The freed slot's generation bumped, so stale handles
                    // can never alias a future occupant.
                    assert_ne!(
                        plain.query_processor().generation(qid),
                        gen_before,
                        "deregistration must bump the slot generation"
                    );
                    dead.push(qid);
                }
                Ev::Move { obj, dx, dy } => {
                    let p = &mut positions[obj];
                    p.x = (p.x + dx).clamp(0.0, 1.0);
                    p.y = (p.y + dy).clamp(0.0, 1.0);
                    seqs[obj] += 1;
                    batch.push(SequencedUpdate {
                        id: ObjectId(obj as u32),
                        pos: *p,
                        seq: seqs[obj],
                    });
                }
            }
        }
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        plain.handle_sequenced_updates(&batch, &mut provider, now);
        if pipelined {
            let sync = |id: ObjectId| snapshot[id.index()];
            sharded.handle_sequenced_updates_parallel(&batch, &sync, now);
        } else {
            sharded.handle_sequenced_updates(&batch, &mut provider, now);
        }
        plain.check_invariants();
        sharded.check_invariants();

        // Dead queries stay dead: a reused slot must never resurrect them.
        for &qid in &dead {
            assert!(plain.results(qid).is_none(), "dead query {qid} resurrected");
            assert!(sharded.results(qid).is_none(), "dead query {qid} resurrected");
        }
        // Live queries answer exactly their own predicate: every object that
        // moved also reported, so the servers' known positions equal the
        // true ones and the brute-force oracle is exact.
        for &(qid, rect) in &live {
            let expected: Vec<ObjectId> = (0..N_OBJECTS)
                .map(|i| ObjectId(i as u32))
                .filter(|o| rect.contains_point(positions[o.index()]))
                .collect();
            let sort = |rs: &[ObjectId]| {
                let mut v = rs.to_vec();
                v.sort_unstable();
                v
            };
            let a = sort(plain.results(qid).expect("live query answers"));
            let b = sort(sharded.results(qid).expect("live query answers"));
            assert_eq!(a, expected, "plain results for {qid} diverged from oracle at t={now}");
            assert_eq!(b, expected, "sharded results for {qid} diverged from oracle at t={now}");
        }
    }
}

/// The same churn stream on a *durable* sharded server, with a restart in
/// the middle: log everything, drop the server cold, recover, and prove
/// the generational slot keys survive — the recovered state is
/// bit-identical, dead queries stay dead across the restart, and live
/// ones still answer exactly their predicate.
///
/// With `pipelined`, batches run through the persistent-worker front-end
/// (partition records appended on the worker threads) and a non-durable
/// *synchronous twin* consumes the identical event stream through the
/// sequential path; their state digests must agree after every batch —
/// the pipelined WAL transcript and the drained-queue restart are only
/// correct if the completed-operation prefix is the synchronous one.
fn drive_durable(pipelined: bool, seed_pts: &[(f64, f64)], batches: &[Vec<Ev>]) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir: &'static str = Box::leak(
        std::env::temp_dir()
            .join(format!("srb-churn-{}-{}", std::process::id(), N.fetch_add(1, Ordering::Relaxed)))
            .to_string_lossy()
            .into_owned()
            .into_boxed_str(),
    );
    let cfg = ServerConfig {
        grid_m: 10,
        durability: DurabilityConfig {
            dir: Some(dir),
            policy: SyncPolicy::GroupCommit,
            group_ops: 3,
            checkpoint_ops: 11,
        },
        ..Default::default()
    };

    let mut positions: Vec<Point> = (0..N_OBJECTS)
        .map(|i| {
            let (x, y) = seed_pts[i % seed_pts.len()];
            Point::new((x + i as f64 * 0.013).fract(), (y + i as f64 * 0.029).fract())
        })
        .collect();
    let mut server = ShardedServer::new(cfg, 2).with_threads(if pipelined { 4 } else { 1 });
    // The synchronous twin: same shard count, no WAL, sequential batches.
    let twin_cfg = ServerConfig { durability: DurabilityConfig::default(), ..cfg };
    let mut twin = pipelined.then(|| ShardedServer::new(twin_cfg, 2));
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            if let Some(t) = twin.as_mut() {
                t.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            }
        }
    }

    let mut live: Vec<(QueryId, Rect)> = Vec::new();
    let mut dead: Vec<QueryId> = Vec::new();
    let mut seqs = [0u64; N_OBJECTS];
    let mut now = 0.0;
    // The restart splits the stream roughly in half; every batch before it
    // is replayed from the log, every batch after it runs on the
    // recovered server.
    let restart_after = batches.len() / 2;
    for (bi, batch_events) in batches.iter().enumerate() {
        now += 0.1;
        let mut batch: Vec<SequencedUpdate> = Vec::new();
        for ev in batch_events {
            match *ev {
                Ev::Register { cx, cy, half } => {
                    let rect = range_rect(cx, cy, half);
                    let snapshot = positions.clone();
                    let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
                    let r = server.register_query(QuerySpec::range(rect), &mut provider, now);
                    if let Some(t) = twin.as_mut() {
                        t.register_query(QuerySpec::range(rect), &mut provider, now);
                    }
                    dead.retain(|&d| d != r.id);
                    live.push((r.id, rect));
                }
                Ev::Deregister { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (qid, _) = live.remove(pick % live.len());
                    assert!(server.deregister_query(qid), "was registered");
                    if let Some(t) = twin.as_mut() {
                        assert!(t.deregister_query(qid), "twin in lockstep");
                    }
                    dead.push(qid);
                }
                Ev::Move { obj, dx, dy } => {
                    let p = &mut positions[obj];
                    p.x = (p.x + dx).clamp(0.0, 1.0);
                    p.y = (p.y + dy).clamp(0.0, 1.0);
                    seqs[obj] += 1;
                    batch.push(SequencedUpdate {
                        id: ObjectId(obj as u32),
                        pos: *p,
                        seq: seqs[obj],
                    });
                }
            }
        }
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        if pipelined {
            let sync = |id: ObjectId| snapshot[id.index()];
            server.handle_sequenced_updates_parallel(&batch, &sync, now);
        } else {
            server.handle_sequenced_updates(&batch, &mut provider, now);
        }
        if let Some(t) = twin.as_mut() {
            t.handle_sequenced_updates(&batch, &mut provider, now);
        }
        // Updates may defer probes (the Slack scheme), leaving results
        // provisional until the deferral fires; drain them so the oracle
        // below compares against *exact* results. Time stays monotonic:
        // `now` only ever moves forward to the due times.
        for _ in 0..16 {
            let Some(due) = server.next_deferred_due() else { break };
            now = now.max(due);
            server.process_deferred(&mut provider, now);
        }
        if let Some(t) = twin.as_mut() {
            // In lockstep the twin's deferrals are the server's, so this
            // drain never advances `now` further.
            for _ in 0..16 {
                let Some(due) = t.next_deferred_due() else { break };
                now = now.max(due);
                t.process_deferred(&mut provider, now);
            }
        }

        if bi == restart_after {
            let before = server.state_digest();
            server.sync_wal();
            drop(server);
            let (recovered, _replayed) =
                ShardedServer::recover(cfg, 2).expect("recovery of a cleanly synced log");
            // The restart happens while the worker pool is live; recovery
            // starts a fresh pool so post-restart batches stay pipelined.
            server = if pipelined { recovered.with_threads(4) } else { recovered };
            assert_eq!(
                server.state_digest(),
                before,
                "recovered state diverged from the pre-restart server"
            );
        }

        server.check_invariants();
        if let Some(t) = twin.as_ref() {
            // Drained-queue equivalence: after every batch (and across the
            // mid-stream restart) the pipelined server's completed-operation
            // prefix is exactly the synchronous twin's state.
            assert_eq!(
                server.state_digest(),
                t.state_digest(),
                "pipelined state diverged from the synchronous twin at t={now}"
            );
        }
        // Dead queries stay dead — including across the restart, where a
        // naive slot decoder could resurrect a freed slot's last occupant.
        for &qid in &dead {
            assert!(server.results(qid).is_none(), "dead query {qid} resurrected");
        }
        for &(qid, rect) in &live {
            let expected: Vec<ObjectId> = (0..N_OBJECTS)
                .map(|i| ObjectId(i as u32))
                .filter(|o| rect.contains_point(positions[o.index()]))
                .collect();
            let mut got = server.results(qid).expect("live query answers").to_vec();
            got.sort_unstable();
            assert_eq!(got, expected, "results for {qid} diverged from oracle at t={now}");
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Query churn on a multi-shard server: slot reuse keeps dead queries
    /// dead and reused slots answer only their own predicate.
    #[test]
    fn sharded_query_churn_never_resurrects_dead_queries(
        n_shards in 2usize..=6,
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 1..10),
    ) {
        drive(n_shards, false, &seed_pts, &batches);
    }

    /// The same churn stream through the single-shard delegation path.
    #[test]
    fn single_shard_query_churn_never_resurrects_dead_queries(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 1..10),
    ) {
        drive(1, false, &seed_pts, &batches);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Churn through the *pipelined* front-end: persistent shard workers,
    /// ring submission, streaming merge — under the same oracles. Query
    /// registration mutates the processors between batches while the worker
    /// pool stays alive, so this also exercises shard hand-off churn.
    #[test]
    fn pipelined_query_churn_never_resurrects_dead_queries(
        n_shards in 2usize..=6,
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 1..10),
    ) {
        drive(n_shards, true, &seed_pts, &batches);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Churn + crash-recovery: generational slot keys never resurrect a
    /// dead query across a restart, and the recovered state is
    /// bit-identical to the server that went down.
    #[test]
    fn query_churn_survives_recovery(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 2..8),
    ) {
        drive_durable(false, &seed_pts, &batches);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Churn + mid-stream restart while the pipelined workers are live:
    /// partition records are appended on the worker threads, the server is
    /// dropped cold (draining the queues), and recovery must land on the
    /// completed-operation prefix — checked after every batch against a
    /// synchronous twin's digest.
    #[test]
    fn pipelined_query_churn_survives_recovery(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 2..8),
    ) {
        drive_durable(true, &seed_pts, &batches);
    }
}

/// Regression: a probe during a *later* query's registration reveals an
/// object's new position before the object's own report arrives. The
/// revelation must maintain the object's membership in *existing* queries
/// — otherwise the subsequent report is a no-move no-op (the probe already
/// advanced the known position past the old cell) and the stale result
/// sticks forever.
#[test]
fn registration_probe_maintains_existing_queries() {
    let cfg = ServerConfig { grid_m: 10, ..Default::default() };
    let mut s = Server::new(cfg);
    let pos0 = Point::new(0.6627, 0.2982);
    let pos1 = Point::new(0.7167, 0.3095);
    let mut p0 = FnProvider(|_id: ObjectId| pos0);
    s.add_object(ObjectId(0), pos0, &mut p0, 0.0).unwrap();
    // rect2 ~ [0.378,0.666]x[0.263,0.552]: contains pos0, not pos1.
    let rect2 = Rect::centered(
        Point::new(0.5220289215726522, 0.4077979850184952),
        0.14440198725406778,
        0.14440198725406778,
    );
    let q2 = s.register_query(QuerySpec::range(rect2), &mut p0, 0.4).id;
    assert_eq!(s.results(q2), Some(&[ObjectId(0)][..]));

    // The world moves; the report is still in flight when q3 registers and
    // its evaluation probes the object at the new position.
    let mut p1 = FnProvider(|_id: ObjectId| pos1);
    let rect3 = Rect::centered(
        Point::new(0.35197929094822367, 0.473441441763935),
        0.25322598081137027,
        0.25322598081137027,
    );
    let r3 = s.register_query(QuerySpec::range(rect3), &mut p1, 0.4);
    assert!(
        r3.changes.iter().any(|c| c.query == q2),
        "the revelation must surface q2's result change in the response"
    );
    assert_eq!(s.results(q2).map(<[ObjectId]>::to_vec), Some(vec![]), "q2 drops the mover");

    // The (now redundant) report must stay a no-op, not resurrect anything.
    s.handle_sequenced_updates(
        &[SequencedUpdate { id: ObjectId(0), pos: pos1, seq: 1 }],
        &mut p1,
        0.4,
    );
    assert_eq!(s.results(q2).map(<[ObjectId]>::to_vec), Some(vec![]));
    assert_eq!(s.results(r3.id).map(<[ObjectId]>::to_vec), Some(vec![]));
    s.check_invariants();
}
