//! Counting-allocator pin for the pipelined front-end: once capacities
//! have warmed up, a steady-state batch through the 4-shard / 4-worker
//! [`ShardedServer::handle_sequenced_updates_parallel_into`] path performs
//! **zero** heap allocations — across *every* thread, coordinator and
//! shard workers alike.
//!
//! Unlike `alloc_steady.rs` (whose counters are thread-local so parallel
//! test threads cannot pollute a measurement), this pin must observe the
//! worker threads, so its counter is a process-wide atomic. That is why it
//! lives in its own test binary with a single `#[test]`: cargo runs test
//! *binaries* sequentially, so nothing else allocates while the batches
//! are measured.

use srb_core::{
    FnProvider, ObjectId, QuerySpec, SequencedUpdate, ServerConfig, ShardedServer, TableProvider,
    UpdateResponse,
};
use srb_geom::{Point, Rect};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

/// Process-wide allocation count: workers allocate on their own threads,
/// so a thread-local counter would miss exactly the path under test.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; only bumps an atomic
// counter on the allocating entry points.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const N_OBJECTS: usize = 16;
const WARMUP_BATCHES: u64 = 48;
const MEASURED_BATCHES: u64 = 32;

/// Home position of object `i`: the center of a distinct grid cell
/// (`grid_m = 50` means 0.02-wide cells with centers at `0.01 + 0.02 k`),
/// so the ±0.003 jitter never crosses a cell boundary.
fn home(i: usize) -> Point {
    Point::new(0.01 + 0.02 * (2 * i) as f64, 0.01 + 0.02 * (2 * i + 1) as f64)
}

/// Position of object `i` in batch `b`: alternating jitter around home.
fn pos_at(i: usize, b: u64) -> Point {
    let h = home(i);
    let d = if b & 1 == 0 { 0.003 } else { -0.003 };
    Point::new(h.x + d, h.y - d)
}

fn batch(b: u64) -> Vec<SequencedUpdate> {
    (0..N_OBJECTS)
        .map(|i| SequencedUpdate { id: ObjectId(i as u32), pos: pos_at(i, b), seq: b + 1 })
        .collect()
}

#[test]
fn pipelined_steady_state_batches_do_not_allocate() {
    let mut server = ShardedServer::new(ServerConfig::default(), 4).with_threads(4);
    {
        let mut provider = FnProvider(|id: ObjectId| home(id.index()));
        for i in 0..N_OBJECTS {
            server.add_object(ObjectId(i as u32), home(i), &mut provider, 0.0).expect("fresh id");
        }
        // A query far from every object: present (so the query plane is
        // exercised) but never affected by the jitter.
        let far = Rect::new(Point::new(0.9, 0.9), Point::new(0.95, 0.95));
        server.register_query(QuerySpec::Range { rect: far }, &mut provider, 0.0);
    }

    // A snapshot provider: workers copy the table into their lent
    // buffers and answer probes locally, so the pin also covers the
    // snapshot-circulation path (clear + extend into warmed capacity).
    let positions: Vec<Point> = (0..N_OBJECTS).map(home).collect();
    let provider = TableProvider(&positions);

    let mut out: Vec<(ObjectId, UpdateResponse)> = Vec::new();
    // Warmup spawns the worker pool, resolves every metric slot, and
    // grows ring-slot buffers, partitions, and response chunks to their
    // steady-state capacities.
    for b in 0..WARMUP_BATCHES {
        out.clear();
        server.handle_sequenced_updates_parallel_into(&batch(b), &provider, b as f64, &mut out);
        assert_eq!(out.len(), N_OBJECTS, "every updater gets a response");
    }

    let before = allocs();
    for b in WARMUP_BATCHES..WARMUP_BATCHES + MEASURED_BATCHES {
        let updates = batch(b);
        let baseline = allocs();
        out.clear();
        server.handle_sequenced_updates_parallel_into(&updates, &provider, b as f64, &mut out);
        assert_eq!(allocs(), baseline, "batch {b} allocated on the pipelined steady-state path");
        assert_eq!(out.len(), N_OBJECTS);
    }
    // `batch()` itself allocates the update vector; everything else —
    // submission, worker processing, chunk streaming, merge — must not.
    let extra = allocs() - before - MEASURED_BATCHES;
    assert_eq!(extra, 0, "steady-state pipelined batch must be allocation-free");
}
