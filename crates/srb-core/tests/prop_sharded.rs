//! Property-based shard-equivalence tests: a `ShardedServer` with 1..=8
//! shards is driven through the same random sequenced-update stream as a
//! plain `Server` (same duplicates, replays, and unknown stragglers the
//! fault suite uses) and must agree with it.
//!
//! Agreement levels (see `DESIGN.md`, Architecture & sharding):
//!
//! - any shard count, range-only workload: *exact* equivalence — results,
//!   safe regions, last-known state, uplink/probe costs, and drop counters
//!   all match, because per-object decisions never depend on other objects;
//! - 1 shard, any workload: exact equivalence (pure delegation);
//! - many shards, kNN workloads: result equivalence (sequences for
//!   order-sensitive queries, sets otherwise); the coordinator may pay
//!   *extra* probes to separate cross-shard candidates, never fewer.

use proptest::prelude::*;
use srb_core::{
    FnProvider, ObjectId, QueryId, QuerySpec, SequencedUpdate, Server, ServerConfig, ShardedServer,
};
use srb_geom::{Point, Rect};

const N_OBJECTS: usize = 25;

#[derive(Clone, Debug)]
enum Q {
    Range { cx: f64, cy: f64, half: f64 },
    Knn { cx: f64, cy: f64, k: usize, ordered: bool },
}

impl Q {
    fn spec(&self) -> QuerySpec {
        match *self {
            Q::Range { cx, cy, half } => QuerySpec::range(
                Rect::centered(Point::new(cx, cy), half, half)
                    .intersection(&Rect::UNIT)
                    .unwrap_or(Rect::point(Point::new(cx.clamp(0.0, 1.0), cy.clamp(0.0, 1.0)))),
            ),
            Q::Knn { cx, cy, k, ordered } => {
                let c = Point::new(cx, cy);
                if ordered {
                    QuerySpec::knn(c, k)
                } else {
                    QuerySpec::knn_unordered(c, k)
                }
            }
        }
    }
}

fn arb_range() -> impl Strategy<Value = Q> {
    (0.0f64..1.0, 0.0f64..1.0, 0.01f64..0.25).prop_map(|(cx, cy, half)| Q::Range { cx, cy, half })
}

fn arb_query() -> impl Strategy<Value = Q> {
    prop_oneof![
        arb_range(),
        (0.0f64..1.0, 0.0f64..1.0, 1usize..5, any::<bool>())
            .prop_map(|(cx, cy, k, ordered)| Q::Knn { cx, cy, k, ordered }),
    ]
}

/// One client-side event in the update stream. `Fresh` advances the
/// object's sequence number; the fault variants replay old numbers or come
/// from an object the server never registered.
#[derive(Clone, Debug)]
enum Ev {
    Fresh { obj: usize, dx: f64, dy: f64 },
    Replay { obj: usize },
    Unknown { obj: usize },
}

fn arb_event() -> impl Strategy<Value = Ev> {
    // kind 0..6: fresh report; 6: replayed (stale) report; 7: straggler
    // from an object the server never registered.
    (0u8..8, 0usize..N_OBJECTS, -0.15f64..0.15, -0.15f64..0.15).prop_map(|(kind, obj, dx, dy)| {
        match kind {
            6 => Ev::Replay { obj },
            7 => Ev::Unknown { obj },
            _ => Ev::Fresh { obj, dx, dy },
        }
    })
}

/// The harness: registers the same objects and queries on a plain `Server`
/// and an `n_shards` `ShardedServer`, replays the same sequenced batches
/// into both, and checks the agreement level requested via `exact_costs`.
fn drive(
    n_shards: usize,
    seed_pts: &[(f64, f64)],
    queries: &[Q],
    batches: &[Vec<Ev>],
    exact_costs: bool,
) {
    let mut positions: Vec<Point> = (0..N_OBJECTS)
        .map(|i| {
            let (x, y) = seed_pts[i % seed_pts.len()];
            Point::new((x + i as f64 * 0.013).fract(), (y + i as f64 * 0.029).fract())
        })
        .collect();
    let cfg = ServerConfig { grid_m: 10, ..Default::default() };
    let mut plain = Server::new(cfg);
    let mut sharded = ShardedServer::new(cfg, n_shards);
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            plain.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            sharded.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
        for q in queries {
            let a = plain.register_query(q.spec(), &mut provider, 0.0);
            let b = sharded.register_query(q.spec(), &mut provider, 0.0);
            assert_eq!(a.id, b.id, "query allocators in lockstep");
        }
    }

    let mut seqs = [0u64; N_OBJECTS];
    let mut now = 0.0;
    for batch_events in batches {
        now += 0.1;
        // Materialize the event batch into one sequenced-update batch both
        // servers see verbatim (same duplicates, same stragglers).
        let mut batch: Vec<SequencedUpdate> = Vec::new();
        for ev in batch_events {
            match *ev {
                Ev::Fresh { obj, dx, dy } => {
                    let p = &mut positions[obj];
                    p.x = (p.x + dx).clamp(0.0, 1.0);
                    p.y = (p.y + dy).clamp(0.0, 1.0);
                    seqs[obj] += 1;
                    batch.push(SequencedUpdate {
                        id: ObjectId(obj as u32),
                        pos: *p,
                        seq: seqs[obj],
                    });
                }
                Ev::Replay { obj } => batch.push(SequencedUpdate {
                    id: ObjectId(obj as u32),
                    pos: positions[obj],
                    seq: seqs[obj], // stale: last accepted (or 0 = pre-registration)
                }),
                Ev::Unknown { obj } => batch.push(SequencedUpdate {
                    id: ObjectId((N_OBJECTS + obj) as u32),
                    pos: positions[obj],
                    seq: 1,
                }),
            }
        }
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index() % N_OBJECTS]);
        plain.handle_sequenced_updates(&batch, &mut provider, now);
        sharded.handle_sequenced_updates(&batch, &mut provider, now);
        plain.check_invariants_deep();
        sharded.check_invariants_deep();

        for (qi, q) in queries.iter().enumerate() {
            let qid = QueryId(qi as u32);
            let mut a = plain.results(qid).expect("registered").to_vec();
            let mut b = sharded.results(qid).expect("registered").to_vec();
            if !matches!(q.spec(), QuerySpec::Knn { order_sensitive: true, .. }) {
                a.sort_unstable();
                b.sort_unstable();
            }
            assert_eq!(
                a, b,
                "query {qid} ({:?}) diverged at t={now} with {n_shards} shards\nqueries: {queries:?}\nbatches: {batches:?}\nseed_pts: {seed_pts:?}",
                q.spec()
            );
        }
        if exact_costs {
            for i in 0..N_OBJECTS {
                let id = ObjectId(i as u32);
                assert_eq!(plain.safe_region(id), sharded.safe_region(id), "safe region {id}");
                assert_eq!(plain.last_known(id), sharded.last_known(id), "last known {id}");
            }
            assert_eq!(plain.costs(), sharded.costs(), "uplink/probe costs");
            let (pw, sw) = (plain.work(), sharded.work());
            assert_eq!(pw.stale_seq_drops, sw.stale_seq_drops, "stale drops");
            assert_eq!(pw.unknown_object_drops, sw.unknown_object_drops, "unknown drops");
            assert_eq!(pw.regrants, sw.regrants, "regrants");
        } else {
            // Uplinks are routed to exactly one shard, never duplicated,
            // and acceptance is a per-object sequence decision — so the
            // charged source updates (and fault counters) stay identical
            // even when coordinator kNN probes differ.
            assert_eq!(plain.costs().source_updates, sharded.costs().source_updates);
            let (pw, sw) = (plain.work(), sharded.work());
            assert_eq!(pw.stale_seq_drops, sw.stale_seq_drops, "stale drops");
            assert_eq!(pw.unknown_object_drops, sw.unknown_object_drops, "unknown drops");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Range-only workloads are *exactly* equivalent at any shard count:
    /// results, safe regions, costs, and fault counters all match.
    #[test]
    fn range_only_workloads_agree_exactly_at_any_shard_count(
        n_shards in 1usize..=8,
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        queries in prop::collection::vec(arb_range(), 1..5),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..10), 1..12),
    ) {
        drive(n_shards, &seed_pts, &queries, &batches, true);
    }

    /// One shard is pure delegation: exact equivalence for *any* workload,
    /// kNN included.
    #[test]
    fn one_shard_is_exactly_equivalent_for_mixed_workloads(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        queries in prop::collection::vec(arb_query(), 1..6),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..10), 1..12),
    ) {
        drive(1, &seed_pts, &queries, &batches, true);
    }

    /// Mixed workloads (kNN included) agree on every query result at any
    /// shard count; the coordinator may pay extra probes, never wrong
    /// answers.
    #[test]
    fn mixed_workloads_agree_on_results_at_any_shard_count(
        n_shards in 2usize..=8,
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        queries in prop::collection::vec(arb_query(), 1..6),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..10), 1..12),
    ) {
        drive(n_shards, &seed_pts, &queries, &batches, false);
    }
}
