//! Live-migration equivalence suite for the adaptive backend plane.
//!
//! A [`ShardedServer`] over [`DynBackend`] has its shards *explicitly
//! migrated between the R\*-tree and the uniform grid mid-stream* — under
//! the sequential path, the pipelined front-end, and across a durable
//! crash/recover boundary — while a never-migrated static twin consumes
//! the identical event stream. Migration swaps the cost structure of one
//! shard's object index and nothing else, so every registered query's
//! result set must stay identical to the twin's (and to a brute-force
//! oracle) after every batch.
//!
//! The deterministic tests at the bottom cover the *controller*: a
//! 4-shard adaptive engine with hand-placed mixed backends must trigger
//! at least one telemetry-driven migration and still answer bit-identically
//! to a static single-backend run, and a recovery replay must re-make the
//! controller's decisions at exactly the same batch boundaries
//! (state-digest equality across a mid-stream restart).

use proptest::prelude::*;
use srb_core::{
    AdaptiveConfig, BackendConfig, BackendKind, DurabilityConfig, DynBackend, FnProvider,
    GridConfig, ObjectId, QueryId, QuerySpec, RStarTree, RecoveryError, SequencedUpdate,
    ServerConfig, ShardedServer, SyncPolicy, TreeConfig,
};
use srb_geom::{Point, Rect};

const N_OBJECTS: usize = 16;

#[derive(Clone, Debug)]
enum Ev {
    /// Register a fresh range query (clamped to the unit square).
    Register { cx: f64, cy: f64, half: f64 },
    /// Move an object and have it report in this batch's sequenced updates.
    Move { obj: usize, dx: f64, dy: f64 },
    /// Explicitly live-migrate one shard of the dyn fleet.
    Flip { shard: usize, to_grid: bool, m: usize },
}

fn arb_event() -> impl Strategy<Value = Ev> {
    // kind 0..2: register; 2..5: flip; 5..10: move+report.
    (0u8..10, 0.0f64..1.0, 0.0f64..1.0, 0.02f64..0.3, 0usize..64, 4usize..32).prop_map(
        |(kind, cx, cy, half, pick, m)| match kind {
            0 | 1 => Ev::Register { cx, cy, half },
            2..=4 => Ev::Flip { shard: pick, to_grid: m % 2 == 0, m },
            _ => Ev::Move { obj: pick % N_OBJECTS, dx: (cx - 0.5) * 0.4, dy: (cy - 0.5) * 0.4 },
        },
    )
}

fn range_rect(cx: f64, cy: f64, half: f64) -> Rect {
    Rect::centered(Point::new(cx, cy), half, half)
        .intersection(&Rect::UNIT)
        .unwrap_or(Rect::point(Point::new(cx.clamp(0.0, 1.0), cy.clamp(0.0, 1.0))))
}

fn flip_target(to_grid: bool, m: usize) -> BackendConfig {
    if to_grid {
        BackendConfig::Grid(GridConfig { m })
    } else {
        BackendConfig::RStar(TreeConfig::default())
    }
}

fn seed_positions(seed_pts: &[(f64, f64)]) -> Vec<Point> {
    (0..N_OBJECTS)
        .map(|i| {
            let (x, y) = seed_pts[i % seed_pts.len()];
            Point::new((x + i as f64 * 0.013).fract(), (y + i as f64 * 0.029).fract())
        })
        .collect()
}

/// Drives the stream through a migrating `DynBackend` fleet and a static
/// R\*-tree twin. `pipelined` routes the dyn fleet's batches through the
/// persistent-worker front-end; the twin always takes the sequential path,
/// so this also pins "migration under live workers" against "no migration,
/// no workers".
fn drive(n_shards: usize, pipelined: bool, seed_pts: &[(f64, f64)], batches: &[Vec<Ev>]) {
    let mut positions = seed_positions(seed_pts);
    let cfg = ServerConfig { grid_m: 10, ..Default::default() };
    let mut dyn_fleet = ShardedServer::<DynBackend>::with_backend(cfg, n_shards)
        .with_threads(if pipelined { 4 } else { 1 });
    let mut twin = ShardedServer::new(cfg, n_shards);
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            dyn_fleet.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            twin.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
    }

    let mut live: Vec<(QueryId, Rect)> = Vec::new();
    let mut seqs = [0u64; N_OBJECTS];
    let mut now = 0.0;
    for batch_events in batches {
        now += 0.1;
        let mut batch: Vec<SequencedUpdate> = Vec::new();
        for ev in batch_events {
            match *ev {
                Ev::Register { cx, cy, half } => {
                    let rect = range_rect(cx, cy, half);
                    let snapshot = positions.clone();
                    let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
                    let a = dyn_fleet.register_query(QuerySpec::range(rect), &mut provider, now);
                    let b = twin.register_query(QuerySpec::range(rect), &mut provider, now);
                    assert_eq!(a.id, b.id, "query allocators in lockstep");
                    live.push((a.id, rect));
                }
                Ev::Flip { shard, to_grid, m } => {
                    // Migration between server calls is always legal: the
                    // worker pool only runs inside a batch.
                    assert!(
                        dyn_fleet.migrate_shard(shard % n_shards, &flip_target(to_grid, m)),
                        "explicit migration on a DynBackend shard must succeed"
                    );
                }
                Ev::Move { obj, dx, dy } => {
                    let p = &mut positions[obj];
                    p.x = (p.x + dx).clamp(0.0, 1.0);
                    p.y = (p.y + dy).clamp(0.0, 1.0);
                    seqs[obj] += 1;
                    batch.push(SequencedUpdate {
                        id: ObjectId(obj as u32),
                        pos: *p,
                        seq: seqs[obj],
                    });
                }
            }
        }
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        if pipelined {
            let sync = |id: ObjectId| snapshot[id.index()];
            dyn_fleet.handle_sequenced_updates_parallel(&batch, &sync, now);
        } else {
            dyn_fleet.handle_sequenced_updates(&batch, &mut provider, now);
        }
        twin.handle_sequenced_updates(&batch, &mut provider, now);
        dyn_fleet.check_invariants();
        twin.check_invariants();

        // Every live query answers identically on the migrating fleet, the
        // never-migrated twin, and the brute-force oracle.
        for &(qid, rect) in &live {
            let expected: Vec<ObjectId> = (0..N_OBJECTS)
                .map(|i| ObjectId(i as u32))
                .filter(|o| rect.contains_point(positions[o.index()]))
                .collect();
            let sort = |rs: &[ObjectId]| {
                let mut v = rs.to_vec();
                v.sort_unstable();
                v
            };
            let a = sort(dyn_fleet.results(qid).expect("live query answers"));
            let b = sort(twin.results(qid).expect("live query answers"));
            assert_eq!(a, expected, "migrating fleet diverged from oracle for {qid} at t={now}");
            assert_eq!(b, expected, "static twin diverged from oracle for {qid} at t={now}");
        }
    }
}

/// The same migrating stream on a *durable* dyn fleet with a restart in
/// the middle. Explicit migrations are not log records — they force a
/// checkpoint — so the recovered state must be bit-identical (state
/// digest) no matter how many flips preceded the crash.
fn drive_durable(pipelined: bool, seed_pts: &[(f64, f64)], batches: &[Vec<Ev>]) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir: &'static str = Box::leak(
        std::env::temp_dir()
            .join(format!(
                "srb-migrate-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ))
            .to_string_lossy()
            .into_owned()
            .into_boxed_str(),
    );
    let cfg = ServerConfig {
        grid_m: 10,
        durability: DurabilityConfig {
            dir: Some(dir),
            policy: SyncPolicy::GroupCommit,
            group_ops: 3,
            checkpoint_ops: 11,
        },
        ..Default::default()
    };

    let mut positions = seed_positions(seed_pts);
    let mut server = ShardedServer::<DynBackend>::with_backend(cfg, 2).with_threads(if pipelined {
        4
    } else {
        1
    });
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
    }

    let mut live: Vec<(QueryId, Rect)> = Vec::new();
    let mut seqs = [0u64; N_OBJECTS];
    let mut now = 0.0;
    let restart_after = batches.len() / 2;
    for (bi, batch_events) in batches.iter().enumerate() {
        now += 0.1;
        let mut batch: Vec<SequencedUpdate> = Vec::new();
        for ev in batch_events {
            match *ev {
                Ev::Register { cx, cy, half } => {
                    let rect = range_rect(cx, cy, half);
                    let snapshot = positions.clone();
                    let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
                    let r = server.register_query(QuerySpec::range(rect), &mut provider, now);
                    live.push((r.id, rect));
                }
                Ev::Flip { shard, to_grid, m } => {
                    assert!(server.migrate_shard(shard % 2, &flip_target(to_grid, m)));
                }
                Ev::Move { obj, dx, dy } => {
                    let p = &mut positions[obj];
                    p.x = (p.x + dx).clamp(0.0, 1.0);
                    p.y = (p.y + dy).clamp(0.0, 1.0);
                    seqs[obj] += 1;
                    batch.push(SequencedUpdate {
                        id: ObjectId(obj as u32),
                        pos: *p,
                        seq: seqs[obj],
                    });
                }
            }
        }
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        if pipelined {
            let sync = |id: ObjectId| snapshot[id.index()];
            server.handle_sequenced_updates_parallel(&batch, &sync, now);
        } else {
            server.handle_sequenced_updates(&batch, &mut provider, now);
        }
        for _ in 0..16 {
            let Some(due) = server.next_deferred_due() else { break };
            now = now.max(due);
            server.process_deferred(&mut provider, now);
        }

        if bi == restart_after {
            let before = server.state_digest();
            server.sync_wal();
            drop(server);
            let (recovered, _replayed) = ShardedServer::<DynBackend>::recover(cfg, 2)
                .expect("recovery of a cleanly synced log");
            server = if pipelined { recovered.with_threads(4) } else { recovered };
            assert_eq!(
                server.state_digest(),
                before,
                "recovered state diverged from the migrated pre-restart server"
            );
        }

        server.check_invariants();
        for &(qid, rect) in &live {
            let expected: Vec<ObjectId> = (0..N_OBJECTS)
                .map(|i| ObjectId(i as u32))
                .filter(|o| rect.contains_point(positions[o.index()]))
                .collect();
            let mut got = server.results(qid).expect("live query answers").to_vec();
            got.sort_unstable();
            assert_eq!(got, expected, "results for {qid} diverged from oracle at t={now}");
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Explicit mid-stream shard migrations never change any query result
    /// (sequential batches, 2–5 shards).
    #[test]
    fn migrating_fleet_matches_static_twin(
        n_shards in 2usize..=5,
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 1..10),
    ) {
        drive(n_shards, false, &seed_pts, &batches);
    }

    /// The same stream through the single-shard delegation path.
    #[test]
    fn single_shard_migration_is_transparent(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 1..10),
    ) {
        drive(1, false, &seed_pts, &batches);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Migration under the *pipelined* front-end: shards flip backends
    /// between batches while the persistent worker pool stays alive.
    #[test]
    fn pipelined_migrating_fleet_matches_static_twin(
        n_shards in 2usize..=5,
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 1..10),
    ) {
        drive(n_shards, true, &seed_pts, &batches);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Migration + crash/recovery: checkpoints forced by explicit
    /// migrations land the recovered fleet on a bit-identical state.
    #[test]
    fn migration_survives_recovery(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 2..8),
    ) {
        drive_durable(false, &seed_pts, &batches);
    }

    /// Migration + mid-stream restart while the pipelined workers are
    /// live.
    #[test]
    fn pipelined_migration_survives_recovery(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..12),
        batches in prop::collection::vec(prop::collection::vec(arb_event(), 1..8), 2..8),
    ) {
        drive_durable(true, &seed_pts, &batches);
    }
}

// ---------------------------------------------------------------------
// Deterministic controller tests
// ---------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// An aggressive controller: decide every batch, confirm on the first
/// vote, and treat anything above 12 objects as "dense". With 64 objects
/// on 4 shards every shard crosses the density threshold, so the
/// controller must migrate the tree shards to the grid on the very first
/// decision boundary.
fn aggressive() -> AdaptiveConfig {
    AdaptiveConfig {
        decision_every: 1,
        dense_above: 12,
        sparse_below: 2,
        confirm: 1,
        ..Default::default()
    }
}

/// The headline acceptance scenario: a 4-shard adaptive fleet with
/// hand-placed *mixed* per-shard backends (shards 1 and 3 start on the
/// grid, 0 and 2 on the tree) and at least one controller-triggered live
/// migration answers every query bit-identically to a static
/// single-backend run and to a brute-force oracle.
#[test]
fn mixed_backend_adaptive_fleet_matches_static_run() {
    const N: usize = 64;
    let mut rng = 0x5eed_u64;
    let mut positions: Vec<Point> =
        (0..N).map(|_| Point::new(unit(&mut rng), unit(&mut rng))).collect();

    let adaptive_cfg = ServerConfig {
        grid_m: 10,
        backend: BackendConfig::Adaptive(aggressive()),
        ..Default::default()
    };
    let static_cfg = ServerConfig { grid_m: 10, ..Default::default() };
    let mut fleet = ShardedServer::<DynBackend>::with_backend(adaptive_cfg, 4);
    let mut twin = ShardedServer::new(static_cfg, 4);
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            fleet.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            twin.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
    }
    // Hand-place mixed backends: the controller starts every shard on the
    // tree; flip two of the four to the grid before any batch runs.
    for shard in [1usize, 3] {
        assert!(fleet.migrate_shard(shard, &BackendConfig::Grid(GridConfig::default())));
    }

    // A 3x3 lattice of range queries plus two kNN queries.
    let mut queries: Vec<(QueryId, Option<Rect>)> = Vec::new();
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for gx in 0..3 {
            for gy in 0..3 {
                let rect = range_rect(0.17 + gx as f64 * 0.33, 0.17 + gy as f64 * 0.33, 0.16);
                let a = fleet.register_query(QuerySpec::range(rect), &mut provider, 0.0);
                let b = twin.register_query(QuerySpec::range(rect), &mut provider, 0.0);
                assert_eq!(a.id, b.id);
                assert_eq!(a.results, b.results, "registration results diverged");
                queries.push((a.id, Some(rect)));
            }
        }
        for &(x, y, k) in &[(0.2, 0.8, 3usize), (0.7, 0.3, 5)] {
            let spec = QuerySpec::knn(Point::new(x, y), k);
            let a = fleet.register_query(spec, &mut provider, 0.0);
            let b = twin.register_query(spec, &mut provider, 0.0);
            assert_eq!(a.id, b.id);
            assert_eq!(a.results, b.results, "kNN registration results diverged");
            queries.push((a.id, None));
        }
    }

    let mut seqs = vec![0u64; N];
    let mut now = 0.0;
    for _batch in 0..12 {
        now += 0.1;
        let mut batch: Vec<SequencedUpdate> = Vec::new();
        for obj in 0..N {
            if splitmix64(&mut rng).is_multiple_of(3) {
                let p = &mut positions[obj];
                p.x = (p.x + (unit(&mut rng) - 0.5) * 0.2).clamp(0.0, 1.0);
                p.y = (p.y + (unit(&mut rng) - 0.5) * 0.2).clamp(0.0, 1.0);
                seqs[obj] += 1;
                batch.push(SequencedUpdate { id: ObjectId(obj as u32), pos: *p, seq: seqs[obj] });
            }
        }
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        fleet.handle_sequenced_updates(&batch, &mut provider, now);
        twin.handle_sequenced_updates(&batch, &mut provider, now);
        fleet.check_invariants();
        twin.check_invariants();

        for &(qid, rect) in &queries {
            let sort = |rs: &[ObjectId]| {
                let mut v = rs.to_vec();
                v.sort_unstable();
                v
            };
            let a = sort(fleet.results(qid).expect("live query answers"));
            let b = sort(twin.results(qid).expect("live query answers"));
            assert_eq!(a, b, "adaptive fleet diverged from the static twin for {qid} at t={now}");
            if let Some(rect) = rect {
                let expected: Vec<ObjectId> = (0..N)
                    .map(|i| ObjectId(i as u32))
                    .filter(|o| rect.contains_point(positions[o.index()]))
                    .collect();
                assert_eq!(a, expected, "range results diverged from the oracle for {qid}");
            }
        }
    }

    // Every shard holds ~16 > 12 objects, so the two tree shards must have
    // been migrated to the grid by the controller (the two hand-placed
    // grid shards need no migration — their density agrees with their
    // structure, which also exercises the "desired == current" hold path).
    assert!(
        fleet.adaptive_migrations() >= 1,
        "the controller never migrated a shard (got {})",
        fleet.adaptive_migrations()
    );
    // The hand-placed grids came up at the default resolution (64), far
    // from the density-ideal one for ~16 objects, so the controller must
    // also have retuned at least one grid.
    assert!(
        fleet.adaptive_retunes() >= 1,
        "the controller never retuned a grid (got {})",
        fleet.adaptive_retunes()
    );
}

/// Controller decisions must *replay*: the controller runs inside the
/// logged-operation recursion (before the batch marker commits), so a
/// recovery that re-drives the log re-makes every migrate/retune decision
/// at the same batch boundary — the recovered digest is bit-identical
/// even though migrations themselves are never logged.
#[test]
fn adaptive_controller_decisions_replay_identically() {
    let dir: &'static str = Box::leak(
        std::env::temp_dir()
            .join(format!("srb-adaptive-replay-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
            .into_boxed_str(),
    );
    let _ = std::fs::remove_dir_all(dir);
    let cfg = ServerConfig {
        grid_m: 10,
        backend: BackendConfig::Adaptive(aggressive()),
        durability: DurabilityConfig {
            dir: Some(dir),
            policy: SyncPolicy::GroupCommit,
            group_ops: 3,
            checkpoint_ops: 7,
        },
        ..Default::default()
    };

    const N: usize = 48;
    let mut rng = 0xfeed_u64;
    let mut positions: Vec<Point> =
        (0..N).map(|_| Point::new(unit(&mut rng), unit(&mut rng))).collect();
    let cfg = ServerConfig {
        // Hash sharding splits 48 objects unevenly; drop the density
        // threshold so even the lightest shard crosses it and all three
        // must migrate.
        backend: BackendConfig::Adaptive(AdaptiveConfig { dense_above: 4, ..aggressive() }),
        ..cfg
    };
    let mut server = ShardedServer::<DynBackend>::with_backend(cfg, 3);
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
        let rect = range_rect(0.5, 0.5, 0.25);
        server.register_query(QuerySpec::range(rect), &mut provider, 0.0);
    }

    let mut seqs = vec![0u64; N];
    let mut now = 0.0;
    for batch_i in 0..8 {
        now += 0.1;
        let mut batch: Vec<SequencedUpdate> = Vec::new();
        for obj in 0..N {
            if splitmix64(&mut rng).is_multiple_of(2) {
                let p = &mut positions[obj];
                p.x = (p.x + (unit(&mut rng) - 0.5) * 0.15).clamp(0.0, 1.0);
                p.y = (p.y + (unit(&mut rng) - 0.5) * 0.15).clamp(0.0, 1.0);
                seqs[obj] += 1;
                batch.push(SequencedUpdate { id: ObjectId(obj as u32), pos: *p, seq: seqs[obj] });
            }
        }
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        server.handle_sequenced_updates(&batch, &mut provider, now);

        if batch_i == 4 {
            // By now the controller has migrated all three shards (density
            // 16 > 12 from batch one) and retuned their grids at least
            // once; the restart must land on the identical state.
            let migrations = server.adaptive_migrations();
            let retunes = server.adaptive_retunes();
            assert!(migrations >= 3, "expected all shards migrated, got {migrations}");
            assert!(retunes >= 1, "expected at least one retune, got {retunes}");
            let before = server.state_digest();
            server.sync_wal();
            drop(server);
            let (recovered, _replayed) = ShardedServer::<DynBackend>::recover(cfg, 3)
                .expect("recovery of a cleanly synced adaptive log");
            server = recovered;
            assert_eq!(
                server.state_digest(),
                before,
                "controller decisions did not replay identically"
            );
            assert_eq!(server.adaptive_migrations(), migrations, "migration count lost");
            assert_eq!(server.adaptive_retunes(), retunes, "retune count lost");
        }
    }
    server.check_invariants();
    let _ = std::fs::remove_dir_all(dir);
}

/// Recovery refuses a checkpoint whose per-shard backend kind the
/// recovering engine cannot hold — and the `DynBackend` +
/// `migrate_shard` path is the sanctioned way out.
#[test]
fn recovery_refuses_backend_kind_mismatch() {
    let dir: &'static str = Box::leak(
        std::env::temp_dir()
            .join(format!("srb-kind-mismatch-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
            .into_boxed_str(),
    );
    let _ = std::fs::remove_dir_all(dir);
    let cfg = ServerConfig {
        grid_m: 10,
        durability: DurabilityConfig {
            dir: Some(dir),
            policy: SyncPolicy::Always,
            group_ops: 1,
            checkpoint_ops: 0,
        },
        ..Default::default()
    };

    let mut rng = 0xabcd_u64;
    let positions: Vec<Point> =
        (0..8).map(|_| Point::new(unit(&mut rng), unit(&mut rng))).collect();
    {
        let mut server = ShardedServer::<DynBackend>::with_backend(cfg, 2);
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
        // Shard 0 goes to the grid; the forced checkpoint stamps its kind.
        assert!(server.migrate_shard(0, &BackendConfig::Grid(GridConfig::default())));
        server.sync_wal();
    }

    // A monomorphized R*-tree engine must refuse the grid shard...
    let err = ShardedServer::<RStarTree>::recover(cfg, 2)
        .err()
        .expect("an R*-tree engine must refuse a grid checkpoint");
    match err {
        RecoveryError::BackendMismatch { found, recovering } => {
            assert_eq!(found, "grid");
            assert_eq!(recovering, "rstar");
        }
        other => panic!("expected BackendMismatch, got {other:?}"),
    }
    // ...while the dyn engine holds any kind and can migrate explicitly
    // after recovery (the sanctioned mismatch escape hatch).
    let (mut server, _) =
        ShardedServer::<DynBackend>::recover(cfg, 2).expect("dyn engine accepts every kind");
    assert_eq!(server.object_count(), 8);
    assert!(server.migrate_shard(0, &BackendConfig::RStar(TreeConfig::default())));
    server.check_invariants();
    let _ = std::fs::remove_dir_all(dir);
}

/// `BackendKind` labels and tags round-trip — the mismatch error message
/// depends on them.
#[test]
fn backend_kind_round_trips() {
    for kind in [BackendKind::RStar, BackendKind::Grid] {
        assert_eq!(BackendKind::from_tag(kind.tag()), Some(kind));
    }
    assert_eq!(BackendKind::from_tag(9), None);
}
