//! Property-based end-to-end test: random query mixes, random motion, exact
//! monitoring. A lighter-weight companion to `server_oracle.rs` that lets
//! proptest explore query geometry and k values adversarially.

use proptest::prelude::*;
use srb_core::{FnProvider, ObjectId, QuerySpec, Server, ServerConfig};
use srb_geom::{Point, Rect};

#[derive(Clone, Debug)]
enum Q {
    Range { cx: f64, cy: f64, half: f64 },
    Knn { cx: f64, cy: f64, k: usize, ordered: bool },
}

fn arb_query() -> impl Strategy<Value = Q> {
    prop_oneof![
        (0.0f64..1.0, 0.0f64..1.0, 0.005f64..0.2).prop_map(|(cx, cy, half)| Q::Range {
            cx,
            cy,
            half
        }),
        (0.0f64..1.0, 0.0f64..1.0, 1usize..6, any::<bool>())
            .prop_map(|(cx, cy, k, ordered)| Q::Knn { cx, cy, k, ordered }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_queries_random_motion_exact_monitoring(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 20..60),
        queries in prop::collection::vec(arb_query(), 1..8),
        moves in prop::collection::vec((0usize..60, -0.08f64..0.08, -0.08f64..0.08), 0..150),
        grid_m in prop::sample::select(vec![5usize, 20, 50]),
        // Moves are up to ±0.08 per axis per 0.1 time units, i.e. speeds up
        // to ~1.14; V must be a true upper bound for §6.1 to be sound.
        max_speed in prop::option::of(Just(1.2f64)),
    ) {
        let mut positions: Vec<Point> =
            seed_pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let n = positions.len();
        let cfg = ServerConfig { grid_m, max_speed, ..Default::default() };
        let mut server = Server::new(cfg);
        {
            let ps = positions.clone();
            let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
            for (i, &p) in positions.iter().enumerate() {
                server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).expect("fresh id");
            }
        }
        let mut qids = Vec::new();
        {
            let ps = positions.clone();
            let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
            for q in &queries {
                let spec = match *q {
                    Q::Range { cx, cy, half } => QuerySpec::range(
                        Rect::centered(Point::new(cx, cy), half, half)
                            .intersection(&Rect::UNIT)
                            .unwrap_or(Rect::point(Point::new(cx.clamp(0.0,1.0), cy.clamp(0.0,1.0)))),
                    ),
                    Q::Knn { cx, cy, k, ordered } => {
                        let c = Point::new(cx, cy);
                        if ordered { QuerySpec::knn(c, k) } else { QuerySpec::knn_unordered(c, k) }
                    }
                };
                qids.push((server.register_query(spec, &mut provider, 0.0).id, spec));
            }
        }

        let mut now = 0.0;
        for &(raw_i, dx, dy) in &moves {
            now += 0.1;
            {
                let ps = positions.clone();
                let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
                server.process_deferred(&mut provider, now);
            }
            let i = raw_i % n;
            let p = positions[i];
            positions[i] = Point::new((p.x + dx).clamp(0.0, 1.0), (p.y + dy).clamp(0.0, 1.0));
            let oid = ObjectId(i as u32);
            let sr = server.safe_region(oid).unwrap();
            if !sr.contains_point(positions[i]) {
                let ps = positions.clone();
                let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
                server
                    .handle_location_update(oid, positions[i], &mut provider, now)
                    .expect("registered object");
            }
            // Verify every query against brute force.
            for &(qid, spec) in &qids {
                let got = server.results(qid).unwrap().to_vec();
                match spec {
                    QuerySpec::Range { rect } => {
                        let mut g = got.clone();
                        g.sort_unstable();
                        let mut want: Vec<ObjectId> = (0..n as u32)
                            .map(ObjectId)
                            .filter(|o| rect.contains_point(positions[o.index()]))
                            .collect();
                        want.sort_unstable();
                        prop_assert_eq!(g, want, "range {:?}", rect);
                    }
                    QuerySpec::Knn { center, k, .. } => {
                        // Equidistant objects make the id-level answer
                        // ambiguous; compare the distance sequences, which
                        // are unique.
                        let mut all: Vec<f64> =
                            positions.iter().map(|p| p.dist(center)).collect();
                        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        let want: Vec<f64> = all.into_iter().take(k).collect();
                        let mut got_d: Vec<f64> = got
                            .iter()
                            .map(|o| positions[o.index()].dist(center))
                            .collect();
                        got_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        prop_assert_eq!(got_d.len(), want.len(), "knn at {:?}", center);
                        for (g, w) in got_d.iter().zip(want.iter()) {
                            prop_assert!((g - w).abs() < 1e-9, "knn at {:?}: {} vs {}", center, g, w);
                        }
                    }
                }
            }
        }
        server.check_invariants();
    }
}
