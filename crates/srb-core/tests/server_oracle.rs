//! End-to-end correctness of the SRB framework against a brute-force oracle.
//!
//! This is the paper's central claim (§1): *as long as every client reports
//! when it leaves its safe region, every registered query's monitored result
//! is exact at all times*. We simulate clients faithfully (report exactly
//! when outside the safe region, answer probes with true positions) and
//! compare the server's result sets against brute-force recomputation after
//! every step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srb_core::{FnProvider, ObjectId, Quarantine, QueryId, QuerySpec, Server, ServerConfig};
use srb_geom::{Point, Rect};

struct World {
    positions: Vec<Point>,
}

impl World {
    fn brute_range(&self, rect: &Rect) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = (0..self.positions.len() as u32)
            .map(ObjectId)
            .filter(|o| rect.contains_point(self.positions[o.index()]))
            .collect();
        v.sort_unstable();
        v
    }

    fn brute_knn(&self, q: Point, k: usize) -> Vec<ObjectId> {
        let mut v: Vec<(f64, ObjectId)> = self
            .positions
            .iter()
            .enumerate()
            .map(|(i, p)| (p.dist(q), ObjectId(i as u32)))
            .collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        v.into_iter().take(k).map(|(_, o)| o).collect()
    }
}

struct Workload {
    ranges: Vec<(QueryId, Rect)>,
    knns: Vec<(QueryId, Point, usize, bool)>, // (id, center, k, order_sensitive)
}

fn setup(seed: u64, n: usize, config: ServerConfig) -> (World, Server, Workload, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut world = World { positions: Vec::new() };
    for _ in 0..n {
        world.positions.push(Point::new(rng.gen::<f64>(), rng.gen::<f64>()));
    }
    let mut server = Server::new(config);
    {
        let positions = world.positions.clone();
        let mut provider = FnProvider(move |id: ObjectId| positions[id.index()]);
        for i in 0..n {
            server
                .add_object(ObjectId(i as u32), world.positions[i], &mut provider, 0.0)
                .expect("fresh id");
        }
    }
    let mut ranges = Vec::new();
    let mut knns = Vec::new();
    {
        let positions = world.positions.clone();
        let mut provider = FnProvider(move |id: ObjectId| positions[id.index()]);
        for i in 0..6 {
            let c = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            let half = 0.02 + 0.05 * rng.gen::<f64>();
            let rect = Rect::centered(c, half, half).intersection(&Rect::UNIT).unwrap();
            let resp = server.register_query(QuerySpec::range(rect), &mut provider, 0.0);
            ranges.push((resp.id, rect));
            let qp = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            let k = 1 + (i % 5);
            let order_sensitive = i % 2 == 0;
            let spec = if order_sensitive {
                QuerySpec::knn(qp, k)
            } else {
                QuerySpec::knn_unordered(qp, k)
            };
            let resp = server.register_query(spec, &mut provider, 0.0);
            knns.push((resp.id, qp, k, order_sensitive));
        }
    }
    (world, server, Workload { ranges, knns }, rng)
}

fn check_all(world: &World, server: &Server, wl: &Workload, step: usize) {
    for &(qid, rect) in &wl.ranges {
        let mut got = server.results(qid).unwrap().to_vec();
        got.sort_unstable();
        let want = world.brute_range(&rect);
        assert_eq!(got, want, "range {qid} wrong at step {step}");
    }
    for &(qid, center, k, order_sensitive) in &wl.knns {
        let got = server.results(qid).unwrap().to_vec();
        let want = world.brute_knn(center, k);
        if order_sensitive {
            assert_eq!(got, want, "ordered kNN {qid} wrong at step {step}");
        } else {
            let mut g = got.clone();
            let mut w = want.clone();
            g.sort_unstable();
            w.sort_unstable();
            assert_eq!(g, w, "unordered kNN {qid} wrong at step {step}");
        }
        // Quarantine invariants: results inside, non-results outside.
        if let Some(Quarantine::Circle(c)) = server.quarantine(qid) {
            for (i, p) in world.positions.iter().enumerate() {
                let oid = ObjectId(i as u32);
                let inside = c.contains(*p);
                let is_result = got.contains(&oid);
                if is_result {
                    assert!(inside, "result {oid} outside quarantine of {qid} at step {step}");
                } else {
                    assert!(
                        !inside || !order_sensitive,
                        "non-result {oid} inside quarantine of {qid} at step {step}"
                    );
                }
            }
        }
    }
}

fn run_protocol(seed: u64, config: ServerConfig, steps: usize, max_step: f64) {
    let n = 120;
    let (mut world, mut server, wl, mut rng) = setup(seed, n, config);
    check_all(&world, &server, &wl, 0);
    for step in 1..=steps {
        // Move objects one at a time at strictly increasing micro-instants
        // and let each report immediately when it finds itself outside its
        // safe region. This respects the paper's §3 sequential-processing
        // assumption, and the micro-times keep the discrete jumps honest
        // with respect to the configured maximum speed (an object's jump of
        // up to `max_step` happens over 1/n of a time unit, so callers must
        // configure `max_speed >= n * max_step`).
        for i in 0..n {
            let now = (step - 1) as f64 + (i + 1) as f64 / n as f64;
            // Fire deferred probes that came due before this instant.
            {
                let positions = world.positions.clone();
                let mut provider = FnProvider(move |id: ObjectId| positions[id.index()]);
                server.process_deferred(&mut provider, now);
            }
            let dx = (rng.gen::<f64>() - 0.5) * 2.0 * max_step / 2f64.sqrt();
            let dy = (rng.gen::<f64>() - 0.5) * 2.0 * max_step / 2f64.sqrt();
            let p = world.positions[i];
            world.positions[i] = Point::new((p.x + dx).clamp(0.0, 1.0), (p.y + dy).clamp(0.0, 1.0));
            let oid = ObjectId(i as u32);
            let sr = server.safe_region(oid).unwrap();
            let pos = world.positions[i];
            if !sr.contains_point(pos) {
                let positions = world.positions.clone();
                let mut provider = FnProvider(move |id: ObjectId| positions[id.index()]);
                let resp = server
                    .handle_location_update(oid, pos, &mut provider, now)
                    .expect("registered object");
                assert!(
                    resp.safe_region.contains_point(pos),
                    "new safe region excludes the reporter at step {step}"
                );
            }
        }
        check_all(&world, &server, &wl, step);
        if step % 25 == 0 {
            server.check_invariants();
        }
    }
    // The protocol must actually exercise the machinery.
    let costs = server.costs();
    assert!(costs.source_updates > 0, "no source updates happened");
}

#[test]
fn oracle_default_config() {
    run_protocol(42, ServerConfig::default(), 150, 0.02);
}

#[test]
fn oracle_with_reachability() {
    // V must truly bound the jump speed: max_step over 1/n of a time unit.
    let cfg = ServerConfig { max_speed: Some(0.02 * 121.0), ..Default::default() };
    run_protocol(7, cfg, 150, 0.02);
}

#[test]
fn oracle_with_weighted_perimeter() {
    let cfg = ServerConfig { steadiness: Some(0.5), ..Default::default() };
    run_protocol(13, cfg, 150, 0.02);
}

#[test]
fn oracle_with_both_enhancements() {
    let cfg = ServerConfig::enhanced(0.05 * 121.0, 0.8);
    run_protocol(99, cfg, 120, 0.05);
}

#[test]
fn oracle_coarse_grid() {
    let cfg = ServerConfig { grid_m: 5, ..Default::default() };
    run_protocol(5, cfg, 100, 0.03);
}

#[test]
fn oracle_fine_grid() {
    let cfg = ServerConfig { grid_m: 100, ..Default::default() };
    run_protocol(11, cfg, 80, 0.02);
}

#[test]
fn oracle_large_steps() {
    // Objects teleport far each step — stresses reinsertion paths and
    // cross-cell updates.
    run_protocol(3, ServerConfig::default(), 60, 0.3);
}

#[test]
fn deregistered_query_stops_constraining() {
    let (world, mut server, wl, _rng) = setup(21, 50, ServerConfig::default());
    let (qid, _, _, _) = wl.knns[0];
    assert!(server.deregister_query(qid));
    assert!(!server.deregister_query(qid), "double deregister must fail");
    assert!(server.results(qid).is_none());
    // Remaining queries still fine.
    for &(rid, rect) in &wl.ranges {
        let mut got = server.results(rid).unwrap().to_vec();
        got.sort_unstable();
        assert_eq!(got, world.brute_range(&rect));
    }
}

#[test]
fn probes_are_lazy_far_objects_never_probed() {
    // Objects strung out along a line, one per grid cell. A 2NN query at the
    // left end must only ever probe objects near the decision boundary —
    // the lazy-probe discipline of §4.2 guarantees the tail is untouched.
    use std::cell::RefCell;
    let mut server = Server::with_defaults();
    let positions: Vec<Point> =
        (0..18).map(|i| Point::new(0.05 + 0.05 * (i as f64), 0.51)).collect();
    let probed: RefCell<Vec<u32>> = RefCell::new(Vec::new());
    {
        let ps = positions.clone();
        let pr = &probed;
        let mut provider = FnProvider(move |id: ObjectId| {
            pr.borrow_mut().push(id.0);
            ps[id.index()]
        });
        for i in 0..18u32 {
            server
                .add_object(ObjectId(i), positions[i as usize], &mut provider, 0.0)
                .expect("fresh id");
        }
        probed.borrow_mut().clear();
        let resp =
            server.register_query(QuerySpec::knn(Point::new(0.0, 0.51), 2), &mut provider, 0.0);
        assert_eq!(resp.results, vec![ObjectId(0), ObjectId(1)]);
    }
    let probed = probed.into_inner();
    assert!(
        probed.iter().all(|&id| id <= 3),
        "lazy probing must not touch far objects, probed: {probed:?}"
    );
}

#[test]
fn object_churn() {
    // Adding and removing objects keeps results correct (extension).
    let (mut world, mut server, wl, mut rng) = setup(77, 60, ServerConfig::default());
    for step in 1..=30 {
        let now = step as f64;
        // Add one object.
        let id = ObjectId(world.positions.len() as u32);
        let p = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
        world.positions.push(p);
        {
            let ps = world.positions.clone();
            let mut provider = FnProvider(move |i: ObjectId| ps[i.index()]);
            server.add_object(id, p, &mut provider, now).expect("fresh id");
        }
        check_all(&world, &server, &wl, step);
    }
    server.check_invariants();
}
