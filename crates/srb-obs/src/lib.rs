//! # srb-obs
//!
//! Lightweight, deterministic telemetry for the SRB monitoring framework:
//! atomic [`Counter`]s and [`Gauge`]s, fixed-bucket log2 [`Histogram`]s,
//! scoped [`SpanGuard`] timers with thread-local nesting, and a global
//! labeled [`Registry`] with JSON and table exporters ([`Snapshot`]).
//!
//! Two independent off-switches guarantee the telemetry can never perturb
//! an experiment:
//!
//! 1. **Compile time** — the `obs` cargo feature (on by default). With the
//!    feature off every type in this crate is an inert zero-sized stub with
//!    the identical API, so instrumented crates build unchanged and carry
//!    no telemetry code at all.
//! 2. **Run time** — a [`Recorder`] strategy behind an atomic mode switch
//!    ([`set_enabled`], [`set_recorder`]). The default
//!    [`AggregatingRecorder`] folds events into the registry's atomics; the
//!    [`NoopRecorder`] discards them. Because telemetry only ever *reads*
//!    simulation state (it never feeds a measurement back into a decision),
//!    swapping recorders cannot change any figure — the golden-metrics
//!    tests pin this bit-identically.
//!
//! Hot-path discipline: call sites resolve their handle once through the
//! [`counter!`]/[`gauge!`]/[`histogram!`]/[`span!`] macros (a `OnceLock`
//! deref afterwards), and a recorded event is one relaxed atomic RMW.
//! Tight loops should accumulate locally and publish one `add` at the end
//! — see `RStarTree::search` in `srb-index` for the pattern.
//!
//! ```
//! srb_obs::counter!("doc.connects").inc();
//! {
//!     let _guard = srb_obs::span!("doc.handshake");
//!     srb_obs::histogram!("doc.payload_bytes").record(512);
//! } // span closes here
//! let snap = srb_obs::registry().snapshot();
//! println!("{}", snap.to_table());
//! # if srb_obs::compiled() {
//! assert_eq!(snap.counters["doc.connects"], 1);
//! # }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

#[cfg(feature = "obs")]
mod imp;
#[cfg(feature = "obs")]
pub use imp::{
    enabled, registry, set_enabled, set_recorder, timing_enabled, AggregatingRecorder, Counter,
    Gauge, Histogram, NoopRecorder, Recorder, Registry, SpanGuard, SpanStats, Stopwatch,
};

#[cfg(not(feature = "obs"))]
mod stub;
#[cfg(not(feature = "obs"))]
pub use stub::{
    enabled, registry, set_enabled, set_recorder, timing_enabled, AggregatingRecorder, Counter,
    Gauge, Histogram, NoopRecorder, Recorder, Registry, SpanGuard, SpanStats, Stopwatch,
};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i >= 1` holds
/// values whose highest set bit is `i - 1` (i.e. `[2^(i-1), 2^i)`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// True when the crate was compiled with the `obs` feature — i.e. whether
/// recorded events can be observed at all.
pub const fn compiled() -> bool {
    cfg!(feature = "obs")
}

/// The lower bound of histogram bucket `i` (see [`HISTOGRAM_BUCKETS`]).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

// ---------------------------------------------------------------------
// Snapshots (shared between the real and stub builds)
// ---------------------------------------------------------------------

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of one span timer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of closed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across closed spans (children included).
    pub total_ns: u64,
    /// Nanoseconds spent in the span itself, child spans excluded.
    pub self_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time copy of every metric in the [`Registry`], suitable for
/// diffing, JSON export, and human-readable tables. With the `obs` feature
/// off, snapshots are always empty.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Log2 histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timers by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// True when no metric recorded any activity.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// The change from `earlier` to `self`: counter/histogram/span totals
    /// are subtracted (saturating), gauges keep their current value.
    /// Entries with no activity in the interval are omitted.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(earlier.counters.get(name).copied().unwrap_or(0));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        out.gauges = self.gauges.clone();
        for (name, h) in &self.histograms {
            let base = earlier.histograms.get(name);
            let count = h.count.saturating_sub(base.map_or(0, |b| b.count));
            if count == 0 {
                continue;
            }
            let mut buckets = Vec::new();
            for &(lo, n) in &h.buckets {
                let prev = base
                    .and_then(|b| b.buckets.iter().find(|&&(plo, _)| plo == lo))
                    .map_or(0, |&(_, n)| n);
                let d = n.saturating_sub(prev);
                if d > 0 {
                    buckets.push((lo, d));
                }
            }
            out.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    count,
                    sum: h.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                    max: h.max,
                    buckets,
                },
            );
        }
        for (name, s) in &self.spans {
            let base = earlier.spans.get(name).copied().unwrap_or_default();
            let count = s.count.saturating_sub(base.count);
            if count == 0 {
                continue;
            }
            out.spans.insert(
                name.clone(),
                SpanSnapshot {
                    count,
                    total_ns: s.total_ns.saturating_sub(base.total_ns),
                    self_ns: s.self_ns.saturating_sub(base.self_ns),
                    max_ns: s.max_ns,
                },
            );
        }
        out
    }

    /// Serializes the snapshot as a single compact JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        s.push_str("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", json_str(name));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", json_str(name));
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                json_str(name),
                h.count,
                h.sum,
                h.max
            );
            for (j, &(lo, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{lo},{n}]");
            }
            s.push_str("]}");
        }
        s.push_str("},\"spans\":{");
        for (i, (name, sp)) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"total_ns\":{},\"self_ns\":{},\"max_ns\":{}}}",
                json_str(name),
                sp.count,
                sp.total_ns,
                sp.self_ns,
                sp.max_ns
            );
        }
        s.push_str("}}");
        s
    }

    /// Renders the snapshot as a human-readable table.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            s.push_str("counters / gauges\n");
            for (name, v) in &self.counters {
                let _ = writeln!(s, "  {name:<44} {v:>14}");
            }
            for (name, v) in &self.gauges {
                let _ = writeln!(s, "  {name:<44} {v:>14} (gauge)");
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("histograms (log2 buckets)\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    s,
                    "  {name:<44} count={:<10} mean={:<10.1} max={}",
                    h.count,
                    h.mean(),
                    h.max
                );
                for &(lo, n) in &h.buckets {
                    let _ = writeln!(s, "    >= {lo:<12} {n:>12}  {}", bar(n, h.count));
                }
            }
        }
        if !self.spans.is_empty() {
            s.push_str("spans\n");
            let mut rows: Vec<(&String, &SpanSnapshot)> = self.spans.iter().collect();
            rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_ns));
            for (name, sp) in rows {
                let avg_us = if sp.count == 0 {
                    0.0
                } else {
                    sp.total_ns as f64 / sp.count as f64 / 1_000.0
                };
                let _ = writeln!(
                    s,
                    "  {name:<44} count={:<10} total={:>10.3}ms self={:>10.3}ms avg={:>9.1}us max={:>9.1}us",
                    sp.count,
                    sp.total_ns as f64 / 1e6,
                    sp.self_ns as f64 / 1e6,
                    avg_us,
                    sp.max_ns as f64 / 1e3,
                );
            }
        }
        if s.is_empty() {
            s.push_str("(no telemetry recorded)\n");
        }
        s
    }
}

/// A proportional bar for the table renderer.
fn bar(n: u64, total: u64) -> String {
    if total == 0 {
        return String::new();
    }
    let width = ((n as f64 / total as f64) * 40.0).round() as usize;
    "#".repeat(width.max(usize::from(n > 0)))
}

/// Minimal JSON string encoder (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Handle macros
// ---------------------------------------------------------------------

/// Resolves (once) and returns the [`Counter`] registered under `$name`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __SRB_OBS_SLOT: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__SRB_OBS_SLOT.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Resolves (once) and returns the [`Gauge`] registered under `$name`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __SRB_OBS_SLOT: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__SRB_OBS_SLOT.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Resolves (once) and returns the [`Histogram`] registered under `$name`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __SRB_OBS_SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__SRB_OBS_SLOT.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Resolves (once) and returns the [`SpanStats`] registered under `$name`.
#[macro_export]
macro_rules! span_stats {
    ($name:expr) => {{
        static __SRB_OBS_SLOT: ::std::sync::OnceLock<&'static $crate::SpanStats> =
            ::std::sync::OnceLock::new();
        *__SRB_OBS_SLOT.get_or_init(|| $crate::registry().span($name))
    }};
}

/// Opens a scoped span timer under `$name`; bind the result
/// (`let _guard = srb_obs::span!("layer.op");`) — the span closes when the
/// guard drops. Nested spans attribute child time to the parent's
/// `total_ns` but not its `self_ns`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($crate::span_stats!($name))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_escapes_names() {
        let mut s = Snapshot::default();
        s.counters.insert("we\"ird\\name".into(), 3);
        let json = s.to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn snapshot_diff_subtracts_and_drops_idle() {
        let mut a = Snapshot::default();
        a.counters.insert("x".into(), 10);
        a.counters.insert("idle".into(), 5);
        let mut b = a.clone();
        b.counters.insert("x".into(), 25);
        let d = b.diff(&a);
        assert_eq!(d.counters.get("x"), Some(&15));
        assert!(!d.counters.contains_key("idle"));
    }

    #[test]
    fn bucket_bounds_are_log2() {
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(4), 8);
        assert_eq!(bucket_lower_bound(64), 1u64 << 63);
    }

    #[test]
    fn table_renders_empty_marker() {
        assert!(Snapshot::default().to_table().contains("no telemetry"));
    }
}
