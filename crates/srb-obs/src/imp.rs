//! Real telemetry implementation (compiled under the `obs` feature).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::{HistogramSnapshot, Snapshot, SpanSnapshot, HISTOGRAM_BUCKETS};

// Relaxed is sufficient everywhere: metrics are monotone aggregates with no
// cross-metric invariants, and snapshots tolerate being torn across metrics.
const ORD: Ordering = Ordering::Relaxed;

// ---------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        // The aggregating default is special-cased so the hot path is one
        // mode load plus one relaxed RMW — no virtual dispatch.
        match MODE.load(ORD) {
            MODE_AGG => {
                self.value.fetch_add(n, ORD);
            }
            MODE_OFF => {}
            _ => recorder_dispatch().counter_add(self, n),
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(ORD)
    }
}

/// A last-write-wins instantaneous value (e.g. a configured thread count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        match MODE.load(ORD) {
            MODE_AGG => self.value.store(v, ORD),
            MODE_OFF => {}
            _ => recorder_dispatch().gauge_set(self, v),
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(ORD)
    }
}

/// A fixed-bucket log2 histogram of `u64` samples. Bucket 0 counts zeros;
/// bucket `i >= 1` counts values in `[2^(i-1), 2^i)`.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index for a sample value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        match MODE.load(ORD) {
            MODE_AGG => self.record_agg(v),
            MODE_OFF => {}
            _ => recorder_dispatch().histogram_record(self, v),
        }
    }

    /// Folds one sample into the atomics (the aggregating path).
    #[inline]
    fn record_agg(&self, v: u64) {
        self.count.fetch_add(1, ORD);
        let prev = self.sum.fetch_add(v, ORD);
        if prev.checked_add(v).is_none() {
            self.sum.store(u64::MAX, ORD);
        }
        self.max.fetch_max(v, ORD);
        self.buckets[bucket_index(v)].fetch_add(1, ORD);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(ORD)
    }

    /// Copies the histogram's current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(ORD);
            if n > 0 {
                buckets.push((crate::bucket_lower_bound(i), n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(ORD),
            sum: self.sum.load(ORD),
            max: self.max.load(ORD),
            buckets,
        }
    }
}

/// Aggregate statistics for one named span (populated by [`SpanGuard`]).
/// Child time (spent inside nested spans) is stored instead of self time —
/// leaf spans, the common hot case, never touch it — and self time is
/// derived at snapshot time as `total − child`.
#[derive(Debug, Default)]
pub struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    child_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStats {
    /// Number of closed spans.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(ORD)
    }

    /// Copies the span's current state.
    pub fn snapshot(&self) -> SpanSnapshot {
        let total_ns = self.total_ns.load(ORD);
        SpanSnapshot {
            count: self.count.load(ORD),
            total_ns,
            self_ns: total_ns.saturating_sub(self.child_ns.load(ORD)),
            max_ns: self.max_ns.load(ORD),
        }
    }
}

/// Deepest span nesting tracked for self-time accounting; spans below this
/// depth still record totals, their time just stays in the ancestor's self
/// time.
const MAX_SPAN_DEPTH: usize = 64;

/// Per-thread stack of open spans: one accumulated-child-time cell per
/// frame. A fixed `Cell` array keeps the hot push/pop free of `RefCell`
/// borrow flags and `Vec` growth checks.
struct SpanStack {
    depth: Cell<usize>,
    child_ns: [Cell<u64>; MAX_SPAN_DEPTH],
}

thread_local! {
    static SPAN_STACK: SpanStack = const {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Cell<u64> = Cell::new(0);
        SpanStack { depth: Cell::new(0), child_ns: [ZERO; MAX_SPAN_DEPTH] }
    };
}

/// RAII scope timer. Created by [`span!`](crate::span!); records into its
/// [`SpanStats`] on drop. Nested guards on the same thread subtract child
/// time from the parent's `self_ns`.
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<(&'static SpanStats, Instant)>,
}

impl SpanGuard {
    /// Opens a span if telemetry (and timing) is live; otherwise returns an
    /// inert guard.
    #[inline]
    pub fn enter(stats: &'static SpanStats) -> SpanGuard {
        if timing_enabled() {
            SPAN_STACK.with(|s| {
                let d = s.depth.get();
                s.depth.set(d + 1);
                if d < MAX_SPAN_DEPTH {
                    s.child_ns[d].set(0);
                }
            });
            SpanGuard { inner: Some((stats, Instant::now())) }
        } else {
            SpanGuard { inner: None }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((stats, start)) = self.inner.take() else {
            return;
        };
        let total = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let child = SPAN_STACK.with(|s| {
            let d = s.depth.get().saturating_sub(1);
            s.depth.set(d);
            let child = if d < MAX_SPAN_DEPTH { s.child_ns[d].get() } else { 0 };
            if let Some(parent) = d.checked_sub(1).filter(|&p| p < MAX_SPAN_DEPTH) {
                let cell = &s.child_ns[parent];
                cell.set(cell.get().saturating_add(total));
            }
            child
        });
        stats.count.fetch_add(1, ORD);
        stats.total_ns.fetch_add(total, ORD);
        if child > 0 {
            stats.child_ns.fetch_add(child, ORD);
        }
        stats.max_ns.fetch_max(total, ORD);
    }
}

/// A manually driven timer for cases where RAII scoping is awkward (e.g.
/// timing disjoint per-shard work inside one function). Returns `None`
/// elapsed when telemetry was off at start.
#[derive(Debug)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts the watch (inert when telemetry timing is off).
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch { start: timing_enabled().then(Instant::now) }
    }

    /// Nanoseconds since [`start`](Stopwatch::start), or `None` when inert.
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

// ---------------------------------------------------------------------
// Recorder strategy
// ---------------------------------------------------------------------

/// Where recorded events go. The default [`AggregatingRecorder`] folds them
/// into each metric's atomics; implement this to tee events elsewhere
/// ([`set_recorder`]).
pub trait Recorder: Send + Sync {
    /// A counter was incremented by `n`.
    fn counter_add(&self, counter: &Counter, n: u64);
    /// A gauge was set to `v`.
    fn gauge_set(&self, gauge: &Gauge, v: u64);
    /// A histogram recorded the sample `v`.
    fn histogram_record(&self, histogram: &Histogram, v: u64);
}

/// The default recorder: folds events into the registry's atomics.
#[derive(Debug, Default)]
pub struct AggregatingRecorder;

impl Recorder for AggregatingRecorder {
    #[inline]
    fn counter_add(&self, counter: &Counter, n: u64) {
        counter.value.fetch_add(n, ORD);
    }

    #[inline]
    fn gauge_set(&self, gauge: &Gauge, v: u64) {
        gauge.value.store(v, ORD);
    }

    #[inline]
    fn histogram_record(&self, histogram: &Histogram, v: u64) {
        histogram.record_agg(v);
    }
}

/// Discards every event.
#[derive(Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn counter_add(&self, _: &Counter, _: u64) {}
    #[inline]
    fn gauge_set(&self, _: &Gauge, _: u64) {}
    #[inline]
    fn histogram_record(&self, _: &Histogram, _: u64) {}
}

const MODE_AGG: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_CUSTOM: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_AGG);
static CUSTOM: OnceLock<Box<dyn Recorder>> = OnceLock::new();

/// True when events are currently being recorded (runtime switch; see also
/// [`compiled`](crate::compiled) for the compile-time switch).
#[inline]
pub fn enabled() -> bool {
    MODE.load(ORD) != MODE_OFF
}

/// True when wall-clock timing (spans, stopwatches) should run. Identical
/// to [`enabled`] today, but a distinct name at call sites so timing can be
/// gated separately later without touching instrumented code.
#[inline]
pub fn timing_enabled() -> bool {
    enabled()
}

/// Runtime on/off switch. `set_enabled(false)` routes every event to the
/// [`NoopRecorder`] and makes spans inert; metrics keep their prior values.
pub fn set_enabled(on: bool) {
    let target = if on {
        if CUSTOM.get().is_some() {
            MODE_CUSTOM
        } else {
            MODE_AGG
        }
    } else {
        MODE_OFF
    };
    MODE.store(target, ORD);
}

/// Installs a custom [`Recorder`] for the rest of the process. Returns
/// `false` (leaving the previous recorder in place) if one was already
/// installed.
pub fn set_recorder(r: Box<dyn Recorder>) -> bool {
    let installed = CUSTOM.set(r).is_ok();
    if installed {
        MODE.store(MODE_CUSTOM, ORD);
    }
    installed
}

static AGGREGATING: AggregatingRecorder = AggregatingRecorder;
static NOOP: NoopRecorder = NoopRecorder;

#[inline]
fn recorder_dispatch() -> &'static dyn Recorder {
    match MODE.load(ORD) {
        MODE_AGG => &AGGREGATING,
        MODE_OFF => &NOOP,
        _ => CUSTOM.get().map_or(&AGGREGATING as _, |b| b.as_ref()),
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// Interns metrics by name and hands out `&'static` handles. Metrics live
/// for the process lifetime; registering the same name twice returns the
/// same handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    spans: Mutex<BTreeMap<&'static str, &'static SpanStats>>,
}

/// Interns `name` and a default `T`, leaking both. Called once per distinct
/// metric name per process — the leak is the intern table.
fn intern<T: Default>(map: &Mutex<BTreeMap<&'static str, &'static T>>, name: &str) -> &'static T {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&existing) = map.get(name) {
        return existing;
    }
    let name: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let value: &'static T = Box::leak(Box::new(T::default()));
    map.insert(name, value);
    value
}

impl Registry {
    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> &'static Counter {
        intern(&self.counters, name)
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        intern(&self.gauges, name)
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        intern(&self.histograms, name)
    }

    /// The span stats registered under `name` (created on first use).
    pub fn span(&self, name: &str) -> &'static SpanStats {
        intern(&self.spans, name)
    }

    /// Copies every metric with recorded activity into a [`Snapshot`].
    /// Idle metrics (zero count and value) are omitted so snapshots stay
    /// small and diff-friendly.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (&name, c) in self.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let v = c.get();
            if v > 0 {
                snap.counters.insert(name.to_owned(), v);
            }
        }
        for (&name, g) in self.gauges.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let v = g.get();
            if v > 0 {
                snap.gauges.insert(name.to_owned(), v);
            }
        }
        for (&name, h) in self.histograms.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let hs = h.snapshot();
            if hs.count > 0 {
                snap.histograms.insert(name.to_owned(), hs);
            }
        }
        for (&name, s) in self.spans.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let ss = s.snapshot();
            if ss.count > 0 {
                snap.spans.insert(name.to_owned(), ss);
            }
        }
        snap
    }
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global enable switch.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counter_and_gauge_roundtrip() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let c = registry().counter("test.imp.counter_roundtrip");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = registry().gauge("test.imp.gauge_roundtrip");
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn registry_interns_by_name() {
        let a = registry().counter("test.imp.intern");
        let b = registry().counter("test.imp.intern");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn histogram_buckets_values_by_log2() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let h = registry().histogram("test.imp.hist_log2");
        for v in [0, 1, 2, 3, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1014);
        assert_eq!(s.max, 1000);
        // zeros, [1,2), [2,4) x2, [8,16), [512,1024)
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (8, 1), (512, 1)]);
    }

    #[test]
    fn histogram_sum_saturates() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let h = registry().histogram("test.imp.hist_saturate");
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().sum, u64::MAX);
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = registry().counter("test.imp.disabled_drops");
        set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 0);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let stats = registry().span("test.imp.disabled_span");
        set_enabled(false);
        drop(SpanGuard::enter(stats));
        assert_eq!(stats.count(), 0);
        set_enabled(true);
        drop(SpanGuard::enter(stats));
        assert_eq!(stats.count(), 1);
    }

    #[test]
    fn nested_spans_split_self_time() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let outer = registry().span("test.imp.nested_outer");
        let inner = registry().span("test.imp.nested_inner");
        {
            let _o = SpanGuard::enter(outer);
            let _i = SpanGuard::enter(inner);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let o = outer.snapshot();
        let i = inner.snapshot();
        assert_eq!(o.count, 1);
        assert_eq!(i.count, 1);
        // Outer wraps inner, so outer total >= inner total and outer self
        // excludes the inner time.
        assert!(o.total_ns >= i.total_ns);
        assert_eq!(o.self_ns, o.total_ns - i.total_ns);
    }

    #[test]
    fn stopwatch_follows_enable_switch() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        assert!(Stopwatch::start().elapsed_ns().is_none());
        set_enabled(true);
        assert!(Stopwatch::start().elapsed_ns().is_some());
    }

    /// Not a correctness test — a quick probe of per-event cost. Run with
    /// `cargo test --release -p srb-obs -- --ignored --nocapture`.
    #[test]
    #[ignore = "perf probe, prints timings"]
    fn perf_probe_span_and_counter_cost() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let stats = registry().span("test.imp.perf_span");
        let c = registry().counter("test.imp.perf_counter");
        let h = registry().histogram("test.imp.perf_hist");
        let n = 1_000_000u64;
        let t0 = Instant::now();
        for _ in 0..n {
            let _s = SpanGuard::enter(stats);
        }
        println!("span enter+drop: {:.1} ns", t0.elapsed().as_nanos() as f64 / n as f64);
        let t0 = Instant::now();
        for _ in 0..n {
            c.inc();
        }
        println!("counter inc:     {:.1} ns", t0.elapsed().as_nanos() as f64 / n as f64);
        let t0 = Instant::now();
        for i in 0..n {
            h.record(i & 1023);
        }
        println!("histogram rec:   {:.1} ns", t0.elapsed().as_nanos() as f64 / n as f64);
    }

    #[test]
    fn snapshot_omits_idle_metrics() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        registry().counter("test.imp.idle_never_touched");
        let snap = registry().snapshot();
        assert!(!snap.counters.contains_key("test.imp.idle_never_touched"));
    }
}
