//! Inert zero-sized stubs (compiled when the `obs` feature is off).
//!
//! Every public item mirrors the real implementation in `imp.rs` with the
//! same signatures, so instrumented crates compile unchanged; all bodies
//! are empty and every type is a ZST, so the optimizer erases the calls.

use crate::{HistogramSnapshot, Snapshot, SpanSnapshot};

/// Inert stand-in for the real counter (the `obs` feature is off).
#[derive(Debug, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing (telemetry compiled out).
    #[inline(always)]
    pub fn inc(&self) {}

    /// Does nothing (telemetry compiled out).
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Always 0 (telemetry compiled out).
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Inert stand-in for the real gauge (the `obs` feature is off).
#[derive(Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing (telemetry compiled out).
    #[inline(always)]
    pub fn set(&self, _v: u64) {}

    /// Always 0 (telemetry compiled out).
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// Inert stand-in for the real histogram (the `obs` feature is off).
#[derive(Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing (telemetry compiled out).
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Always 0 (telemetry compiled out).
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always empty (telemetry compiled out).
    #[inline(always)]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
}

/// Inert stand-in for the real span stats (the `obs` feature is off).
#[derive(Debug, Default)]
pub struct SpanStats;

impl SpanStats {
    /// Always 0 (telemetry compiled out).
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always empty (telemetry compiled out).
    #[inline(always)]
    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot::default()
    }
}

/// Inert stand-in for the real span guard (the `obs` feature is off).
#[derive(Debug)]
pub struct SpanGuard;

impl SpanGuard {
    /// Returns an inert guard (telemetry compiled out).
    #[inline(always)]
    pub fn enter(_stats: &'static SpanStats) -> SpanGuard {
        SpanGuard
    }
}

/// Inert stand-in for the real stopwatch (the `obs` feature is off).
#[derive(Debug)]
pub struct Stopwatch;

impl Stopwatch {
    /// Returns an inert watch (telemetry compiled out).
    #[inline(always)]
    pub fn start() -> Stopwatch {
        Stopwatch
    }

    /// Always `None` (telemetry compiled out).
    #[inline(always)]
    pub fn elapsed_ns(&self) -> Option<u64> {
        None
    }
}

/// Event sink interface; with the `obs` feature off, no events exist to
/// route, so implementations are never called.
pub trait Recorder: Send + Sync {
    /// Never called (telemetry compiled out).
    fn counter_add(&self, counter: &Counter, n: u64);
    /// Never called (telemetry compiled out).
    fn gauge_set(&self, gauge: &Gauge, v: u64);
    /// Never called (telemetry compiled out).
    fn histogram_record(&self, histogram: &Histogram, v: u64);
}

/// Inert stand-in for the default recorder (the `obs` feature is off).
#[derive(Debug, Default)]
pub struct AggregatingRecorder;

impl Recorder for AggregatingRecorder {
    #[inline(always)]
    fn counter_add(&self, _: &Counter, _: u64) {}
    #[inline(always)]
    fn gauge_set(&self, _: &Gauge, _: u64) {}
    #[inline(always)]
    fn histogram_record(&self, _: &Histogram, _: u64) {}
}

/// Inert stand-in for the no-op recorder (the `obs` feature is off).
#[derive(Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn counter_add(&self, _: &Counter, _: u64) {}
    #[inline(always)]
    fn gauge_set(&self, _: &Gauge, _: u64) {}
    #[inline(always)]
    fn histogram_record(&self, _: &Histogram, _: u64) {}
}

/// Always false (telemetry compiled out).
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Always false (telemetry compiled out).
#[inline(always)]
pub fn timing_enabled() -> bool {
    false
}

/// Does nothing (telemetry compiled out).
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// Always false — no recorder can be installed (telemetry compiled out).
#[inline(always)]
pub fn set_recorder(_r: Box<dyn Recorder>) -> bool {
    false
}

/// Inert stand-in for the real registry (the `obs` feature is off).
#[derive(Debug, Default)]
pub struct Registry;

static COUNTER: Counter = Counter;
static GAUGE: Gauge = Gauge;
static HISTOGRAM: Histogram = Histogram;
static SPAN_STATS: SpanStats = SpanStats;

impl Registry {
    /// Returns the shared inert counter (telemetry compiled out).
    #[inline(always)]
    pub fn counter(&self, _name: &str) -> &'static Counter {
        &COUNTER
    }

    /// Returns the shared inert gauge (telemetry compiled out).
    #[inline(always)]
    pub fn gauge(&self, _name: &str) -> &'static Gauge {
        &GAUGE
    }

    /// Returns the shared inert histogram (telemetry compiled out).
    #[inline(always)]
    pub fn histogram(&self, _name: &str) -> &'static Histogram {
        &HISTOGRAM
    }

    /// Returns the shared inert span stats (telemetry compiled out).
    #[inline(always)]
    pub fn span(&self, _name: &str) -> &'static SpanStats {
        &SPAN_STATS
    }

    /// Always empty (telemetry compiled out).
    #[inline(always)]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// Returns the shared inert registry (telemetry compiled out).
#[inline(always)]
pub fn registry() -> &'static Registry {
    static REGISTRY: Registry = Registry;
    &REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_api_is_inert() {
        let c = registry().counter("stub.anything");
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = registry().histogram("stub.hist");
        h.record(42);
        assert_eq!(h.count(), 0);
        let _guard = SpanGuard::enter(registry().span("stub.span"));
        assert!(Stopwatch::start().elapsed_ns().is_none());
        assert!(!enabled());
        assert!(registry().snapshot().is_empty());
    }
}
