//! Run metrics (paper §7.1): monitoring accuracy, amortized wireless
//! communication cost, and server CPU time, plus deterministic work units
//! and per-distance normalizations used by individual figures.

use serde::{Deserialize, Serialize};

/// Aggregated metrics of one simulation run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Fraction of `(query, sample)` pairs where the monitored result set
    /// exactly matched the ground truth (`ma(Q, t)` time-averaged).
    pub accuracy: f64,
    /// Source-initiated updates *accepted* by the server (duplicates and
    /// lost messages excluded).
    pub uplinks: u64,
    /// Server-initiated probes issued.
    pub probes: u64,
    /// Uplink transmissions by clients, including retransmissions — what
    /// the client radio actually pays for. Equals `uplinks` on an ideal
    /// channel.
    pub uplinks_sent: u64,
    /// Retransmissions of unacknowledged exit reports (subset of
    /// `uplinks_sent`).
    pub retransmissions: u64,
    /// Messages the channel dropped (uplink + downlink).
    pub channel_drops: u64,
    /// Extra copies the channel delivered (duplication faults).
    pub channel_duplicates: u64,
    /// Duplicate/reordered updates the server rejected by sequence number.
    pub stale_seq_drops: u64,
    /// Probes fired by the server because a safe-region lease lapsed.
    pub lease_probes: u64,
    /// Safe regions re-sent in response to duplicate updates (lost-ACK
    /// recovery).
    pub regrants: u64,
    /// Amortized wireless cost per client per time unit
    /// (`(uplinks·c_l + probes·c_p) / (N · duration)`).
    pub comm_cost: f64,
    /// Amortized wireless cost per distance unit traveled (Figure 7.4a's
    /// secondary axis).
    pub comm_cost_per_distance: f64,
    /// Measured server processing wall-clock seconds per simulated time
    /// unit (query evaluation + safe-region computation + index upkeep).
    pub cpu_seconds_per_tu: f64,
    /// Deterministic work units per time unit: object-index node visits
    /// plus safe-region computations (machine-independent CPU proxy).
    pub work_units_per_tu: f64,
    /// Total distance traveled by all clients.
    pub total_distance: f64,
    /// Number of ground-truth samples taken.
    pub samples: u64,
    /// Grid query-index footprint in bucket entries (§7.3's index size).
    pub grid_footprint: usize,
}

impl RunMetrics {
    /// Communication cost helper. Cost is charged per uplink *sent* (the
    /// client pays for retransmissions whether or not they arrive); callers
    /// that model a reliable channel set `uplinks_sent = uplinks`. Degenerate
    /// runs (zero objects, zero duration, zero distance) yield `0.0` for the
    /// amortized figures rather than NaN/∞, so downstream JSON stays finite.
    pub fn finish_comm(&mut self, c_l: f64, c_p: f64, n_objects: usize, duration: f64) {
        if self.uplinks_sent == 0 {
            self.uplinks_sent = self.uplinks;
        }
        let total = self.uplinks_sent as f64 * c_l + self.probes as f64 * c_p;
        let client_time = n_objects as f64 * duration;
        self.comm_cost = if client_time > 0.0 { total / client_time } else { 0.0 };
        self.comm_cost_per_distance =
            if self.total_distance > 0.0 { total / self.total_distance } else { 0.0 };
    }
}

/// Accuracy accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct AccuracyAcc {
    hits: u64,
    total: u64,
}

impl AccuracyAcc {
    /// Records one `(query, sample)` comparison. Counts saturate instead of
    /// wrapping, so a pathological run degrades the figure gracefully
    /// rather than corrupting it.
    pub fn record(&mut self, matched: bool) {
        self.total = self.total.saturating_add(1);
        if matched {
            self.hits = self.hits.saturating_add(1);
        }
    }

    /// The accuracy so far (1.0 when nothing was recorded).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Number of comparisons recorded.
    pub fn count(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_accumulates() {
        let mut a = AccuracyAcc::default();
        assert_eq!(a.value(), 1.0);
        a.record(true);
        a.record(true);
        a.record(false);
        a.record(true);
        assert!((a.value() - 0.75).abs() < 1e-12);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn comm_cost_formula() {
        let mut m =
            RunMetrics { uplinks: 100, probes: 40, total_distance: 50.0, ..Default::default() };
        m.finish_comm(1.0, 1.5, 10, 10.0);
        // total = 100 + 60 = 160; per client-tu = 160/100 = 1.6
        assert!((m.comm_cost - 1.6).abs() < 1e-12);
        assert!((m.comm_cost_per_distance - 3.2).abs() < 1e-12);
    }

    #[test]
    fn comm_cost_degenerate_runs_stay_finite() {
        // Zero duration and zero objects must not divide to NaN or ∞.
        let mut m = RunMetrics { uplinks: 5, probes: 2, ..Default::default() };
        m.finish_comm(1.0, 1.5, 0, 0.0);
        assert_eq!(m.comm_cost, 0.0);
        assert_eq!(m.comm_cost_per_distance, 0.0);
        assert!(m.comm_cost.is_finite() && m.comm_cost_per_distance.is_finite());

        let mut m = RunMetrics { uplinks: 5, ..Default::default() };
        m.finish_comm(1.0, 1.5, 10, 0.0);
        assert_eq!(m.comm_cost, 0.0);
    }

    #[test]
    fn accuracy_zero_matches_is_zero_not_nan() {
        let mut a = AccuracyAcc::default();
        for _ in 0..5 {
            a.record(false);
        }
        assert_eq!(a.value(), 0.0);
        assert!(a.value().is_finite());
    }

    #[test]
    fn accuracy_saturates_at_u64_max() {
        let mut a = AccuracyAcc { hits: u64::MAX, total: u64::MAX };
        a.record(true);
        assert_eq!(a.count(), u64::MAX, "total saturates instead of wrapping");
        assert!((a.value() - 1.0).abs() < 1e-12);
        // A mismatch at saturation can no longer move the ratio, but it
        // must not wrap either.
        a.record(false);
        assert_eq!(a.count(), u64::MAX);
        assert!(a.value() <= 1.0);
    }

    #[test]
    fn comm_cost_zero_traffic_run() {
        // A run where nothing was sent and nothing was probed: every figure
        // is exactly zero, not NaN.
        let mut m = RunMetrics::default();
        m.finish_comm(1.0, 1.5, 100, 10.0);
        assert_eq!(m.comm_cost, 0.0);
        assert_eq!(m.comm_cost_per_distance, 0.0);
        assert_eq!(m.uplinks_sent, 0);
    }

    #[test]
    fn comm_cost_zero_duration_with_positive_distance() {
        // Degenerate duration but real movement: the per-client-time figure
        // collapses to zero while the per-distance figure stays meaningful.
        let mut m =
            RunMetrics { uplinks: 10, probes: 4, total_distance: 4.0, ..Default::default() };
        m.finish_comm(1.0, 1.5, 10, 0.0);
        assert_eq!(m.comm_cost, 0.0);
        assert!((m.comm_cost_per_distance - 4.0).abs() < 1e-12);
    }

    #[test]
    fn finish_comm_backfills_sent_from_accepted() {
        // Reliable-channel callers leave uplinks_sent at 0; finish_comm
        // backfills it so the cost formula charges the accepted updates.
        let mut m = RunMetrics { uplinks: 30, ..Default::default() };
        m.finish_comm(1.0, 1.5, 3, 10.0);
        assert_eq!(m.uplinks_sent, 30);
        assert!((m.comm_cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_cost_charges_sent_uplinks_under_loss() {
        // 120 sent but only 100 received: the client still paid for 120.
        let mut m = RunMetrics {
            uplinks: 100,
            uplinks_sent: 120,
            retransmissions: 20,
            probes: 0,
            ..Default::default()
        };
        m.finish_comm(1.0, 1.5, 10, 12.0);
        assert!((m.comm_cost - 1.0).abs() < 1e-12);
    }
}
