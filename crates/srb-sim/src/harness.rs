//! Shared simulation scaffolding: the pieces every monitoring scheme needs
//! — mobility/trajectory setup, the lossy channel, client check-tick
//! arithmetic, accuracy sampling, and run finalization — extracted so
//! `srb.rs`, `prd.rs`, and `opt.rs` cannot drift apart on the parts that
//! must stay comparable across schemes. The golden-metrics regression test
//! (`tests/goldens.rs`) pins every code path in here bit-identically.

use crate::config::SimConfig;
use crate::metrics::{AccuracyAcc, RunMetrics};
use crate::truth::{results_match, TruthResults};
use crate::{ChannelConfig, ChannelModel};
use srb_core::QuerySpec;
use srb_mobility::{MobilityConfig, Trajectory};

/// Seed-stream separator so channel faults are decorrelated from the
/// trajectory and workload streams derived from the same master seed.
pub(crate) const CHANNEL_SEED_XOR: u64 = 0x6c6f_7373_7921; // "lossy!"

/// Minimum spacing enforced between consecutive updates of one client even
/// when `min_reaction` is zero, to let boundary-pinned objects make
/// geometric progress.
pub const EXIT_EPS: f64 = 1e-9;

/// Rounds a raw boundary-crossing time up to the next client check tick
/// (multiples of `g`); identity when `g == 0` (instant reaction).
pub fn check_tick(te: f64, g: f64) -> f64 {
    if g > 0.0 {
        (te / g).ceil() * g
    } else {
        te
    }
}

/// The mobility model all schemes share, derived from the run config.
pub fn mobility(cfg: &SimConfig) -> MobilityConfig {
    MobilityConfig { space: cfg.space, mean_speed: cfg.mean_speed, mean_period: cfg.mean_period }
}

/// Fresh random-waypoint trajectories for every object, deterministic in
/// the master seed.
pub fn make_trajectories(cfg: &SimConfig) -> Vec<Trajectory> {
    let mob = mobility(cfg);
    (0..cfg.n_objects).map(|i| Trajectory::random_waypoint(cfg.seed, i as u64, mob, 0.0)).collect()
}

/// The fault-injecting channel for this run, seeded on a stream decorrelated
/// from trajectories and workload.
pub fn make_channel(cfg: &SimConfig) -> ChannelModel {
    ChannelModel::new(cfg.channel, cfg.seed ^ CHANNEL_SEED_XOR, cfg.n_objects, cfg.duration)
}

/// Total arc length traveled by all clients over the run — recreates each
/// trajectory from the seed so live clients may forget early history.
pub fn total_distance(cfg: &SimConfig) -> f64 {
    let mob = mobility(cfg);
    (0..cfg.n_objects)
        .map(|i| {
            let mut t = Trajectory::random_waypoint(cfg.seed, i as u64, mob, 0.0);
            t.distance_traveled(0.0, cfg.duration)
        })
        .sum()
}

/// Scores one ground-truth sample: each query's monitored result against
/// the truth row, under the spec's match semantics (set for ranges and
/// unordered kNN, sequence for order-sensitive kNN).
pub fn score_sample(
    acc: &mut AccuracyAcc,
    specs: &[QuerySpec],
    monitored: &[Vec<u64>],
    truth: &TruthResults,
) {
    for ((spec, m), t) in specs.iter().zip(monitored.iter()).zip(truth.iter()) {
        acc.record(results_match(spec, m, t));
    }
}

/// Run finalization every scheme shares: the accuracy value, the total
/// client travel distance, and the amortized communication figures.
pub fn finalize(metrics: &mut RunMetrics, accuracy: f64, cfg: &SimConfig) {
    metrics.accuracy = accuracy;
    metrics.total_distance = total_distance(cfg);
    metrics.finish_comm(cfg.cost.c_l, cfg.cost.c_p, cfg.n_objects, cfg.duration);
}

/// Which monitoring scheme to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scheme {
    /// Safe-region-based monitoring (the paper's contribution).
    Srb,
    /// Clairvoyant optimal monitoring (lower bound).
    Opt,
    /// Periodic monitoring with the given interval.
    Prd(f64),
}

/// A runnable monitoring scheme: the uniform interface the harness, benches,
/// and figure generators drive. [`Scheme`] implements it for the three
/// built-in schemes; tests can implement it for oracles.
pub trait MonitoringScheme {
    /// Human-readable label for figures and logs.
    fn label(&self) -> String;
    /// Runs the scheme under `cfg` and returns the aggregated metrics.
    fn run(&self, cfg: &SimConfig) -> RunMetrics;
}

impl MonitoringScheme for Scheme {
    fn label(&self) -> String {
        match self {
            Scheme::Srb => "SRB".into(),
            Scheme::Opt => "OPT".into(),
            Scheme::Prd(t) => format!("PRD({t})"),
        }
    }

    fn run(&self, cfg: &SimConfig) -> RunMetrics {
        run_scheme(*self, cfg)
    }
}

/// Runs one scheme under `cfg`.
pub fn run_scheme(scheme: Scheme, cfg: &SimConfig) -> RunMetrics {
    match scheme {
        Scheme::Srb => crate::run_srb(cfg),
        Scheme::Opt => crate::run_opt(cfg),
        Scheme::Prd(t) => crate::run_prd(cfg, t),
    }
}

/// The fixed scenario set backing the golden-metrics regression test
/// (`tests/goldens.rs`) and the `dump_goldens` example: one named,
/// deterministic configuration per code path whose figures must survive
/// refactors bit-identically.
pub fn golden_scenarios() -> Vec<(&'static str, Scheme, SimConfig)> {
    let t = SimConfig::test_defaults();
    vec![
        ("srb_test_defaults", Scheme::Srb, t),
        ("srb_reachability", Scheme::Srb, SimConfig { reachability: true, ..t }),
        ("srb_steadiness", Scheme::Srb, SimConfig { steadiness: Some(0.5), ..t }),
        ("srb_delay", Scheme::Srb, SimConfig { delay: 0.05, ..t }),
        ("srb_lease", Scheme::Srb, SimConfig { lease: Some(0.5), ..t }),
        (
            "srb_lossy",
            Scheme::Srb,
            SimConfig {
                n_objects: 150,
                n_queries: 10,
                seed: 20,
                channel: ChannelConfig {
                    loss: 0.1,
                    duplication: 0.05,
                    jitter: 0.02,
                    ..ChannelConfig::IDEAL
                },
                lease: Some(0.5),
                ..t
            },
        ),
        (
            "srb_schemes_scale",
            Scheme::Srb,
            SimConfig { n_objects: 250, n_queries: 16, duration: 4.0, seed: 20, ..t },
        ),
        (
            "srb_figure_scale",
            Scheme::Srb,
            SimConfig {
                n_objects: 2_000,
                n_queries: 20,
                duration: 8.0,
                ..SimConfig::paper_defaults()
            },
        ),
        ("opt_test_defaults", Scheme::Opt, t),
        ("prd_1", Scheme::Prd(1.0), t),
        ("prd_quarter", Scheme::Prd(0.25), t),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_tick_rounds_up_to_granularity() {
        assert_eq!(check_tick(0.31, 0.1), 0.4);
        assert!((check_tick(0.4, 0.1) - 0.4).abs() < 1e-12);
        assert_eq!(check_tick(0.123, 0.0), 0.123);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::Srb.label(), "SRB");
        assert_eq!(Scheme::Opt.label(), "OPT");
        assert_eq!(Scheme::Prd(0.25).label(), "PRD(0.25)");
    }

    #[test]
    fn total_distance_is_deterministic_and_positive() {
        let cfg = SimConfig { n_objects: 20, duration: 1.0, ..SimConfig::test_defaults() };
        let a = total_distance(&cfg);
        let b = total_distance(&cfg);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }
}
