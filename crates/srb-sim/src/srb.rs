//! The SRB (safe-region-based) monitoring scheme, simulated end to end
//! (paper §7): faithful clients that report exactly on safe-region exit, a
//! configurable one-way communication delay `τ`, server-initiated probes
//! answered with true positions, and periodic ground-truth sampling for the
//! accuracy metric.

use crate::config::SimConfig;
use crate::events::EventQueue;
use crate::harness::{check_tick, finalize, make_channel, mobility, score_sample, EXIT_EPS};
use crate::metrics::{AccuracyAcc, RunMetrics};
use crate::truth::evaluate_truth;
use crate::workload::generate_workload;
use srb_core::{
    BackendConfig, DynBackend, LocationProvider, ObjectId, QueryId, QuerySpec, RStarTree,
    SequencedUpdate, ServerConfig, ShardedServer, SpatialBackend, SyncProvider, UniformGrid,
};
use srb_geom::{Point, Rect};
use srb_mobility::{MobileClient, Trajectory};
use std::sync::Mutex;
use std::time::Instant;

enum Ev {
    /// A client crosses its safe-region boundary (valid if `version`
    /// matches).
    Exit { id: u32, version: u64 },
    /// The server receives a source-initiated update (after
    /// the uplink delay and any channel jitter).
    Recv { id: u32, pos: Point, seq: u64 },
    /// A client receives its new safe region (after the downlink delay).
    Sr { id: u32, sr: Rect },
    /// Retransmission timer for an unacknowledged exit report; valid only
    /// while the client's in-flight report still carries `seq`.
    Retry { id: u32, seq: u64, attempt: u32 },
    /// Client-side lease check: if no grant arrived since `version`, the
    /// client assumes its region (or its last report's ACK) was lost and
    /// re-requests with a fresh report.
    LeaseCheck { id: u32, version: u64 },
    /// Consult the server's deferred-probe queue.
    Deferred,
    /// Ground-truth sampling instant.
    Sample,
}

struct Provider<'a> {
    clients: &'a mut [MobileClient],
    now: f64,
    probed: Vec<u32>,
}

impl LocationProvider for Provider<'_> {
    fn probe(&mut self, id: ObjectId) -> Point {
        self.probed.push(id.0);
        self.clients[id.index()].position(self.now)
    }
}

/// [`Provider`] for the pipelined batch path, which takes a shared
/// [`SyncProvider`]. Probes are answered on the coordinator thread (the
/// merge loop relays worker probe requests), so the mutex is uncontended;
/// it exists only to satisfy the `Sync` bound with `&mut` clients inside.
struct SharedProvider<'a> {
    clients: Mutex<(&'a mut [MobileClient], Vec<u32>)>,
    now: f64,
}

impl SyncProvider for SharedProvider<'_> {
    fn probe(&self, id: ObjectId) -> Point {
        let mut g = self.clients.lock().expect("provider lock");
        g.1.push(id.0);
        g.0[id.index()].position(self.now)
    }
}

/// Runs the SRB scheme and returns the aggregated metrics. With
/// `cfg.shards == 1` (the default) the server is a single Figure-3.1 stack,
/// bit-identical to the paper's setup; larger values run the sharded engine.
/// The object-index backend is selected by `cfg.backend` (monomorphized
/// through [`run_srb_with`]).
pub fn run_srb(cfg: &SimConfig) -> RunMetrics {
    match cfg.backend {
        BackendConfig::RStar(_) => run_srb_with::<RStarTree>(cfg),
        BackendConfig::Grid(_) => run_srb_with::<UniformGrid>(cfg),
        BackendConfig::Adaptive(_) => run_srb_with::<DynBackend>(cfg),
    }
}

/// The monomorphic body of [`run_srb`]: runs the SRB scheme on the spatial
/// backend `B`, which must match the variant of `cfg.backend`.
pub fn run_srb_with<B: SpatialBackend + Send + 'static>(cfg: &SimConfig) -> RunMetrics {
    let mob = mobility(cfg);
    let server_cfg = ServerConfig {
        space: cfg.space,
        grid_m: cfg.grid_m,
        max_speed: cfg.reachability.then(|| cfg.max_speed()),
        steadiness: cfg.steadiness,
        cost: cfg.cost,
        lease: cfg.lease,
        backend: cfg.backend,
        durability: cfg.durable,
    };
    let mut server = ShardedServer::<B>::with_backend(server_cfg, cfg.shards);
    let mut channel = make_channel(cfg);
    let channel_ideal = cfg.channel.is_ideal();
    // Retry timers only exist on a faulty channel; lease checks only with a
    // finite lease. On the ideal/infinite configuration neither event is
    // ever scheduled, keeping runs bit-identical to the paper's.
    let rto = cfg.retry_timeout();
    let lease_grace = cfg.lease.map(|l| l + 2.0 * (cfg.delay + cfg.channel.jitter) + 1e-6);
    let mut clients: Vec<MobileClient> = (0..cfg.n_objects)
        .map(|i| {
            MobileClient::new(i as u32, Trajectory::random_waypoint(cfg.seed, i as u64, mob, 0.0))
        })
        .collect();
    let mut versions: Vec<u64> = vec![0; cfg.n_objects];
    let mut last_update: Vec<f64> = vec![0.0; cfg.n_objects];
    let mut cpu = 0.0f64;

    // --- Setup: register objects, then queries (instantaneous) -----------
    {
        let t0 = Instant::now();
        for i in 0..cfg.n_objects {
            let pos = clients[i].position(0.0);
            let mut provider = Provider { clients: &mut clients, now: 0.0, probed: Vec::new() };
            let sr = server
                .add_object(ObjectId(i as u32), pos, &mut provider, 0.0)
                .expect("object ids are distinct");
            clients[i].receive_safe_region(sr, 0.0);
        }
        cpu += t0.elapsed().as_secs_f64();
    }
    let specs = generate_workload(cfg);
    let mut queries: Vec<(QueryId, QuerySpec)> = Vec::with_capacity(specs.len());
    {
        let t0 = Instant::now();
        for spec in &specs {
            let mut provider = Provider { clients: &mut clients, now: 0.0, probed: Vec::new() };
            let resp = server.register_query(*spec, &mut provider, 0.0);
            for (oid, sr) in resp.safe_regions {
                clients[oid.index()].receive_safe_region(sr, 0.0);
                versions[oid.index()] += 1;
            }
            queries.push((resp.id, *spec));
        }
        cpu += t0.elapsed().as_secs_f64();
    }

    // --- Event loop -------------------------------------------------------
    let mut q: EventQueue<Ev> = EventQueue::new();
    for i in 0..cfg.n_objects {
        if let Some(te) = clients[i].next_report(0.0, cfg.duration) {
            q.push(
                check_tick(te, cfg.min_reaction),
                Ev::Exit { id: i as u32, version: versions[i] },
            );
        }
    }
    // Sample times are computed as products (k * interval), bit-identical
    // to the check-tick arithmetic, so same-instant reports and samples tie
    // exactly and the class ordering (updates first) decides.
    let mut k = 1u64;
    while k as f64 * cfg.sample_interval <= cfg.duration + 1e-12 {
        q.push_class(k as f64 * cfg.sample_interval, 1, Ev::Sample);
        k += 1;
    }
    if let Some(due) = server.next_deferred_due() {
        q.push(due, Ev::Deferred);
    }

    let mut acc = AccuracyAcc::default();
    let mut metrics = RunMetrics::default();
    // Per-tick telemetry timeline: one JSON line per sample, holding the
    // diff of the (process-global) registry since the previous sample.
    let mut timeline: Option<(Vec<String>, srb_obs::Snapshot)> =
        cfg.timeline.map(|_| (Vec::new(), srb_obs::registry().snapshot()));

    // Same-instant reports are batched and handed to the server together:
    // the batch path installs every reported position before reevaluating,
    // so no query is evaluated against a stale bound of a simultaneous
    // mover (the paper's sequential-processing assumption, upheld at tick
    // granularity).
    let mut batch: Vec<SequencedUpdate> = Vec::new();
    let mut batch_t = 0.0f64;
    let rtt_pad = 2.0 * (cfg.delay + cfg.channel.jitter);
    // Downlink delivery of a safe-region grant: through the channel, so a
    // grant (the implicit ACK) can be lost, duplicated, or jittered. On the
    // ideal channel this is exactly one push at `at`.
    macro_rules! deliver_sr {
        ($oid:expr, $sr:expr, $at:expr) => {{
            let oid: u32 = $oid;
            for d in channel.transmit(oid as usize, $at) {
                q.push($at + d, Ev::Sr { id: oid, sr: $sr });
            }
        }};
    }
    // Uplink send of a fresh exit report: assigns the sequence number,
    // transmits through the channel, and (on a faulty channel only) arms
    // the retransmission timer.
    macro_rules! send_report {
        ($i:expr, $t:expr, $pos:expr) => {{
            let i: usize = $i;
            let seq = clients[i].send_report($pos);
            metrics.uplinks_sent += 1;
            for d in channel.transmit(i, $t) {
                q.push($t + cfg.delay + d, Ev::Recv { id: i as u32, pos: $pos, seq });
            }
            if !channel_ideal {
                q.push($t + rto, Ev::Retry { id: i as u32, seq, attempt: 1 });
            }
        }};
    }
    macro_rules! flush_batch {
        () => {
            if !batch.is_empty() {
                let _span = srb_obs::span!("sim.flush_batch");
                srb_obs::counter!("sim.batches").inc();
                srb_obs::histogram!("sim.batch_size").record(batch.len() as u64);
                let t0 = Instant::now();
                // Sharded runs go through the pipelined front-end (persistent
                // shard workers, streaming merge); the single stack keeps the
                // paper's sequential path, bit-identical to the goldens.
                let resps = if cfg.shards > 1 {
                    let provider = SharedProvider {
                        clients: Mutex::new((&mut clients[..], Vec::new())),
                        now: batch_t,
                    };
                    let resps =
                        server.handle_sequenced_updates_parallel(&batch, &provider, batch_t);
                    let (cl, probed) = provider.clients.into_inner().expect("provider lock");
                    for &p in &probed {
                        cl[p as usize].mark_pending();
                    }
                    resps
                } else {
                    let mut provider =
                        Provider { clients: &mut clients, now: batch_t, probed: Vec::new() };
                    let resps = server.handle_sequenced_updates(&batch, &mut provider, batch_t);
                    for &p in &provider.probed {
                        provider.clients[p as usize].mark_pending();
                    }
                    resps
                };
                cpu += t0.elapsed().as_secs_f64();
                // Only the uplink is delayed (§7.2: "the server receives the
                // location update τ time units after the client sends it");
                // responses are modeled as immediate.
                for (oid, resp) in resps {
                    deliver_sr!(oid.0, resp.safe_region, batch_t);
                    for (other, sr) in resp.probed {
                        deliver_sr!(other.0, sr, batch_t);
                    }
                }
                if let Some(due) = server.next_deferred_due() {
                    q.push(due, Ev::Deferred);
                }
                batch.clear();
            }
        };
    }
    while let Some((t, ev)) = q.pop() {
        if t > cfg.duration + 1e-12 {
            break;
        }
        if !batch.is_empty() && (!matches!(ev, Ev::Recv { .. }) || t > batch_t + 1e-12) {
            flush_batch!();
        }
        srb_obs::counter!("sim.events").inc();
        match ev {
            Ev::Exit { id, version } => {
                let i = id as usize;
                if versions[i] != version {
                    continue; // stale: the safe region changed meanwhile
                }
                let pos = clients[i].position(t);
                // With a finite check granularity the client may have dipped
                // out and come back since the raw crossing: only report if
                // it is outside *now*.
                if let Some(sr) = clients[i].safe_region() {
                    if sr.contains_point(pos) {
                        if let Some(te) = clients[i].next_report(t + EXIT_EPS, cfg.duration) {
                            q.push(check_tick(te, cfg.min_reaction), Ev::Exit { id, version });
                        }
                        continue;
                    }
                }
                send_report!(i, t, pos);
            }
            Ev::Recv { id, pos, seq } => {
                last_update[id as usize] = t;
                batch_t = t;
                batch.push(SequencedUpdate { id: ObjectId(id), pos, seq });
                // Keep buffering only while more reports arrive at this
                // same instant; otherwise process now so clients resume
                // tracking without a gap.
                if q.peek_time().is_none_or(|nt| nt > t + 1e-12) {
                    flush_batch!();
                }
            }
            Ev::Retry { id, seq, attempt } => {
                let i = id as usize;
                // Valid only while that exact report is still unacknowledged.
                let Some(rep) = clients[i].pending_report() else { continue };
                if rep.seq != seq || attempt > cfg.retry.max_retries {
                    continue;
                }
                metrics.uplinks_sent += 1;
                metrics.retransmissions += 1;
                for d in channel.transmit(i, t) {
                    q.push(t + cfg.delay + d, Ev::Recv { id, pos: rep.pos, seq });
                }
                q.push(
                    t + cfg.retry.backoff(attempt + 1) + rtt_pad,
                    Ev::Retry { id, seq, attempt: attempt + 1 },
                );
            }
            Ev::LeaseCheck { id, version } => {
                let i = id as usize;
                if versions[i] != version {
                    continue; // heard from the server since: lease renewed
                }
                // A full lease (plus round-trip grace) passed with no grant:
                // assume our report's ACK or the server's lease-probe grant
                // was lost and re-request with a fresh position report.
                let pos = clients[i].position(t);
                send_report!(i, t, pos);
            }
            Ev::Sr { id, sr } => {
                let i = id as usize;
                versions[i] += 1;
                if let Some(g) = lease_grace {
                    q.push(t + g, Ev::LeaseCheck { id, version: versions[i] });
                }
                if clients[i].receive_safe_region(sr, t) {
                    let from = t.max(last_update[i] + EXIT_EPS);
                    if let Some(te) = clients[i].next_report(from, cfg.duration) {
                        let at = check_tick(te, cfg.min_reaction).max(last_update[i] + EXIT_EPS);
                        q.push(at, Ev::Exit { id, version: versions[i] });
                    }
                } else {
                    // Already outside the (stale) region: report again at
                    // the next check tick.
                    let at = check_tick(t + EXIT_EPS, cfg.min_reaction).max(t);
                    versions[i] += 1;
                    q.push(at, Ev::Exit { id, version: versions[i] });
                }
            }
            Ev::Deferred => {
                let due = server.next_deferred_due();
                match due {
                    Some(d) if d <= t + 1e-12 => {
                        let _span = srb_obs::span!("sim.process_deferred");
                        let t0 = Instant::now();
                        let resps = {
                            let mut provider =
                                Provider { clients: &mut clients, now: t, probed: Vec::new() };
                            let resps = server.process_deferred(&mut provider, t);
                            for &p in &provider.probed {
                                provider.clients[p as usize].mark_pending();
                            }
                            resps
                        };
                        cpu += t0.elapsed().as_secs_f64();
                        for (oid, resp) in resps {
                            deliver_sr!(oid.0, resp.safe_region, t);
                            for (other, sr) in resp.probed {
                                deliver_sr!(other.0, sr, t);
                            }
                        }
                    }
                    _ => {}
                }
                if let Some(d) = server.next_deferred_due() {
                    q.push(d, Ev::Deferred);
                }
            }
            Ev::Sample => {
                let _span = srb_obs::span!("sim.sample");
                let positions: Vec<Point> =
                    (0..cfg.n_objects).map(|i| clients[i].position(t)).collect();
                let truth = evaluate_truth(&positions, &specs);
                let monitored: Vec<Vec<u64>> = queries
                    .iter()
                    .map(|(qid, _)| {
                        server
                            .results(*qid)
                            .map(|r| r.iter().map(|o| o.0 as u64).collect())
                            .unwrap_or_default()
                    })
                    .collect();
                score_sample(&mut acc, &specs, &monitored, &truth);
                metrics.samples += 1;
                if let Some((lines, prev)) = timeline.as_mut() {
                    let snap = srb_obs::registry().snapshot();
                    let diff = snap.diff(prev);
                    lines.push(format!("{{\"t\":{t},\"metrics\":{}}}", diff.to_json()));
                    *prev = snap;
                }
                let horizon = t - cfg.delay - 1.0;
                for c in clients.iter_mut() {
                    c.forget_before(horizon);
                }
            }
        }
    }

    flush_batch!();
    // End of run: force any group-commit-buffered log records to stable
    // storage so a post-run recovery sees the complete history.
    server.sync_wal();

    // --- Finish -----------------------------------------------------------
    let costs = server.costs();
    metrics.uplinks = costs.source_updates;
    metrics.probes = costs.probes;
    let work = server.work();
    metrics.stale_seq_drops = work.stale_seq_drops;
    metrics.lease_probes = work.lease_probes;
    metrics.regrants = work.regrants;
    metrics.channel_drops = channel.dropped;
    metrics.channel_duplicates = channel.duplicates;
    if channel_ideal {
        // The paper's cost metric counts server-received updates. On the
        // reliable channel sent and received differ only by reports still
        // in flight when the run ends (possible when τ > 0), which the
        // figures exclude — keep them bit-comparable. Under faults the
        // client radio pays for every transmission, so sends are charged.
        metrics.uplinks_sent = metrics.uplinks;
    }
    // Accuracy, total distance (recreated trajectories — the live clients
    // have forgotten early history), and the amortized comm figures.
    finalize(&mut metrics, acc.value(), cfg);
    metrics.cpu_seconds_per_tu = cpu / cfg.duration;
    metrics.work_units_per_tu =
        (server.index_visits() as f64 + server.work().safe_regions as f64) / cfg.duration;
    metrics.grid_footprint = server.grid_footprint();
    // Mirror the end-of-run channel and recovery tallies into the registry
    // so snapshots and timelines carry them next to the span timings.
    srb_obs::counter!("sim.channel.drops").add(channel.dropped);
    srb_obs::counter!("sim.channel.duplicates").add(channel.duplicates);
    srb_obs::counter!("sim.retransmissions").add(metrics.retransmissions);
    srb_obs::counter!("sim.regrants").add(work.regrants);
    srb_obs::counter!("sim.lease_probes").add(work.lease_probes);
    if let (Some(path), Some((lines, _))) = (cfg.timeline, timeline) {
        let mut body = lines.join("\n");
        body.push('\n');
        // Crash-safe write: a reader never sees a half-written timeline.
        if let Err(e) =
            srb_durable::atomic::atomic_write(std::path::Path::new(path), body.as_bytes())
        {
            eprintln!("[srb-sim] failed to write timeline {path}: {e}");
        }
    }
    metrics
}
