//! The SRB (safe-region-based) monitoring scheme, simulated end to end
//! (paper §7): faithful clients that report exactly on safe-region exit, a
//! configurable one-way communication delay `τ`, server-initiated probes
//! answered with true positions, and periodic ground-truth sampling for the
//! accuracy metric.

use crate::config::SimConfig;
use crate::events::EventQueue;
use crate::metrics::{AccuracyAcc, RunMetrics};
use crate::truth::{evaluate_truth, results_match};
use crate::workload::generate_workload;
use srb_core::{
    LocationProvider, ObjectId, QueryId, QuerySpec, Server, ServerConfig,
};
use srb_geom::{Point, Rect};
use srb_mobility::{MobileClient, MobilityConfig, Trajectory};
use std::time::Instant;

/// Minimum spacing enforced between consecutive updates of one client even
/// when `min_reaction` is zero, to let boundary-pinned objects make
/// geometric progress.
const EXIT_EPS: f64 = 1e-9;

/// Rounds a raw boundary-crossing time up to the next client check tick
/// (multiples of `g`); identity when `g == 0` (instant reaction).
fn check_tick(te: f64, g: f64) -> f64 {
    if g > 0.0 {
        (te / g).ceil() * g
    } else {
        te
    }
}

enum Ev {
    /// A client crosses its safe-region boundary (valid if `version`
    /// matches).
    Exit { id: u32, version: u64 },
    /// The server receives a source-initiated update (after
    /// the uplink delay).
    Recv { id: u32, pos: Point },
    /// A client receives its new safe region (after the downlink delay).
    Sr { id: u32, sr: Rect },
    /// Consult the server's deferred-probe queue.
    Deferred,
    /// Ground-truth sampling instant.
    Sample,
}

struct Provider<'a> {
    clients: &'a mut [MobileClient],
    now: f64,
    probed: Vec<u32>,
}

impl LocationProvider for Provider<'_> {
    fn probe(&mut self, id: ObjectId) -> Point {
        self.probed.push(id.0);
        self.clients[id.index()].position(self.now)
    }
}

/// Runs the SRB scheme and returns the aggregated metrics.
pub fn run_srb(cfg: &SimConfig) -> RunMetrics {
    let mob = MobilityConfig {
        space: cfg.space,
        mean_speed: cfg.mean_speed,
        mean_period: cfg.mean_period,
    };
    let server_cfg = ServerConfig {
        space: cfg.space,
        grid_m: cfg.grid_m,
        max_speed: cfg.reachability.then(|| cfg.max_speed()),
        steadiness: cfg.steadiness,
        cost: cfg.cost,
        ..Default::default()
    };
    let mut server = Server::new(server_cfg);
    let mut clients: Vec<MobileClient> = (0..cfg.n_objects)
        .map(|i| MobileClient::new(i as u32, Trajectory::random_waypoint(cfg.seed, i as u64, mob, 0.0)))
        .collect();
    let mut versions: Vec<u64> = vec![0; cfg.n_objects];
    let mut last_update: Vec<f64> = vec![0.0; cfg.n_objects];
    let mut cpu = 0.0f64;

    // --- Setup: register objects, then queries (instantaneous) -----------
    {
        let t0 = Instant::now();
        for i in 0..cfg.n_objects {
            let pos = clients[i].position(0.0);
            let mut provider = Provider { clients: &mut clients, now: 0.0, probed: Vec::new() };
            let sr = server.add_object(ObjectId(i as u32), pos, &mut provider, 0.0);
            clients[i].receive_safe_region(sr, 0.0);
        }
        cpu += t0.elapsed().as_secs_f64();
    }
    let specs = generate_workload(cfg);
    let mut queries: Vec<(QueryId, QuerySpec)> = Vec::with_capacity(specs.len());
    {
        let t0 = Instant::now();
        for spec in &specs {
            let mut provider = Provider { clients: &mut clients, now: 0.0, probed: Vec::new() };
            let resp = server.register_query(*spec, &mut provider, 0.0);
            for (oid, sr) in resp.safe_regions {
                clients[oid.index()].receive_safe_region(sr, 0.0);
                versions[oid.index()] += 1;
            }
            queries.push((resp.id, *spec));
        }
        cpu += t0.elapsed().as_secs_f64();
    }

    // --- Event loop -------------------------------------------------------
    let mut q: EventQueue<Ev> = EventQueue::new();
    for i in 0..cfg.n_objects {
        if let Some(te) = clients[i].next_report(0.0, cfg.duration) {
            q.push(check_tick(te, cfg.min_reaction), Ev::Exit { id: i as u32, version: versions[i] });
        }
    }
    // Sample times are computed as products (k * interval), bit-identical
    // to the check-tick arithmetic, so same-instant reports and samples tie
    // exactly and the class ordering (updates first) decides.
    let mut k = 1u64;
    while k as f64 * cfg.sample_interval <= cfg.duration + 1e-12 {
        q.push_class(k as f64 * cfg.sample_interval, 1, Ev::Sample);
        k += 1;
    }
    if let Some(due) = server.next_deferred_due() {
        q.push(due, Ev::Deferred);
    }

    let mut acc = AccuracyAcc::default();
    let mut metrics = RunMetrics::default();

    let mut event_count: u64 = 0;
    // Same-instant reports are batched and handed to the server together:
    // the batch path installs every reported position before reevaluating,
    // so no query is evaluated against a stale bound of a simultaneous
    // mover (the paper's sequential-processing assumption, upheld at tick
    // granularity).
    let mut batch: Vec<(ObjectId, Point)> = Vec::new();
    let mut batch_t = 0.0f64;
    macro_rules! flush_batch {
        () => {
            if !batch.is_empty() {
                let t0 = Instant::now();
                let resps = {
                    let mut provider =
                        Provider { clients: &mut clients, now: batch_t, probed: Vec::new() };
                    let resps = server.handle_location_updates(&batch, &mut provider, batch_t);
                    for &p in &provider.probed {
                        provider.clients[p as usize].mark_pending();
                    }
                    resps
                };
                cpu += t0.elapsed().as_secs_f64();
                // Only the uplink is delayed (§7.2: "the server receives the
                // location update τ time units after the client sends it");
                // responses are modeled as immediate.
                for (oid, resp) in resps {
                    q.push(batch_t, Ev::Sr { id: oid.0, sr: resp.safe_region });
                    for (other, sr) in resp.probed {
                        q.push(batch_t, Ev::Sr { id: other.0, sr });
                    }
                }
                if let Some(due) = server.next_deferred_due() {
                    q.push(due, Ev::Deferred);
                }
                batch.clear();
            }
        };
    }
    while let Some((t, ev)) = q.pop() {
        if t > cfg.duration + 1e-12 {
            break;
        }
        if !batch.is_empty() && (!matches!(ev, Ev::Recv { .. }) || t > batch_t + 1e-12) {
            flush_batch!();
        }
        event_count += 1;
        if event_count % 1_000_000 == 0 && std::env::var_os("SRB_TRACE").is_some() {
            eprintln!("[srb-sim] {event_count} events, t = {t:.6}, queue = {}", q.len());
        }
        match ev {
            Ev::Exit { id, version } => {
                let i = id as usize;
                if versions[i] != version {
                    continue; // stale: the safe region changed meanwhile
                }
                let pos = clients[i].position(t);
                // With a finite check granularity the client may have dipped
                // out and come back since the raw crossing: only report if
                // it is outside *now*.
                if let Some(sr) = clients[i].safe_region() {
                    if sr.contains_point(pos) {
                        if let Some(te) = clients[i].next_report(t + EXIT_EPS, cfg.duration) {
                            q.push(check_tick(te, cfg.min_reaction), Ev::Exit { id, version });
                        }
                        continue;
                    }
                }
                clients[i].mark_pending();
                q.push(t + cfg.delay, Ev::Recv { id, pos });
            }
            Ev::Recv { id, pos } => {
                last_update[id as usize] = t;
                batch_t = t;
                batch.push((ObjectId(id), pos));
                // Keep buffering only while more reports arrive at this
                // same instant; otherwise process now so clients resume
                // tracking without a gap.
                if q.peek_time().map_or(true, |nt| nt > t + 1e-12) {
                    flush_batch!();
                }
            }
            Ev::Sr { id, sr } => {
                let i = id as usize;
                versions[i] += 1;
                if clients[i].receive_safe_region(sr, t) {
                    let from = t.max(last_update[i] + EXIT_EPS);
                    if let Some(te) = clients[i].next_report(from, cfg.duration) {
                        let at = check_tick(te, cfg.min_reaction).max(last_update[i] + EXIT_EPS);
                        q.push(at, Ev::Exit { id, version: versions[i] });
                    }
                } else {
                    // Already outside the (stale) region: report again at
                    // the next check tick.
                    let at = check_tick(t + EXIT_EPS, cfg.min_reaction).max(t);
                    versions[i] += 1;
                    q.push(at, Ev::Exit { id, version: versions[i] });
                }
            }
            Ev::Deferred => {
                let due = server.next_deferred_due();
                match due {
                    Some(d) if d <= t + 1e-12 => {
                        let t0 = Instant::now();
                        let resps = {
                            let mut provider =
                                Provider { clients: &mut clients, now: t, probed: Vec::new() };
                            let resps = server.process_deferred(&mut provider, t);
                            for &p in &provider.probed {
                                provider.clients[p as usize].mark_pending();
                            }
                            resps
                        };
                        cpu += t0.elapsed().as_secs_f64();
                        for (oid, resp) in resps {
                            q.push(t, Ev::Sr { id: oid.0, sr: resp.safe_region });
                            for (other, sr) in resp.probed {
                                q.push(t, Ev::Sr { id: other.0, sr });
                            }
                        }
                    }
                    _ => {}
                }
                if let Some(d) = server.next_deferred_due() {
                    q.push(d, Ev::Deferred);
                }
            }
            Ev::Sample => {
                let positions: Vec<Point> =
                    (0..cfg.n_objects).map(|i| clients[i].position(t)).collect();
                let truth = evaluate_truth(&positions, &specs);
                for ((qid, spec), truth_row) in queries.iter().zip(truth.iter()) {
                    let monitored: Vec<u64> = server
                        .results(*qid)
                        .map(|r| r.iter().map(|o| o.0 as u64).collect())
                        .unwrap_or_default();
                    acc.record(results_match(spec, &monitored, truth_row));
                }
                metrics.samples += 1;
                let horizon = t - cfg.delay - 1.0;
                for c in clients.iter_mut() {
                    c.forget_before(horizon);
                }
            }
        }
    }

    flush_batch!();

    // --- Finish -----------------------------------------------------------
    metrics.accuracy = acc.value();
    let costs = server.costs();
    metrics.uplinks = costs.source_updates;
    metrics.probes = costs.probes;
    metrics.total_distance = clients
        .iter_mut()
        .map(|c| {
            // Recreate the trajectory to integrate the full arc length —
            // the live one has forgotten early history.
            let mut t = Trajectory::random_waypoint(cfg.seed, c.id as u64, mob, 0.0);
            t.distance_traveled(0.0, cfg.duration)
        })
        .sum();
    metrics.finish_comm(cfg.cost.c_l, cfg.cost.c_p, cfg.n_objects, cfg.duration);
    metrics.cpu_seconds_per_tu = cpu / cfg.duration;
    metrics.work_units_per_tu =
        (server.index_visits() as f64 + server.work().safe_regions as f64) / cfg.duration;
    metrics.grid_footprint = server.grid_footprint();
    if std::env::var_os("SRB_TRACE").is_some() {
        eprintln!("[srb-sim stats] {:?}", server.work());
    }
    metrics
}
