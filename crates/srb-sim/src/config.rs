//! Simulation configuration (paper Table 7.1).

use crate::channel::ChannelConfig;
use srb_core::{BackendConfig, CostModel, DurabilityConfig};
use srb_geom::Rect;
use srb_mobility::RetryPolicy;

/// Full parameter set of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of moving objects `N`.
    pub n_objects: usize,
    /// Number of registered queries `W` (half range, half order-sensitive
    /// kNN, as in §7.1).
    pub n_queries: usize,
    /// Mean object speed `v̄` (per time unit).
    pub mean_speed: f64,
    /// Mean constant movement period `t̄v`.
    pub mean_period: f64,
    /// Range query side-length scale `q_len` (sides drawn from
    /// `U[0.5·q_len, 1.5·q_len]`).
    pub q_len: f64,
    /// Maximum `k` for kNN queries (`k ~ U[1, k_max]`).
    pub k_max: usize,
    /// Grid resolution `M` of the query index.
    pub grid_m: usize,
    /// Simulated duration in logical time units.
    pub duration: f64,
    /// Interval at which ground truth is sampled for the accuracy metric
    /// (and at which OPT detects result changes).
    pub sample_interval: f64,
    /// One-way communication delay `τ` (§7.2); `0` models an ideal network.
    pub delay: f64,
    /// Master seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Enables the reachability-circle enhancement (§6.1) with the honest
    /// bound `V = 2·v̄`.
    pub reachability: bool,
    /// Steadiness `D` for the weighted-perimeter enhancement (§6.2).
    pub steadiness: Option<f64>,
    /// Wireless cost model.
    pub cost: CostModel,
    /// Monitored space.
    pub space: Rect,
    /// Minimum client turnaround between consecutive reports of the same
    /// client. `0` gives the idealized instant-reaction protocol (exact
    /// monitoring, but objects squeezed between near-equidistant ordered-kNN
    /// neighbors report at unbounded rates). The default of `0.05` models
    /// the finite client check granularity the paper's reported update
    /// rates imply (its SRB cost is below one update per client per time
    /// unit, which is impossible under instant reaction at its densities —
    /// see DESIGN.md §5).
    pub min_reaction: f64,
    /// Fault model of the wireless channel. The default
    /// ([`ChannelConfig::IDEAL`]) reproduces the paper's reliable network
    /// bit-for-bit; any fault makes clients retransmit unacknowledged
    /// reports per [`SimConfig::retry`].
    pub channel: ChannelConfig,
    /// Safe-region lease duration handed to the server
    /// ([`srb_core::ServerConfig::lease`]): after `lease` time units without
    /// contact the server probes the object, and the client re-requests a
    /// region it suspects expired. `None` (default) = leases never expire.
    pub lease: Option<f64>,
    /// Client retransmission policy for exit reports. Only consulted when
    /// [`SimConfig::channel`] is non-ideal.
    pub retry: RetryPolicy,
    /// Number of server shards for the SRB scheme
    /// ([`srb_core::ShardedServer`]). `1` (the default) runs the plain
    /// single-stack server bit-identically to the paper's setup.
    pub shards: usize,
    /// Object-index backend for the SRB scheme. [`paper_defaults`]
    /// (Self::paper_defaults) reads it from the `SRB_BACKEND` environment
    /// variable (`rstar`/unset = the paper's R\*-tree, `grid` = the
    /// uniform-grid backend), so the whole test/bench surface can run the
    /// backend matrix without code changes.
    pub backend: BackendConfig,
    /// When set, the SRB run appends one JSON line per ground-truth sample
    /// to this path: `{"t": <time>, "metrics": <telemetry diff>}`, where
    /// the diff covers the telemetry recorded since the previous sample
    /// (see `srb_obs::Snapshot::diff`). Telemetry is process-global, so
    /// run one simulation at a time when dumping a timeline. `None`
    /// (default) writes nothing.
    pub timeline: Option<&'static str>,
    /// Durability plane of the SRB server (write-ahead log +
    /// checkpoints). Off by default so the paper's in-memory semantics
    /// run with zero logging overhead; [`paper_defaults`]
    /// (Self::paper_defaults) reads `SRB_DURABLE=1` /
    /// `SRB_DURABLE_DIR` from the environment.
    pub durable: DurabilityConfig,
}

impl SimConfig {
    /// The paper's default settings (Table 7.1). A full run at this scale
    /// matches the paper's 5,000-time-unit experiments and takes a long
    /// time; the benches use [`bench_defaults`](Self::bench_defaults) unless
    /// `SRB_FULL_SCALE` is set.
    pub fn paper_defaults() -> Self {
        SimConfig {
            n_objects: 100_000,
            n_queries: 1_000,
            mean_speed: 0.01,
            mean_period: 0.005,
            q_len: 0.005,
            k_max: 10,
            grid_m: 50,
            duration: 5_000.0,
            sample_interval: 0.05,
            delay: 0.0,
            seed: 2005,
            reachability: false,
            steadiness: None,
            cost: CostModel::default(),
            space: Rect::UNIT,
            min_reaction: 0.05,
            channel: ChannelConfig::IDEAL,
            lease: None,
            retry: RetryPolicy::default(),
            shards: 1,
            backend: BackendConfig::from_env(),
            timeline: None,
            durable: DurabilityConfig::from_env(),
        }
    }

    /// Laptop-scale defaults preserving the paper's ratios: trends and
    /// relative costs stabilize well below the full scale (see DESIGN.md
    /// §5 for the substitution argument).
    pub fn bench_defaults() -> Self {
        SimConfig { n_objects: 4_000, n_queries: 100, duration: 10.0, ..Self::paper_defaults() }
    }

    /// Small configuration for unit/integration tests.
    pub fn test_defaults() -> Self {
        SimConfig {
            n_objects: 300,
            n_queries: 20,
            duration: 3.0,
            sample_interval: 0.1,
            grid_m: 20,
            ..Self::paper_defaults()
        }
    }

    /// The maximum speed implied by the mobility model (`2·v̄`).
    pub fn max_speed(&self) -> f64 {
        2.0 * self.mean_speed
    }

    /// The client's retransmission timeout for this configuration: the
    /// policy's base timeout plus a full round trip at worst-case jitter,
    /// so a retry never fires while the ACK could still be in flight.
    pub fn retry_timeout(&self) -> f64 {
        self.retry.timeout + 2.0 * (self.delay + self.channel.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_7_1() {
        let c = SimConfig::paper_defaults();
        assert_eq!(c.n_objects, 100_000);
        assert_eq!(c.n_queries, 1_000);
        assert_eq!(c.mean_speed, 0.01);
        assert_eq!(c.mean_period, 0.005);
        assert_eq!(c.q_len, 0.005);
        assert_eq!(c.k_max, 10);
        assert_eq!(c.grid_m, 50);
        assert_eq!(c.cost.c_l, 1.0);
        assert_eq!(c.cost.c_p, 1.5);
        assert!(c.channel.is_ideal(), "paper assumes a reliable channel");
        assert!(c.lease.is_none());
        assert_eq!(c.shards, 1, "the paper's server is unsharded");
        if std::env::var("SRB_BACKEND").is_err() {
            assert_eq!(c.backend.label(), "rstar", "default backend is the paper's R*-tree");
        }
        if std::env::var("SRB_DURABLE").is_err() {
            assert!(!c.durable.enabled(), "durability is off unless SRB_DURABLE=1");
        }
    }

    #[test]
    fn bench_defaults_shrink_but_keep_parameters() {
        let c = SimConfig::bench_defaults();
        assert!(c.n_objects < 100_000);
        assert_eq!(c.q_len, 0.005);
        assert_eq!(c.grid_m, 50);
        assert_eq!(c.max_speed(), 0.02);
    }
}
