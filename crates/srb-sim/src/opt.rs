//! The OPT baseline (paper §7): every client has perfect knowledge of all
//! queries and all other objects, so it sends a source-initiated update
//! *exactly* when its own movement changes some query result. Infeasible in
//! practice, OPT lower-bounds the update count and defines the ground truth
//! for the accuracy metric (its accuracy is 1 by construction).

use crate::config::SimConfig;
use crate::harness::{finalize, make_trajectories};
use crate::metrics::RunMetrics;
use crate::truth::evaluate_truth;
use crate::workload::generate_workload;
use srb_core::QuerySpec;
use srb_geom::Point;
use srb_mobility::Trajectory;

/// Runs the OPT scheme: result changes are detected at ground-truth sample
/// granularity; every object whose membership or rank changed in some query
/// sends exactly one update per change instant.
pub fn run_opt(cfg: &SimConfig) -> RunMetrics {
    let specs = generate_workload(cfg);
    let mut trajs: Vec<Trajectory> = make_trajectories(cfg);

    let mut metrics = RunMetrics::default();
    let positions0: Vec<Point> = trajs.iter_mut().map(|t| t.position(0.0)).collect();
    let mut prev = evaluate_truth(&positions0, &specs);
    let mut changed = vec![false; cfg.n_objects];

    let mut t = cfg.sample_interval;
    while t <= cfg.duration + 1e-12 {
        let positions: Vec<Point> = trajs.iter_mut().map(|tr| tr.position(t)).collect();
        let truth = evaluate_truth(&positions, &specs);
        changed.iter_mut().for_each(|c| *c = false);
        for ((spec, old), new) in specs.iter().zip(prev.iter()).zip(truth.iter()) {
            match spec {
                QuerySpec::Knn { order_sensitive: true, .. } => {
                    // Any rank or membership difference implicates the
                    // objects whose position in the sequence changed.
                    let max_len = old.len().max(new.len());
                    for idx in 0..max_len {
                        let a = old.get(idx);
                        let b = new.get(idx);
                        if a != b {
                            if let Some(&o) = a {
                                changed[o as usize] = true;
                            }
                            if let Some(&o) = b {
                                changed[o as usize] = true;
                            }
                        }
                    }
                }
                _ => {
                    // Set-membership changes only.
                    for &o in old {
                        if !new.contains(&o) {
                            changed[o as usize] = true;
                        }
                    }
                    for &o in new {
                        if !old.contains(&o) {
                            changed[o as usize] = true;
                        }
                    }
                }
            }
        }
        metrics.uplinks += changed.iter().filter(|&&c| c).count() as u64;
        metrics.samples += 1;
        prev = truth;
        for tr in trajs.iter_mut() {
            tr.forget_before(t - 1.0);
        }
        t += cfg.sample_interval;
    }

    metrics.probes = 0;
    // OPT is the clairvoyant lower bound; it is defined on the reliable
    // channel (a lossy OPT would not be optimal), so sent == received.
    metrics.uplinks_sent = metrics.uplinks;
    // Accuracy is 1 by construction: OPT's results *define* ground truth.
    finalize(&mut metrics, 1.0, cfg);
    metrics
}
