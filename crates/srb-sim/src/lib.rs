//! # srb-sim
//!
//! Discrete event-driven simulator reproducing the evaluation of
//! *A Generic Framework for Monitoring Continuous Spatial Queries over
//! Moving Objects* (SIGMOD 2005, §7).
//!
//! Three monitoring schemes are implemented:
//!
//! - [`run_srb`] — the paper's safe-region-based framework: event-driven
//!   clients report exactly on safe-region exit; probes and responses flow
//!   through an event queue with a configurable one-way delay `τ`;
//! - [`run_opt`] — the clairvoyant lower bound: one update per actual
//!   result change;
//! - [`run_prd`] — traditional periodic monitoring with interval `t_prd`:
//!   synchronized uplinks from all clients, full index rebuild (STR), full
//!   reevaluation.
//!
//! All runs are deterministic in [`SimConfig::seed`]; metrics follow §7.1
//! (accuracy, amortized communication cost with `c_l = 1`, `c_p = 1.5`,
//! CPU time per logical time unit).
//!
//! Beyond the paper, every message can be routed through a lossy
//! [`ChannelModel`] (loss, duplication, jitter, disconnect windows); SRB
//! then recovers via sequence numbers, safe-region leases, and client
//! retransmission — see `DESIGN.md` §9. The default [`ChannelConfig`] is
//! ideal and reproduces the paper bit-for-bit.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod channel;
mod config;
mod events;
mod harness;
mod metrics;
mod opt;
mod prd;
mod srb;
mod truth;
mod workload;

pub use channel::{ChannelConfig, ChannelModel};
pub use config::SimConfig;
pub use events::EventQueue;
pub use harness::{
    check_tick, golden_scenarios, run_scheme, total_distance, MonitoringScheme, Scheme, EXIT_EPS,
};
pub use metrics::{AccuracyAcc, RunMetrics};
pub use opt::run_opt;
pub use prd::run_prd;
pub use srb::{run_srb, run_srb_with};
pub use truth::{evaluate_truth, results_match, TruthResults};
pub use workload::generate_workload;
