//! The discrete-event queue: a min-heap on `(time, sequence)` with FIFO
//! tie-breaking, so zero-delay message chains process in causal order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event. `class` orders events at equal times: lower classes
/// first (e.g. location updates before metric samples).
struct Scheduled<E> {
    t: f64,
    class: u8,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t.total_cmp(&other.t).then(self.class.cmp(&other.class)).then(self.seq.cmp(&other.seq))
    }
}

/// A deterministic discrete-event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0.0 }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `ev` at time `t` (clamped to never precede `now`), in the
    /// default class 0.
    pub fn push(&mut self, t: f64, ev: E) {
        self.push_class(t, 0, ev);
    }

    /// Schedules `ev` at time `t` in an explicit tie-breaking class: at
    /// equal times, lower classes pop first.
    pub fn push_class(&mut self, t: f64, class: u8, ev: E) {
        let t = t.max(self.now);
        self.heap.push(Reverse(Scheduled { t, class, seq: self.seq, ev }));
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.t >= self.now);
        self.now = s.t;
        Some((s.t, s.ev))
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(s)| s.t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(2.0, "b");
        q.push(1.0, "a1");
        q.push(1.0, "a2");
        q.push(3.0, "c");
        assert_eq!(q.pop(), Some((1.0, "a1")));
        assert_eq!(q.pop(), Some((1.0, "a2")));
        assert_eq!(q.now(), 1.0);
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn classes_break_ties() {
        let mut q = EventQueue::new();
        q.push_class(1.0, 1, "sample");
        q.push(1.0, "update");
        assert_eq!(q.pop(), Some((1.0, "update")));
        assert_eq!(q.pop(), Some((1.0, "sample")));
    }

    #[test]
    fn push_in_the_past_is_clamped_to_now() {
        let mut q = EventQueue::new();
        q.push(5.0, "later");
        assert_eq!(q.pop(), Some((5.0, "later")));
        q.push(1.0, "too-early");
        assert_eq!(q.pop(), Some((5.0, "too-early")));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, 1);
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
    }
}
