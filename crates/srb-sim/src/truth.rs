//! Ground-truth evaluation: the exact results of every query given exact
//! object positions. This is what the OPT scheme "knows" (§7) and the
//! reference against which monitoring accuracy is measured.

use srb_core::QuerySpec;
use srb_geom::{Point, Rect};
use srb_index::{bulk_load, LeafEntry, TreeConfig};

/// Exact results for each query: object ids, distance-ordered for kNN.
pub type TruthResults = Vec<Vec<u64>>;

/// Evaluates every query against exact positions, using an STR-packed
/// R\*-tree (brute force would dominate the simulator's run time at larger
/// `N`).
pub fn evaluate_truth(positions: &[Point], queries: &[QuerySpec]) -> TruthResults {
    let entries: Vec<LeafEntry> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| LeafEntry { id: i as u64, rect: Rect::point(p) })
        .collect();
    let tree = bulk_load(entries, TreeConfig::default());
    queries
        .iter()
        .map(|q| match q {
            QuerySpec::Range { rect } => {
                let mut ids: Vec<u64> = tree.search_vec(rect).iter().map(|e| e.id).collect();
                ids.sort_unstable();
                ids
            }
            QuerySpec::Knn { center, k, .. } => {
                tree.nearest_iter(*center).take(*k).map(|n| n.id).collect()
            }
        })
        .collect()
}

/// Compares a monitored result list against the truth for accuracy
/// purposes: ranges and order-insensitive kNN as sets, order-sensitive kNN
/// as sequences (§7.1's `ma(Q, t)`).
pub fn results_match(spec: &QuerySpec, monitored: &[u64], truth: &[u64]) -> bool {
    match spec {
        QuerySpec::Range { .. } | QuerySpec::Knn { order_sensitive: false, .. } => {
            if monitored.len() != truth.len() {
                return false;
            }
            let mut a = monitored.to_vec();
            a.sort_unstable();
            // Truth for ranges is pre-sorted; sort anyway for kNN.
            let mut b = truth.to_vec();
            b.sort_unstable();
            a == b
        }
        QuerySpec::Knn { order_sensitive: true, .. } => monitored == truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions() -> Vec<Point> {
        vec![
            Point::new(0.1, 0.1),
            Point::new(0.2, 0.2),
            Point::new(0.8, 0.8),
            Point::new(0.85, 0.85),
        ]
    }

    #[test]
    fn truth_range() {
        let qs = vec![QuerySpec::range(Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5)))];
        let t = evaluate_truth(&positions(), &qs);
        assert_eq!(t[0], vec![0, 1]);
    }

    #[test]
    fn truth_knn_ordered() {
        let qs = vec![QuerySpec::knn(Point::new(1.0, 1.0), 3)];
        let t = evaluate_truth(&positions(), &qs);
        assert_eq!(t[0], vec![3, 2, 1]);
    }

    #[test]
    fn match_semantics() {
        let range = QuerySpec::range(Rect::UNIT);
        assert!(results_match(&range, &[2, 1], &[1, 2]));
        assert!(!results_match(&range, &[1], &[1, 2]));
        let ordered = QuerySpec::knn(Point::ORIGIN, 2);
        assert!(results_match(&ordered, &[3, 1], &[3, 1]));
        assert!(!results_match(&ordered, &[1, 3], &[3, 1]));
        let unordered = QuerySpec::knn_unordered(Point::ORIGIN, 2);
        assert!(results_match(&unordered, &[1, 3], &[3, 1]));
    }
}
