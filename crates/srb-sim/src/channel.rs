//! Lossy-channel fault injection (robustness extension; not in the paper).
//!
//! Every simulated message — client exit reports on the uplink, safe-region
//! grants on the downlink — can be passed through a [`ChannelModel`] that
//! drops, duplicates, or delays it, and that can take whole clients offline
//! for seeded disconnect windows. The model is deterministic in its seed
//! and, crucially, draws **no** random numbers when the configuration is
//! ideal, so fault-free runs are bit-identical to the paper figures.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fault parameters of the simulated wireless channel. The default
/// ([`ChannelConfig::IDEAL`]) delivers every message exactly once with no
/// extra delay — the paper's reliable-channel assumption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelConfig {
    /// Probability that a message is silently dropped.
    pub loss: f64,
    /// Probability that a delivered message arrives twice.
    pub duplication: f64,
    /// Maximum extra delivery delay; each delivered copy is delayed by an
    /// independent draw from `U[0, jitter]` on top of the base `τ`.
    pub jitter: f64,
    /// Expected number of disconnect windows per client per time unit.
    /// During a window every message to or from that client is dropped.
    pub outage_rate: f64,
    /// Duration of each disconnect window.
    pub outage_duration: f64,
}

impl ChannelConfig {
    /// The reliable channel: no loss, no duplication, no jitter, no
    /// outages. [`ChannelModel::transmit`] short-circuits on it without
    /// consuming randomness.
    pub const IDEAL: ChannelConfig = ChannelConfig {
        loss: 0.0,
        duplication: 0.0,
        jitter: 0.0,
        outage_rate: 0.0,
        outage_duration: 0.0,
    };

    /// A channel that only drops messages, with probability `loss`.
    pub fn lossy(loss: f64) -> Self {
        ChannelConfig { loss, ..Self::IDEAL }
    }

    /// True when the channel behaves exactly like the paper's reliable one.
    pub fn is_ideal(&self) -> bool {
        self.loss <= 0.0
            && self.duplication <= 0.0
            && self.jitter <= 0.0
            && (self.outage_rate <= 0.0 || self.outage_duration <= 0.0)
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::IDEAL
    }
}

/// Seeded fault injector shared by the uplink and downlink of one run.
///
/// Per-client disconnect windows are materialized up front (so a client's
/// outage schedule does not depend on its traffic); per-message faults are
/// drawn lazily from one `ChaCha8` stream in transmission order, which the
/// deterministic event queue makes reproducible.
pub struct ChannelModel {
    cfg: ChannelConfig,
    rng: ChaCha8Rng,
    /// Per-client sorted `(start, end)` disconnect windows.
    outages: Vec<Vec<(f64, f64)>>,
    /// Messages dropped (loss or outage).
    pub dropped: u64,
    /// Extra copies delivered due to duplication.
    pub duplicates: u64,
}

impl ChannelModel {
    /// Builds the channel for `n_clients` clients over `[0, duration]`.
    pub fn new(cfg: ChannelConfig, seed: u64, n_clients: usize, duration: f64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut outages = Vec::new();
        if cfg.outage_rate > 0.0 && cfg.outage_duration > 0.0 {
            outages.reserve(n_clients);
            for _ in 0..n_clients {
                let mut windows = Vec::new();
                // Exponential inter-arrival times give a Poisson process.
                let mut t = 0.0;
                loop {
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    t += -u.ln() / cfg.outage_rate;
                    if t >= duration {
                        break;
                    }
                    windows.push((t, t + cfg.outage_duration));
                    t += cfg.outage_duration;
                }
                outages.push(windows);
            }
        }
        ChannelModel { cfg, rng, outages, dropped: 0, duplicates: 0 }
    }

    /// The configuration this channel was built with.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// True when `client` is inside a disconnect window at `now`.
    pub fn in_outage(&self, client: usize, now: f64) -> bool {
        self.outages
            .get(client)
            .map(|ws| ws.iter().any(|&(s, e)| s <= now && now < e))
            .unwrap_or(false)
    }

    /// Transmits one message to or from `client` at time `now`. Returns the
    /// extra delays (beyond the base network delay) at which copies arrive:
    /// empty = dropped, one entry = normal delivery, two = duplicated.
    pub fn transmit(&mut self, client: usize, now: f64) -> Vec<f64> {
        if self.cfg.is_ideal() {
            return vec![0.0];
        }
        if self.in_outage(client, now) {
            self.dropped += 1;
            return Vec::new();
        }
        if self.cfg.loss > 0.0 && self.rng.gen::<f64>() < self.cfg.loss {
            self.dropped += 1;
            return Vec::new();
        }
        let copies = if self.cfg.duplication > 0.0 && self.rng.gen::<f64>() < self.cfg.duplication {
            self.duplicates += 1;
            2
        } else {
            1
        };
        (0..copies)
            .map(
                |_| {
                    if self.cfg.jitter > 0.0 {
                        self.rng.gen_range(0.0..self.cfg.jitter)
                    } else {
                        0.0
                    }
                },
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_channel_delivers_exactly_once_without_rng() {
        let mut a = ChannelModel::new(ChannelConfig::IDEAL, 7, 10, 100.0);
        let mut b = ChannelModel::new(ChannelConfig::IDEAL, 8, 10, 100.0);
        for i in 0..50 {
            assert_eq!(a.transmit(i % 10, i as f64), vec![0.0]);
            assert_eq!(b.transmit(i % 10, i as f64), vec![0.0]);
        }
        assert_eq!(a.dropped, 0);
        assert_eq!(a.duplicates, 0);
    }

    #[test]
    fn loss_rate_is_roughly_respected() {
        let mut c = ChannelModel::new(ChannelConfig::lossy(0.25), 42, 1, 1.0);
        let n = 10_000;
        let dropped = (0..n).filter(|_| c.transmit(0, 0.0).is_empty()).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed loss {rate}");
        assert_eq!(c.dropped, dropped as u64);
    }

    #[test]
    fn duplication_and_jitter_bound() {
        let cfg = ChannelConfig { duplication: 0.5, jitter: 0.1, ..ChannelConfig::IDEAL };
        let mut c = ChannelModel::new(cfg, 1, 1, 1.0);
        let mut seen_dup = false;
        for _ in 0..200 {
            let delays = c.transmit(0, 0.0);
            assert!(!delays.is_empty(), "no loss configured");
            assert!(delays.len() <= 2);
            seen_dup |= delays.len() == 2;
            for d in delays {
                assert!((0.0..0.1).contains(&d));
            }
        }
        assert!(seen_dup, "duplication at 50% must occur in 200 draws");
    }

    #[test]
    fn same_seed_same_faults() {
        let cfg = ChannelConfig { loss: 0.3, duplication: 0.2, jitter: 0.05, ..Default::default() };
        let mut a = ChannelModel::new(cfg, 99, 4, 10.0);
        let mut b = ChannelModel::new(cfg, 99, 4, 10.0);
        for i in 0..500 {
            assert_eq!(a.transmit(i % 4, 0.0), b.transmit(i % 4, 0.0));
        }
    }

    #[test]
    fn outage_windows_drop_everything_inside() {
        let cfg = ChannelConfig { outage_rate: 2.0, outage_duration: 0.5, ..ChannelConfig::IDEAL };
        let c = ChannelModel::new(cfg, 5, 8, 50.0);
        // Windows exist and respect their configured duration.
        let any = c.outages.iter().any(|w| !w.is_empty());
        assert!(any, "expected at least one outage window at rate 2/tu over 50 tu");
        for ws in &c.outages {
            for &(s, e) in ws {
                assert!((e - s - 0.5).abs() < 1e-12);
                assert!((0.0..50.0).contains(&s));
            }
        }
        let mut c = c;
        if let Some((client, &(s, _))) =
            c.outages.iter().enumerate().find_map(|(i, w)| w.first().map(|f| (i, f)))
        {
            assert!(c.in_outage(client, s + 0.1));
            assert!(c.transmit(client, s + 0.1).is_empty());
        }
    }
}
