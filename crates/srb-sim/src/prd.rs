//! The PRD (periodic monitoring) baseline (paper §7): every client sends a
//! location update every `t_prd` time units, synchronized; the server
//! builds a fresh R*-tree from the exact positions (by insertion, as the
//! paper describes) and reevaluates every registered query from scratch.
//! Results are stale between rounds — the source of PRD's accuracy gap.

use crate::config::SimConfig;
use crate::harness::{finalize, make_channel, make_trajectories, score_sample};
use crate::metrics::{AccuracyAcc, RunMetrics};
use crate::truth::{evaluate_truth, TruthResults};
use crate::workload::generate_workload;
use srb_core::QuerySpec;
use srb_geom::{Point, Rect};
use srb_index::{RStarTree, TreeConfig};
use srb_mobility::Trajectory;
use std::time::Instant;

/// One PRD server round, as the paper describes it (§7.3): build a fresh
/// R*-tree from the exact positions by insertion ("they need to build a new
/// R*-tree for query reevaluation at each location updating instance") and
/// evaluate every registered query on it. STR bulk loading would be much
/// faster — see the `ablation_index_build` bench — but would misrepresent
/// the baseline the paper measured.
fn prd_round(positions: &[Point], queries: &[QuerySpec]) -> TruthResults {
    let mut tree = RStarTree::new(TreeConfig::default());
    for (i, &p) in positions.iter().enumerate() {
        tree.insert(i as u64, Rect::point(p));
    }
    queries
        .iter()
        .map(|q| match q {
            QuerySpec::Range { rect } => {
                let mut ids: Vec<u64> = tree.search_vec(rect).iter().map(|e| e.id).collect();
                ids.sort_unstable();
                ids
            }
            QuerySpec::Knn { center, k, .. } => {
                tree.nearest_iter(*center).take(*k).map(|n| n.id).collect()
            }
        })
        .collect()
}

/// Runs the PRD scheme with update interval `t_prd`.
pub fn run_prd(cfg: &SimConfig, t_prd: f64) -> RunMetrics {
    assert!(t_prd > 0.0, "PRD interval must be positive");
    let specs = generate_workload(cfg);
    let mut trajs: Vec<Trajectory> = make_trajectories(cfg);

    let mut metrics = RunMetrics::default();
    let mut acc = AccuracyAcc::default();
    let mut cpu = 0.0f64;
    // PRD has no ACK/retry protocol: a lost round update simply leaves the
    // server evaluating that client at its last delivered position until
    // the next round — the scheme's natural (and only) recovery path.
    let mut channel = make_channel(cfg);

    // Merge round instants and sample instants into one monotone walk.
    // `current` holds the results computed at the latest round whose
    // arrival time (round + delay) is in the past. `last_known` is the
    // server's view of each client (initial registration is reliable).
    let mut last_known: Vec<Point> = trajs.iter_mut().map(|t| t.position(0.0)).collect();
    let mut current = {
        let t0 = Instant::now();
        let r = prd_round(&last_known, &specs);
        cpu += t0.elapsed().as_secs_f64();
        metrics.uplinks += cfg.n_objects as u64;
        metrics.uplinks_sent += cfg.n_objects as u64;
        r
    };
    let mut pending: Option<(f64, Vec<Vec<u64>>)> = None;

    let mut next_round = t_prd;
    let mut next_sample = cfg.sample_interval;
    while next_round <= cfg.duration + 1e-12 || next_sample <= cfg.duration + 1e-12 {
        let t = next_round.min(next_sample);
        if t > cfg.duration + 1e-12 {
            break;
        }
        // Deliver a pending round whose results have arrived by `t`.
        if let Some((arrive, _)) = pending {
            if arrive <= t {
                current = pending.take().expect("checked").1;
            }
        }
        if (t - next_round).abs() < 1e-12 {
            // Synchronized update round: every client uplinks (and pays for
            // the send); the server rebuilds from whatever arrived, keeping
            // the last delivered position of clients whose update was lost.
            for (i, tr) in trajs.iter_mut().enumerate() {
                metrics.uplinks_sent += 1;
                if channel.transmit(i, t).is_empty() {
                    continue;
                }
                metrics.uplinks += 1;
                last_known[i] = tr.position(t);
            }
            let t0 = Instant::now();
            let results = prd_round(&last_known, &specs);
            cpu += t0.elapsed().as_secs_f64();
            if cfg.delay == 0.0 {
                current = results;
            } else {
                // A still-undelivered older round is superseded.
                pending = Some((t + cfg.delay, results));
            }
            next_round += t_prd;
        } else {
            // Accuracy sample.
            let positions: Vec<Point> = trajs.iter_mut().map(|tr| tr.position(t)).collect();
            let truth = evaluate_truth(&positions, &specs);
            score_sample(&mut acc, &specs, &current, &truth);
            metrics.samples += 1;
            for tr in trajs.iter_mut() {
                tr.forget_before(t - cfg.delay - 1.0);
            }
            next_sample += cfg.sample_interval;
        }
    }

    metrics.probes = 0;
    metrics.channel_drops = channel.dropped;
    metrics.channel_duplicates = channel.duplicates;
    finalize(&mut metrics, acc.value(), cfg);
    metrics.cpu_seconds_per_tu = cpu / cfg.duration;
    metrics
}
