//! Deterministic query-workload generation (paper §7.1): `W` queries, half
//! continuous range queries (squares with side `U[0.5·q_len, 1.5·q_len]`),
//! half order-sensitive kNN queries with `k ~ U[1, k_max]`.

use crate::config::SimConfig;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use srb_core::QuerySpec;
use srb_geom::{Point, Rect};

/// Generates the workload for a run. The generator stream is independent of
/// the mobility streams (different seed derivation), so changing `N` does
/// not change the queries.
pub fn generate_workload(cfg: &SimConfig) -> Vec<QuerySpec> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ 0x9E6D);
    let mut out = Vec::with_capacity(cfg.n_queries);
    for i in 0..cfg.n_queries {
        if i % 2 == 0 {
            // Range query: square with side U[0.5, 1.5]·q_len, clipped to
            // the space.
            let side = cfg.q_len * (0.5 + rng.gen::<f64>());
            let cx = cfg.space.min().x + rng.gen::<f64>() * cfg.space.width();
            let cy = cfg.space.min().y + rng.gen::<f64>() * cfg.space.height();
            let rect = Rect::centered(Point::new(cx, cy), side / 2.0, side / 2.0)
                .intersection(&cfg.space)
                .expect("center inside space");
            out.push(QuerySpec::range(rect));
        } else {
            let k = 1 + (rng.gen::<f64>() * cfg.k_max as f64) as usize;
            let k = k.min(cfg.k_max).max(1);
            let cx = cfg.space.min().x + rng.gen::<f64>() * cfg.space.width();
            let cy = cfg.space.min().y + rng.gen::<f64>() * cfg.space.height();
            out.push(QuerySpec::knn(Point::new(cx, cy), k));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let cfg = SimConfig::test_defaults();
        assert_eq!(generate_workload(&cfg), generate_workload(&cfg));
    }

    #[test]
    fn workload_half_range_half_knn() {
        let cfg = SimConfig { n_queries: 100, ..SimConfig::test_defaults() };
        let w = generate_workload(&cfg);
        let ranges = w.iter().filter(|q| matches!(q, QuerySpec::Range { .. })).count();
        assert_eq!(ranges, 50);
        for q in &w {
            match q {
                QuerySpec::Range { rect } => {
                    assert!(cfg.space.contains_rect(rect));
                    assert!(rect.width() <= 1.5 * cfg.q_len + 1e-12);
                }
                QuerySpec::Knn { k, order_sensitive, center } => {
                    assert!(*k >= 1 && *k <= cfg.k_max);
                    assert!(order_sensitive);
                    assert!(cfg.space.contains_point(*center));
                }
            }
        }
    }

    #[test]
    fn workload_independent_of_object_count() {
        let a = SimConfig { n_objects: 10, ..SimConfig::test_defaults() };
        let b = SimConfig { n_objects: 100_000, ..SimConfig::test_defaults() };
        assert_eq!(generate_workload(&a), generate_workload(&b));
    }
}
