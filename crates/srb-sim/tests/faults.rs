//! Fault-injection tests: the lossy channel, sequence-number dedup, lease
//! recovery, and graceful degradation of the SRB scheme under message loss.

use proptest::prelude::*;
use srb_core::{
    FnProvider, ObjectId, QuerySpec, SequencedUpdate, Server, ServerConfig, ServerError,
};
use srb_geom::{Point, Rect};
use srb_mobility::RetryPolicy;
use srb_sim::{run_prd, run_srb, ChannelConfig, SimConfig};

fn faults_cfg() -> SimConfig {
    SimConfig {
        n_objects: 150,
        n_queries: 10,
        duration: 3.0,
        sample_interval: 0.1,
        grid_m: 20,
        seed: 20,
        ..SimConfig::paper_defaults()
    }
}

// ---------------------------------------------------------------------------
// Server-level hardening
// ---------------------------------------------------------------------------

#[test]
fn unknown_object_update_is_an_error_not_a_panic() {
    let mut server = Server::with_defaults();
    let mut provider = FnProvider(|_| Point::new(0.5, 0.5));
    let err = server
        .handle_location_update(ObjectId(7), Point::new(0.5, 0.5), &mut provider, 0.0)
        .unwrap_err();
    assert_eq!(err, ServerError::UnknownObject(ObjectId(7)));

    // The batch path drops and counts instead of failing the whole batch.
    let resps =
        server.handle_location_updates(&[(ObjectId(7), Point::new(0.5, 0.5))], &mut provider, 0.0);
    assert!(resps.is_empty());
    assert_eq!(server.work().unknown_object_drops, 1);
}

#[test]
fn duplicate_registration_is_rejected() {
    let mut server = Server::with_defaults();
    let mut provider = FnProvider(|_| Point::new(0.5, 0.5));
    server.add_object(ObjectId(0), Point::new(0.2, 0.2), &mut provider, 0.0).unwrap();
    let err = server.add_object(ObjectId(0), Point::new(0.8, 0.8), &mut provider, 0.0).unwrap_err();
    assert_eq!(err, ServerError::DuplicateObject(ObjectId(0)));
    // Replayed registration must not have moved the object.
    assert_eq!(server.last_known(ObjectId(0)).unwrap().0, Point::new(0.2, 0.2));
}

#[test]
fn duplicate_sequenced_update_is_dropped_and_regranted() {
    let mut server = Server::with_defaults();
    let mut provider = FnProvider(|_| Point::new(0.5, 0.5));
    server.add_object(ObjectId(0), Point::new(0.2, 0.2), &mut provider, 0.0).unwrap();
    server.add_object(ObjectId(1), Point::new(0.8, 0.8), &mut provider, 0.0).unwrap();

    let u = SequencedUpdate { id: ObjectId(0), pos: Point::new(0.4, 0.4), seq: 1 };
    let r1 = server.handle_sequenced_updates(&[u], &mut provider, 0.1);
    assert_eq!(r1.len(), 1);
    assert_eq!(server.costs().source_updates, 1);

    // The channel delivered a second copy later: dropped idempotently, but
    // answered with the *current* safe region so a client whose grant was
    // lost still converges.
    let r2 = server.handle_sequenced_updates(&[u], &mut provider, 0.2);
    assert_eq!(server.costs().source_updates, 1, "duplicate must not be charged");
    assert_eq!(server.work().stale_seq_drops, 1);
    assert_eq!(server.work().regrants, 1);
    assert_eq!(r2.len(), 1);
    assert_eq!(r2[0].1.safe_region, server.safe_region(ObjectId(0)).unwrap());
    assert_eq!(server.last_known(ObjectId(0)).unwrap().0, Point::new(0.4, 0.4));

    // A reordered (older-than-accepted) sequence number behaves the same.
    let stale = SequencedUpdate { id: ObjectId(0), pos: Point::new(0.9, 0.9), seq: 0 };
    server.handle_sequenced_updates(&[stale], &mut provider, 0.3);
    assert_eq!(server.work().stale_seq_drops, 2);
    assert_eq!(server.last_known(ObjectId(0)).unwrap().0, Point::new(0.4, 0.4));
    server.check_invariants();
}

#[test]
fn in_batch_duplicates_accept_first_copy_only() {
    let mut server = Server::with_defaults();
    let mut provider = FnProvider(|_| Point::new(0.5, 0.5));
    for i in 0..3u32 {
        server
            .add_object(ObjectId(i), Point::new(0.1 + 0.3 * i as f64, 0.5), &mut provider, 0.0)
            .unwrap();
    }
    let u = SequencedUpdate { id: ObjectId(1), pos: Point::new(0.45, 0.5), seq: 1 };
    let resps = server.handle_sequenced_updates(&[u, u], &mut provider, 0.1);
    assert_eq!(server.costs().source_updates, 1);
    assert_eq!(server.work().stale_seq_drops, 1);
    // One accepted response plus one regrant, both for object 1.
    assert_eq!(resps.len(), 2);
    assert!(resps.iter().all(|(oid, _)| *oid == ObjectId(1)));
    server.check_invariants();
}

/// The deterministic lost-exit-report replay: a client leaves its safe
/// region but the report never arrives. Without leases the server would
/// trust the stale safe region forever; with a lease it probes the silent
/// object when the lease lapses and repairs the query result.
#[test]
fn lease_probe_recovers_dropped_exit_report() {
    let mut server = Server::new(ServerConfig { lease: Some(1.0), ..Default::default() });
    // True world state, mutated to simulate movement the server never hears
    // about.
    let mut world = vec![Point::new(0.30, 0.50), Point::new(0.70, 0.50)];
    {
        let w = world.clone();
        let mut provider = FnProvider(move |id: ObjectId| w[id.index()]);
        for (i, &p) in world.iter().enumerate() {
            server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
        }
    }
    let qid = {
        let w = world.clone();
        let mut provider = FnProvider(move |id: ObjectId| w[id.index()]);
        let resp = server.register_query(
            QuerySpec::range(Rect::new(Point::new(0.25, 0.45), Point::new(0.45, 0.55))),
            &mut provider,
            0.0,
        );
        assert_eq!(resp.results, vec![ObjectId(0)]);
        resp.id
    };

    // Object 0 wanders far out of the query (and its safe region). Its exit
    // report is dropped by the channel: the server is never told.
    world[0] = Point::new(0.60, 0.50);
    assert_eq!(server.results(qid).unwrap(), &[ObjectId(0)], "stale result before recovery");

    // The lease lapses one time unit after last contact.
    let due = server.next_deferred_due().expect("lease timer scheduled");
    assert!((due - 1.0).abs() < 1e-9, "lease due at t_lst + lease, got {due}");

    let w = world.clone();
    let mut provider = FnProvider(move |id: ObjectId| w[id.index()]);
    let resps = server.process_deferred(&mut provider, due);
    // Both objects registered at t = 0, so both leases lapse together and
    // both silent objects are probed.
    assert_eq!(server.work().lease_probes, 2);
    assert!(resps.iter().any(|(oid, _)| *oid == ObjectId(0)), "silent object probed");
    assert!(server.results(qid).unwrap().is_empty(), "result repaired after lease probe");
    server.check_invariants();

    // Contact renews the lease: a fresh timer is pending for the probed
    // object, due one lease after the probe.
    let due2 = server.next_deferred_due().expect("lease renewed");
    assert!(due2 > due + 0.5);
}

#[test]
fn contact_renews_lease_without_probing() {
    let mut server = Server::new(ServerConfig { lease: Some(0.5), ..Default::default() });
    let mut provider = FnProvider(|_| Point::new(0.5, 0.5));
    server.add_object(ObjectId(0), Point::new(0.5, 0.5), &mut provider, 0.0).unwrap();
    // The client reports (voluntarily) every 0.4 < lease: the old timer goes
    // stale on every contact and no lease probe ever fires.
    for k in 1..=5 {
        let t = 0.4 * k as f64;
        let u = SequencedUpdate { id: ObjectId(0), pos: Point::new(0.5, 0.5), seq: k };
        server.handle_sequenced_updates(&[u], &mut provider, t);
        server.process_deferred(&mut provider, t);
    }
    assert_eq!(server.work().lease_probes, 0);
    assert_eq!(server.costs().probes, 0);
}

// ---------------------------------------------------------------------------
// Simulation-level fault behavior
// ---------------------------------------------------------------------------

#[test]
fn faulty_runs_are_deterministic_in_the_seed() {
    let cfg = SimConfig {
        channel: ChannelConfig {
            loss: 0.10,
            duplication: 0.05,
            jitter: 0.02,
            ..ChannelConfig::IDEAL
        },
        lease: Some(0.5),
        ..faults_cfg()
    };
    let a = run_srb(&cfg);
    let b = run_srb(&cfg);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.uplinks, b.uplinks);
    assert_eq!(a.uplinks_sent, b.uplinks_sent);
    assert_eq!(a.retransmissions, b.retransmissions);
    assert_eq!(a.probes, b.probes);
    assert_eq!(a.stale_seq_drops, b.stale_seq_drops);
    assert_eq!(a.lease_probes, b.lease_probes);
    assert_eq!(a.channel_drops, b.channel_drops);
}

#[test]
fn ideal_channel_has_no_fault_traffic() {
    let m = run_srb(&faults_cfg());
    assert_eq!(m.accuracy, 1.0, "reliable channel keeps SRB exact");
    assert_eq!(m.uplinks_sent, m.uplinks, "no retransmissions, no losses");
    assert_eq!(m.retransmissions, 0);
    assert_eq!(m.stale_seq_drops, 0);
    assert_eq!(m.lease_probes, 0);
    assert_eq!(m.regrants, 0);
    assert_eq!(m.channel_drops, 0);
}

#[test]
fn srb_with_leases_degrades_gracefully_at_5pct_loss() {
    let cfg = SimConfig {
        channel: ChannelConfig::lossy(0.05),
        lease: Some(0.5),
        retry: RetryPolicy { timeout: 0.1, max_retries: 6 },
        ..faults_cfg()
    };
    let m = run_srb(&cfg);
    assert!(
        m.accuracy >= 0.90,
        "5% loss with lease recovery must keep accuracy >= 0.90, got {}",
        m.accuracy
    );
    assert!(m.uplinks_sent >= m.uplinks, "sends include lost messages");
    assert!(m.channel_drops > 0, "at 5% loss some messages must drop");
}

#[test]
fn accuracy_degrades_monotonically_in_loss() {
    // Tolerance-based: different loss rates consume the fault RNG stream
    // differently, so monotonicity holds up to sampling noise.
    const TOL: f64 = 0.03;
    let mut prev = f64::INFINITY;
    for loss in [0.0, 0.05, 0.25] {
        let cfg =
            SimConfig { channel: ChannelConfig::lossy(loss), lease: Some(0.5), ..faults_cfg() };
        let m = run_srb(&cfg);
        assert!(
            m.accuracy <= prev + TOL,
            "accuracy {} at loss {loss} above previous {prev}",
            m.accuracy
        );
        prev = m.accuracy;
    }
    assert!(prev < 1.0, "25% loss must show measurable degradation");
}

#[test]
fn prd_loses_accuracy_under_loss_but_still_runs() {
    let base = faults_cfg();
    let clean = run_prd(&base, 0.1);
    let lossy = run_prd(&SimConfig { channel: ChannelConfig::lossy(0.25), ..base }, 0.1);
    assert!(lossy.accuracy <= clean.accuracy + 1e-9);
    assert!(lossy.channel_drops > 0);
    assert_eq!(lossy.uplinks_sent, clean.uplinks_sent, "PRD clients send every round regardless");
    assert!(lossy.uplinks < lossy.uplinks_sent);
}

#[test]
fn outages_disconnect_clients_without_breaking_the_run() {
    let cfg = SimConfig {
        channel: ChannelConfig { outage_rate: 0.5, outage_duration: 0.3, ..ChannelConfig::IDEAL },
        lease: Some(0.5),
        ..faults_cfg()
    };
    let m = run_srb(&cfg);
    assert!(m.accuracy > 0.5, "outages degrade but must not destroy monitoring");
    assert!(m.samples > 0);
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded fault schedule completes without panicking and yields a
    /// sane metric set.
    #[test]
    fn random_fault_schedules_never_panic(
        seed in 0u64..1_000,
        loss in 0.0f64..0.4,
        duplication in 0.0f64..0.3,
        jitter in 0.0f64..0.05,
        lease in prop::option::of(0.2f64..1.5),
    ) {
        let cfg = SimConfig {
            n_objects: 60,
            n_queries: 6,
            duration: 1.5,
            sample_interval: 0.25,
            grid_m: 10,
            seed,
            channel: ChannelConfig { loss, duplication, jitter, ..ChannelConfig::IDEAL },
            lease,
            ..SimConfig::paper_defaults()
        };
        let m = run_srb(&cfg);
        prop_assert!((0.0..=1.0).contains(&m.accuracy));
        prop_assert!(m.uplinks_sent >= m.uplinks);
        prop_assert!(m.samples > 0);
    }

    /// Random sequenced-update batches — including replays, reorderings and
    /// unknown ids — never corrupt server state.
    #[test]
    fn random_sequenced_batches_keep_invariants(
        seed in 0u64..10_000,
        steps in 1usize..10,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 25usize;
        let mut world: Vec<Point> =
            (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect();
        let mut seqs = vec![0u64; n];
        let mut server = Server::new(ServerConfig {
            lease: if rng.gen::<bool>() { Some(0.4) } else { None },
            ..Default::default()
        });
        {
            let w = world.clone();
            let mut provider = FnProvider(move |id: ObjectId| w[id.index()]);
            for (i, &p) in world.iter().enumerate() {
                server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).unwrap();
            }
            for k in 0..4 {
                let c = Point::new(rng.gen(), rng.gen());
                let spec = if k % 2 == 0 {
                    QuerySpec::range(
                        Rect::centered(c, 0.1, 0.1).intersection(&Rect::UNIT).unwrap(),
                    )
                } else {
                    QuerySpec::knn(c, 1 + k)
                };
                server.register_query(spec, &mut provider, 0.0);
            }
        }
        for step in 1..=steps {
            let now = step as f64 * 0.2;
            let mut batch = Vec::new();
            for i in 0..n {
                if rng.gen::<f64>() < 0.4 {
                    let p = world[i];
                    world[i] = Point::new(
                        (p.x + rng.gen::<f64>() * 0.1 - 0.05).clamp(0.0, 1.0),
                        (p.y + rng.gen::<f64>() * 0.1 - 0.05).clamp(0.0, 1.0),
                    );
                    seqs[i] += 1;
                    let u = SequencedUpdate { id: ObjectId(i as u32), pos: world[i], seq: seqs[i] };
                    batch.push(u);
                    if rng.gen::<f64>() < 0.3 {
                        batch.push(u); // channel duplicate
                    }
                    if seqs[i] > 1 && rng.gen::<f64>() < 0.2 {
                        // replay of an old report
                        batch.push(SequencedUpdate {
                            id: ObjectId(i as u32),
                            pos: p,
                            seq: seqs[i] - 1,
                        });
                    }
                }
            }
            // An unregistered straggler, occasionally.
            if rng.gen::<f64>() < 0.3 {
                batch.push(SequencedUpdate {
                    id: ObjectId((n + 5) as u32),
                    pos: Point::new(0.5, 0.5),
                    seq: 1,
                });
            }
            let w = world.clone();
            let mut provider = FnProvider(move |id: ObjectId| w[id.index()]);
            server.handle_sequenced_updates(&batch, &mut provider, now);
            server.process_deferred(&mut provider, now);
            server.check_invariants();
        }
        // Exactly one accepted update per client-side sequence increment:
        // every duplicate and replay was rejected, every fresh report
        // accepted.
        let assigned: u64 = seqs.iter().sum();
        prop_assert_eq!(server.costs().source_updates, assigned);
    }
}
