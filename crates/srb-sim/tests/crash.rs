//! Crash-injection harness: proves recovery is bit-identical at every
//! fsync/rename boundary of the durability plane.
//!
//! The method is a golden-digest prefix table. One uninterrupted run with
//! durability OFF records the state digest after every logged operation
//! of a deterministic script. Each crash run arms one [`CrashPoint`] (the
//! `nth` time it is reached), drives the same script until the WAL
//! poisons, drops the server cold (losing every unsynced buffer, exactly
//! like a power cut), recovers from disk, and locates the recovered
//! digest in the golden table — recovery must land on *some* completed
//! prefix of the script, never a torn intermediate state. The remaining
//! operations are then re-driven and the final digest must equal the
//! golden run's, operation for operation and bit for bit.
//!
//! The same matrix runs on the plain [`Server`] (one log) and a 2-shard
//! [`ShardedServer`] (per-shard partition logs + a coordinator marker
//! log), plus a grid-backend round trip and a corruption fuzzer that
//! bit-flips and truncates every file in the store — recovery may refuse
//! (an error is a fine answer to a mangled disk) but must never panic.

use srb_core::{
    BackendConfig, CrashPoint, DurabilityConfig, FnProvider, GridConfig, LocationProvider,
    ObjectId, QueryId, QuerySpec, RecoveryError, Server, ServerConfig, ShardedServer, SyncPolicy,
    UniformGrid,
};
use srb_durable::crash;
use srb_geom::{Point, Rect};
use srb_index::SpatialBackend;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Objects seeded by the script's opening rounds.
const N_OBJ: u64 = 16;
/// Rounds in the script (each round expands to 1–2 primitive ops).
const N_ROUNDS: u64 = 64;

fn scratch(tag: &str) -> &'static str {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "srb-crash-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    Box::leak(d.to_string_lossy().into_owned().into_boxed_str())
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn frac(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The whole world is this pure function: where object `id` is at round
/// `r`. Golden run, crash run, and post-recovery resume all agree on it.
fn pos_at(id: u64, r: u64) -> Point {
    let h = splitmix(id.wrapping_mul(0x0100_0000_01B3).wrapping_add(r));
    Point::new(frac(h), frac(splitmix(h)))
}

fn spec_at(r: u64) -> QuerySpec {
    let cx = frac(splitmix(r.wrapping_mul(3).wrapping_add(1))) * 0.8 + 0.1;
    let cy = frac(splitmix(r.wrapping_mul(3).wrapping_add(2))) * 0.8 + 0.1;
    let c = Point::new(cx, cy);
    match r % 4 {
        0 | 2 => QuerySpec::range(
            Rect::centered(c, 0.07, 0.07).intersection(&Rect::UNIT).unwrap_or(Rect::point(c)),
        ),
        1 => QuerySpec::knn(c, 1 + (splitmix(r) % 4) as usize),
        _ => QuerySpec::knn_unordered(c, 1 + (splitmix(r) % 4) as usize),
    }
}

/// The two engines under test, behind one face so the script and the
/// crash loop are written once.
trait Engine: Sized {
    fn build(config: ServerConfig) -> Self;
    fn recover(config: ServerConfig) -> Result<(Self, usize), RecoveryError>;
    fn digest(&self) -> u64;
    fn poisoned(&self) -> bool;
    fn sync(&mut self);
    fn deep_check(&self);
    fn add_object(&mut self, id: ObjectId, pos: Point, p: &mut dyn LocationProvider, now: f64);
    fn remove_object(&mut self, id: ObjectId, p: &mut dyn LocationProvider, now: f64);
    fn register_query(&mut self, spec: QuerySpec, p: &mut dyn LocationProvider, now: f64);
    fn deregister_query(&mut self, id: QueryId);
    fn single_update(&mut self, id: ObjectId, pos: Point, p: &mut dyn LocationProvider, now: f64);
    fn raw_batch(&mut self, ups: &[(ObjectId, Point)], p: &mut dyn LocationProvider, now: f64);
    fn next_due(&mut self);
    fn process_deferred(&mut self, p: &mut dyn LocationProvider, now: f64);
}

impl<B: SpatialBackend> Engine for Server<B> {
    fn build(config: ServerConfig) -> Self {
        Server::with_backend(config)
    }
    fn recover(config: ServerConfig) -> Result<(Self, usize), RecoveryError> {
        Server::recover(config)
    }
    fn digest(&self) -> u64 {
        self.state_digest()
    }
    fn poisoned(&self) -> bool {
        self.wal_poisoned()
    }
    fn sync(&mut self) {
        self.sync_wal();
    }
    fn deep_check(&self) {
        self.check_invariants_deep();
    }
    fn add_object(&mut self, id: ObjectId, pos: Point, p: &mut dyn LocationProvider, now: f64) {
        let _ = Server::add_object(self, id, pos, p, now);
    }
    fn remove_object(&mut self, id: ObjectId, p: &mut dyn LocationProvider, now: f64) {
        let _ = Server::remove_object(self, id, p, now);
    }
    fn register_query(&mut self, spec: QuerySpec, p: &mut dyn LocationProvider, now: f64) {
        let _ = Server::register_query(self, spec, p, now);
    }
    fn deregister_query(&mut self, id: QueryId) {
        let _ = Server::deregister_query(self, id);
    }
    fn single_update(&mut self, id: ObjectId, pos: Point, p: &mut dyn LocationProvider, now: f64) {
        let _ = Server::handle_location_update(self, id, pos, p, now);
    }
    fn raw_batch(&mut self, ups: &[(ObjectId, Point)], p: &mut dyn LocationProvider, now: f64) {
        let _ = Server::handle_location_updates(self, ups, p, now);
    }
    fn next_due(&mut self) {
        let _ = Server::next_deferred_due(self);
    }
    fn process_deferred(&mut self, p: &mut dyn LocationProvider, now: f64) {
        let _ = Server::process_deferred(self, p, now);
    }
}

/// Shard count for the sharded half of the matrix.
const SHARDS: usize = 2;

impl<B: SpatialBackend> Engine for ShardedServer<B> {
    fn build(config: ServerConfig) -> Self {
        ShardedServer::with_backend(config, SHARDS)
    }
    fn recover(config: ServerConfig) -> Result<(Self, usize), RecoveryError> {
        ShardedServer::recover(config, SHARDS)
    }
    fn digest(&self) -> u64 {
        self.state_digest()
    }
    fn poisoned(&self) -> bool {
        self.wal_poisoned()
    }
    fn sync(&mut self) {
        self.sync_wal();
    }
    fn deep_check(&self) {
        self.check_invariants_deep();
        self.check_invariants();
    }
    fn add_object(&mut self, id: ObjectId, pos: Point, p: &mut dyn LocationProvider, now: f64) {
        let _ = ShardedServer::add_object(self, id, pos, p, now);
    }
    fn remove_object(&mut self, id: ObjectId, p: &mut dyn LocationProvider, now: f64) {
        let _ = ShardedServer::remove_object(self, id, p, now);
    }
    fn register_query(&mut self, spec: QuerySpec, p: &mut dyn LocationProvider, now: f64) {
        let _ = ShardedServer::register_query(self, spec, p, now);
    }
    fn deregister_query(&mut self, id: QueryId) {
        let _ = ShardedServer::deregister_query(self, id);
    }
    fn single_update(&mut self, id: ObjectId, pos: Point, p: &mut dyn LocationProvider, now: f64) {
        let _ = ShardedServer::handle_location_update(self, id, pos, p, now);
    }
    fn raw_batch(&mut self, ups: &[(ObjectId, Point)], p: &mut dyn LocationProvider, now: f64) {
        let _ = ShardedServer::handle_location_updates(self, ups, p, now);
    }
    fn next_due(&mut self) {
        let _ = ShardedServer::next_deferred_due(self);
    }
    fn process_deferred(&mut self, p: &mut dyn LocationProvider, now: f64) {
        let _ = ShardedServer::process_deferred(self, p, now);
    }
}

/// One primitive operation — exactly one WAL record. The golden prefix
/// table is indexed at this granularity: a crash can land between any
/// two of these, but never inside one.
#[derive(Clone, Copy, Debug)]
enum Op {
    Add(u64),
    Remove(u64),
    Register(u64),
    Deregister(u32),
    Single(u64),
    Batch,
    NextDue,
    Deferred,
}

/// The deterministic script: object lifecycle, query churn, single and
/// batched updates, the deferred-probe timer, and (via the lease in
/// [`base_config`]) lease regrants inside `process_deferred`.
fn script() -> Vec<(u64, Op)> {
    let mut s = Vec::new();
    for r in 0..N_ROUNDS {
        if r < N_OBJ {
            s.push((r, Op::Add(r)));
            if r % 4 == 3 {
                s.push((r, Op::Register(r)));
            }
            continue;
        }
        match r % 8 {
            0 => s.push((r, Op::Add(1000 + r))),
            1 => s.push((r, Op::Remove(1000 + r - 1))),
            2 => s.push((r, Op::Register(r))),
            3 => s.push((r, Op::Deregister((r % 6) as u32))),
            4 => {
                s.push((r, Op::NextDue));
                s.push((r, Op::Single(r % N_OBJ)));
            }
            5 => s.push((r, Op::Deferred)),
            _ => s.push((r, Op::Batch)),
        }
    }
    s
}

fn apply<E: Engine>(e: &mut E, r: u64, op: Op) {
    let now = 0.05 + r as f64 * 0.1;
    let mut p = FnProvider(move |id: ObjectId| pos_at(id.0 as u64, r));
    match op {
        Op::Add(id) => e.add_object(ObjectId(id as u32), pos_at(id, r), &mut p, now),
        Op::Remove(id) => e.remove_object(ObjectId(id as u32), &mut p, now),
        Op::Register(seed) => e.register_query(spec_at(seed), &mut p, now),
        Op::Deregister(q) => e.deregister_query(QueryId(q)),
        Op::Single(o) => e.single_update(ObjectId(o as u32), pos_at(o, r), &mut p, now),
        Op::Batch => {
            let ups: Vec<(ObjectId, Point)> = (0..N_OBJ)
                .filter(|o| (o + r).is_multiple_of(3))
                .map(|o| (ObjectId(o as u32), pos_at(o, r)))
                .collect();
            e.raw_batch(&ups, &mut p, now);
        }
        Op::NextDue => e.next_due(),
        Op::Deferred => e.process_deferred(&mut p, now),
    }
}

fn base_config() -> ServerConfig {
    ServerConfig { grid_m: 16, max_speed: Some(0.05), lease: Some(0.3), ..ServerConfig::default() }
}

/// [`base_config`] with the uniform-grid object index swapped in.
fn grid_config() -> ServerConfig {
    let mut cfg = base_config();
    cfg.backend = BackendConfig::Grid(GridConfig::default());
    cfg
}

fn durable_config(base: ServerConfig, dir: &'static str) -> ServerConfig {
    let mut cfg = base;
    // Tight cadences so every crash point is reached many times inside
    // the script: a group commit every 2 ops, a checkpoint rotation
    // every 7.
    cfg.durability = DurabilityConfig {
        dir: Some(dir),
        policy: SyncPolicy::GroupCommit,
        group_ops: 2,
        checkpoint_ops: 7,
    };
    cfg
}

/// Digest-after-every-op table from an uninterrupted, durability-OFF run.
/// `golden[j]` is the state after the first `j` primitive operations.
fn golden_digests<E: Engine>(config: ServerConfig, script: &[(u64, Op)]) -> Vec<u64> {
    let mut e = E::build(config);
    let mut digests = vec![e.digest()];
    for &(r, op) in script {
        apply(&mut e, r, op);
        digests.push(e.digest());
    }
    digests
}

/// Arms `point`/`nth`, drives the script into the crash, recovers, and
/// proves the recovered state is a completed prefix whose resumption
/// reproduces the golden final state bit for bit. Returns whether the
/// point actually fired (a too-large `nth` legitimately never does).
fn crash_run<E: Engine>(
    base: ServerConfig,
    point: CrashPoint,
    nth: u32,
    script: &[(u64, Op)],
    golden: &[u64],
    tag: &str,
) -> bool {
    let cfg = durable_config(base, scratch(tag));
    let mut e = E::build(cfg);
    crash::arm(point, nth);
    for &(r, op) in script {
        apply(&mut e, r, op);
        if e.poisoned() {
            break;
        }
    }
    crash::disarm();
    let injected = crash::fired();
    // A cold drop: group-commit buffers and unsynced tails are lost, like
    // the page cache in a power cut.
    drop(e);

    let (mut rec, _replayed) = E::recover(cfg)
        .unwrap_or_else(|err| panic!("recovery after {point:?} #{nth} failed: {err:?}"));
    rec.deep_check();
    let d = rec.digest();
    let j = golden.iter().position(|&g| g == d).unwrap_or_else(|| {
        panic!("state recovered after {point:?} #{nth} matches no completed prefix of the script")
    });
    for &(r, op) in &script[j..] {
        apply(&mut rec, r, op);
    }
    assert_eq!(
        rec.digest(),
        *golden.last().unwrap(),
        "resume after {point:?} #{nth} diverged from the uninterrupted golden run"
    );
    rec.deep_check();
    injected
}

fn crash_matrix<E: Engine>(base: ServerConfig, tag: &str) {
    let script = script();
    let golden = golden_digests::<E>(base, &script);
    for &point in CrashPoint::ALL.iter() {
        for nth in [0u32, 1, 3] {
            let fired = crash_run::<E>(base, point, nth, &script, &golden, tag);
            assert!(
                fired || nth > 0,
                "{point:?} never fired at nth=0 — the script misses that boundary"
            );
        }
    }
}

#[test]
fn crash_matrix_plain_server() {
    crash_matrix::<Server>(base_config(), "plain");
}

#[test]
fn crash_matrix_sharded_server() {
    crash_matrix::<ShardedServer>(base_config(), "sharded");
}

/// The full crash matrix on the uniform-grid backend. Gated behind
/// `SRB_BACKEND=grid` (CI's backend-agnostic recovery smoke) so the
/// default suite pays for it once, not twice; every default run still
/// covers grid recovery via [`grid_backend_recovers_bit_identical`].
#[test]
fn crash_matrix_grid_backend() {
    if !matches!(BackendConfig::from_env(), BackendConfig::Grid(_)) {
        return;
    }
    crash_matrix::<Server<UniformGrid>>(grid_config(), "grid-matrix");
}

/// With no crash injected, a durable run must shadow the golden run
/// exactly: the WAL hooks and the recording provider may not perturb a
/// single decision.
#[test]
fn durable_run_matches_golden_per_op() {
    let script = script();
    let golden = golden_digests::<Server>(base_config(), &script);
    let cfg = durable_config(base_config(), scratch("shadow"));
    let mut e = <Server as Engine>::build(cfg);
    for (j, &(r, op)) in script.iter().enumerate() {
        apply(&mut e, r, op);
        assert_eq!(Engine::digest(&e), golden[j + 1], "durable run diverged at op {j} ({op:?})");
    }
}

/// The grid backend round-trips through log + checkpoint + recovery too:
/// the durability plane is backend-generic.
#[test]
fn grid_backend_recovers_bit_identical() {
    let script = script();
    let golden = golden_digests::<Server<UniformGrid>>(grid_config(), &script);

    let cfg = durable_config(grid_config(), scratch("grid"));
    let mut e = <Server<UniformGrid> as Engine>::build(cfg);
    for &(r, op) in &script {
        apply(&mut e, r, op);
    }
    Engine::sync(&mut e);
    drop(e);
    let (rec, _) = <Server<UniformGrid> as Engine>::recover(cfg).expect("grid recovery");
    assert_eq!(Engine::digest(&rec), *golden.last().unwrap(), "grid backend recovery diverged");
}

/// Recovering with a different configuration must be refused, not
/// silently misinterpreted: the checkpoint carries a config fingerprint.
#[test]
fn recovery_rejects_config_mismatch() {
    let script = script();
    let cfg = durable_config(base_config(), scratch("mismatch"));
    let mut e = <Server as Engine>::build(cfg);
    for &(r, op) in &script[..8] {
        apply(&mut e, r, op);
    }
    Engine::sync(&mut e);
    drop(e);
    let mut other = cfg;
    other.grid_m = 32;
    match <Server as Engine>::recover(other) {
        Err(RecoveryError::ConfigMismatch) => {}
        other => panic!("expected ConfigMismatch, got {other:?}", other = other.map(|_| ())),
    }
}

/// Bit-flips and truncations over every file of a populated store:
/// recovery may report an error, but it must never panic, and whatever
/// state it does accept must satisfy the deep invariants.
#[test]
fn corruption_fuzz_never_panics() {
    let script = script();
    let src = scratch("fuzz-src");
    let cfg = durable_config(base_config(), src);
    let mut e = <ShardedServer as Engine>::build(cfg);
    for &(r, op) in &script {
        apply(&mut e, r, op);
    }
    Engine::sync(&mut e);
    drop(e);

    let files: Vec<PathBuf> = std::fs::read_dir(src)
        .expect("store directory")
        .map(|entry| entry.expect("dir entry").path())
        .collect();
    assert!(files.len() >= 4, "expected a multi-file store, found {files:?}");

    let mut cases = 0u32;
    for victim in &files {
        for mode in 0..5u64 {
            let dst = scratch("fuzz");
            std::fs::create_dir_all(dst).unwrap();
            for f in &files {
                std::fs::copy(f, PathBuf::from(dst).join(f.file_name().unwrap())).unwrap();
            }
            let target = PathBuf::from(dst).join(victim.file_name().unwrap());
            let mut data = std::fs::read(&target).unwrap();
            let len = data.len();
            match mode {
                // Torn tail: half the file survives.
                0 => data.truncate(len / 2),
                // Torn tail: the last few bytes vanish.
                1 => data.truncate(len.saturating_sub(3)),
                // A flipped bit mid-file (CRC territory).
                2 if len > 0 => data[len / 3] ^= 0x40,
                // A flipped bit in the header.
                3 if len > 7 => data[7] ^= 0x01,
                // A burst of garbage near the end.
                _ => {
                    let at = len.saturating_sub(len / 3).min(len);
                    for b in &mut data[at..] {
                        *b = 0xAA;
                    }
                }
            }
            std::fs::write(&target, &data).unwrap();

            let mut fcfg = cfg;
            fcfg.durability.dir = Some(dst);
            // Err is acceptable (the disk is genuinely mangled); a panic
            // is not. An Ok state must still be internally consistent.
            if let Ok((rec, _)) = <ShardedServer as Engine>::recover(fcfg) {
                Engine::deep_check(&rec);
            }
            cases += 1;
        }
    }
    assert!(cases >= 20, "fuzzer barely ran: {cases} cases");
}
