//! Integration tests for the three monitoring schemes: the central claims
//! of §7 at test scale.

use srb_sim::{run_opt, run_prd, run_srb, SimConfig};

fn cfg() -> SimConfig {
    SimConfig {
        n_objects: 250,
        n_queries: 16,
        duration: 4.0,
        sample_interval: 0.1,
        mean_speed: 0.01,
        mean_period: 0.5,
        seed: 20,
        ..SimConfig::paper_defaults()
    }
}

#[test]
fn srb_is_exact_without_delay() {
    // Instant reaction: the idealized protocol is exactly accurate.
    let m = run_srb(&SimConfig { min_reaction: 0.0, ..cfg() });
    assert_eq!(m.accuracy, 1.0, "SRB must be exact at τ=0 ({m:?})");
    assert!(m.uplinks > 0, "no updates at all is suspicious");
    assert!(m.samples >= 39);
}

#[test]
fn srb_costs_less_than_prd1() {
    // At the paper's query/object density ratio (W/N = 0.01), SRB beats
    // PRD(1). (The small shared `cfg()` uses a 6x denser query load, where
    // order-maintenance traffic dominates.)
    let c = SimConfig { n_objects: 800, n_queries: 8, duration: 4.0, ..cfg() };
    let srb = run_srb(&c);
    let prd = run_prd(&c, 1.0);
    assert!(
        srb.comm_cost < prd.comm_cost,
        "SRB ({}) must beat PRD(1) ({})",
        srb.comm_cost,
        prd.comm_cost
    );
    // PRD(1): one uplink per client per time unit → cost 1·c_l = 1.
    assert!((prd.comm_cost - 1.0).abs() < 0.26, "PRD(1) cost {} far from 1", prd.comm_cost);
}

#[test]
fn prd_interval_sets_cost() {
    let c = cfg();
    let prd01 = run_prd(&c, 0.1);
    // 10 uplinks per client per time unit.
    assert!((prd01.comm_cost - 10.0).abs() < 0.6, "PRD(0.1) cost {}", prd01.comm_cost);
}

#[test]
fn prd_accuracy_below_one() {
    let c = cfg();
    let prd = run_prd(&c, 1.0);
    assert!(prd.accuracy < 1.0, "PRD(1) should be inexact ({})", prd.accuracy);
    assert!(prd.accuracy > 0.3, "PRD(1) should not be useless ({})", prd.accuracy);
    let prd01 = run_prd(&c, 0.1);
    assert!(
        prd01.accuracy > prd.accuracy,
        "faster updates must improve accuracy: {} vs {}",
        prd01.accuracy,
        prd.accuracy
    );
}

#[test]
fn opt_lower_bounds_srb() {
    let c = cfg();
    let opt = run_opt(&c);
    let srb = run_srb(&c);
    assert_eq!(opt.accuracy, 1.0);
    assert!(
        opt.comm_cost <= srb.comm_cost + 1e-9,
        "OPT ({}) must not exceed SRB ({})",
        opt.comm_cost,
        srb.comm_cost
    );
    assert!(opt.comm_cost > 0.0, "some result must change during the run");
}

#[test]
fn srb_accuracy_degrades_with_delay() {
    let base = cfg();
    let delayed = SimConfig { delay: 0.5, ..base };
    let m0 = run_srb(&base);
    let m1 = run_srb(&delayed);
    assert!(m1.accuracy <= m0.accuracy);
    assert!(m1.accuracy > 0.5, "delayed SRB collapsed: {}", m1.accuracy);
}

#[test]
fn runs_are_deterministic() {
    let c = cfg();
    let a = run_srb(&c);
    let b = run_srb(&c);
    assert_eq!(a.uplinks, b.uplinks);
    assert_eq!(a.probes, b.probes);
    assert_eq!(a.accuracy, b.accuracy);
    let oa = run_opt(&c);
    let ob = run_opt(&c);
    assert_eq!(oa.uplinks, ob.uplinks);
}

#[test]
fn reachability_reduces_probes() {
    // At test scale the effect can be modest, but probes must not increase.
    // A small positive check granularity bounds the run time: at
    // `min_reaction = 0` near-equidistant ordered-kNN results report at
    // unbounded rates and the deferred-probe machinery amplifies the cost
    // (see DESIGN.md §8); exact-at-instant-reaction semantics with the
    // enhancement are covered by the core-level `oracle_with_reachability`.
    let base =
        SimConfig { n_objects: 400, n_queries: 30, duration: 4.0, min_reaction: 1e-3, ..cfg() };
    let enhanced = SimConfig { reachability: true, ..base };
    let m0 = run_srb(&base);
    let m1 = run_srb(&enhanced);
    assert_eq!(m1.accuracy, 1.0, "reachability must not break exactness");
    assert!(
        m1.comm_cost <= m0.comm_cost * 1.15,
        "enhancement should not blow up cost: {} vs {}",
        m1.comm_cost,
        m0.comm_cost
    );
}

#[test]
fn weighted_perimeter_keeps_exactness() {
    let c = SimConfig { steadiness: Some(0.5), mean_period: 1.0, min_reaction: 0.0, ..cfg() };
    let m = run_srb(&c);
    assert_eq!(m.accuracy, 1.0, "weighted perimeter must not break exactness");
}

#[test]
fn finite_reaction_keeps_high_accuracy() {
    // The default client check granularity trades a sliver of accuracy for
    // bounded update rates (see DESIGN.md §5).
    let m = run_srb(&cfg());
    assert!(m.accuracy > 0.97, "accuracy {} too low at default reaction", m.accuracy);
}
