//! End-to-end smoke test for the sharded server inside the full
//! event-driven simulation (CI `scaling-smoke`): a 2-shard run must
//! complete, stay deterministic, and monitor essentially as well as the
//! single-stack run it partitions.
//!
//! 1-shard bit-identity is covered separately (and more strictly) by the
//! golden tests; at 2 shards kNN safe regions become shard-local, so a
//! just-reported candidate ranked by its exact position may drift inside
//! its fresh region until the next trigger — accuracy is allowed a small
//! slack but nothing more.

use srb_sim::{run_srb, SimConfig};

fn cfg(shards: usize) -> SimConfig {
    SimConfig { shards, ..SimConfig::test_defaults() }
}

#[test]
fn two_shard_sim_completes_and_monitors_accurately() {
    let one = run_srb(&cfg(1));
    let two = run_srb(&cfg(2));

    assert_eq!(one.accuracy, 1.0, "τ=0 single stack is exact ({one:?})");
    assert!(
        two.accuracy >= 0.99,
        "2-shard monitoring must stay near-exact: {} ({two:?})",
        two.accuracy
    );
    assert_eq!(two.samples, one.samples, "same sampling schedule");
    for (name, v) in [
        ("comm_cost", two.comm_cost),
        ("comm_cost_per_distance", two.comm_cost_per_distance),
        ("work_units_per_tu", two.work_units_per_tu),
        ("cpu_seconds_per_tu", two.cpu_seconds_per_tu),
    ] {
        assert!(v.is_finite() && v >= 0.0, "{name} must be finite and non-negative, got {v}");
    }
    assert!(two.uplinks > 0 && two.grid_footprint > 0, "sharded run did real work ({two:?})");
}

#[test]
fn sharded_sim_is_deterministic_in_the_seed() {
    let a = run_srb(&cfg(2));
    let b = run_srb(&cfg(2));
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.uplinks, b.uplinks);
    assert_eq!(a.probes, b.probes);
    assert_eq!(a.comm_cost, b.comm_cost);
    assert_eq!(a.grid_footprint, b.grid_footprint);
}
