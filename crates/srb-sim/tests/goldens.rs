//! Golden-metrics regression test: every deterministic `RunMetrics` field of
//! the fixed scenario set in [`srb_sim::golden_scenarios`] must stay
//! **bit-identical** to the values recorded from the pre-refactor
//! (monolithic-`Server`) implementation in `golden_data/data.rs`.
//!
//! This is the before/after drift check for the Figure-3.1 layer
//! decomposition and the `ShardedServer{1 shard}` substitution inside
//! `run_srb`: any behavioral divergence — a reordered probe, a changed
//! iteration order, an off-by-one in the harness extraction — shows up here
//! as a failed exact comparison.
//!
//! Regenerate deliberately with the `dump_goldens` example only when a
//! change is *supposed* to move the figures.

use srb_sim::{golden_scenarios, run_scheme, RunMetrics};

/// One recorded scenario outcome. Field-for-field the deterministic subset
/// of [`srb_sim::RunMetrics`] (`cpu_seconds_per_tu` is wall-clock and
/// excluded).
struct Golden {
    name: &'static str,
    accuracy: f64,
    uplinks: u64,
    probes: u64,
    uplinks_sent: u64,
    retransmissions: u64,
    channel_drops: u64,
    channel_duplicates: u64,
    stale_seq_drops: u64,
    lease_probes: u64,
    regrants: u64,
    comm_cost: f64,
    comm_cost_per_distance: f64,
    total_distance: f64,
    work_units_per_tu: f64,
    samples: u64,
    grid_footprint: usize,
}

include!("golden_data/data.rs");

#[test]
fn scenarios_match_recorded_goldens_bit_identically() {
    let scenarios = golden_scenarios();
    assert_eq!(scenarios.len(), GOLDENS.len(), "scenario set and goldens out of sync");
    for ((name, scheme, cfg), g) in scenarios.into_iter().zip(GOLDENS) {
        assert_eq!(name, g.name, "scenario order drifted");
        let m = run_scheme(scheme, &cfg);
        // Exact comparisons throughout: the runs are seeded and fully
        // deterministic, so even f64 metrics must reproduce to the bit.
        assert_eq!(m.accuracy, g.accuracy, "{name}: accuracy");
        assert_eq!(m.uplinks, g.uplinks, "{name}: uplinks");
        assert_eq!(m.probes, g.probes, "{name}: probes");
        assert_eq!(m.uplinks_sent, g.uplinks_sent, "{name}: uplinks_sent");
        assert_eq!(m.retransmissions, g.retransmissions, "{name}: retransmissions");
        assert_eq!(m.channel_drops, g.channel_drops, "{name}: channel_drops");
        assert_eq!(m.channel_duplicates, g.channel_duplicates, "{name}: channel_duplicates");
        assert_eq!(m.stale_seq_drops, g.stale_seq_drops, "{name}: stale_seq_drops");
        assert_eq!(m.lease_probes, g.lease_probes, "{name}: lease_probes");
        assert_eq!(m.regrants, g.regrants, "{name}: regrants");
        assert_eq!(m.comm_cost, g.comm_cost, "{name}: comm_cost");
        assert_eq!(
            m.comm_cost_per_distance, g.comm_cost_per_distance,
            "{name}: comm_cost_per_distance"
        );
        assert_eq!(m.total_distance, g.total_distance, "{name}: total_distance");
        // `work_units_per_tu` is an object-index cost model (node visits):
        // the uniform-grid backend visits bucket cells where the R*-tree
        // visits tree nodes, so under a non-default `SRB_BACKEND` the
        // figure legitimately diverges from these R*-tree-recorded goldens.
        // Every behavioral field above and below must still match exactly.
        if std::env::var("SRB_BACKEND").map_or(true, |v| v.is_empty() || v == "rstar") {
            assert_eq!(m.work_units_per_tu, g.work_units_per_tu, "{name}: work_units_per_tu");
        }
        assert_eq!(m.samples, g.samples, "{name}: samples");
        assert_eq!(m.grid_footprint, g.grid_footprint, "{name}: grid_footprint");
    }
}

/// Asserts every deterministic `RunMetrics` field is bit-identical between
/// two runs of the same scenario.
fn assert_deterministic_fields_eq(name: &str, a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.accuracy, b.accuracy, "{name}: accuracy");
    assert_eq!(a.uplinks, b.uplinks, "{name}: uplinks");
    assert_eq!(a.probes, b.probes, "{name}: probes");
    assert_eq!(a.uplinks_sent, b.uplinks_sent, "{name}: uplinks_sent");
    assert_eq!(a.retransmissions, b.retransmissions, "{name}: retransmissions");
    assert_eq!(a.channel_drops, b.channel_drops, "{name}: channel_drops");
    assert_eq!(a.channel_duplicates, b.channel_duplicates, "{name}: channel_duplicates");
    assert_eq!(a.stale_seq_drops, b.stale_seq_drops, "{name}: stale_seq_drops");
    assert_eq!(a.lease_probes, b.lease_probes, "{name}: lease_probes");
    assert_eq!(a.regrants, b.regrants, "{name}: regrants");
    assert_eq!(a.comm_cost, b.comm_cost, "{name}: comm_cost");
    assert_eq!(a.comm_cost_per_distance, b.comm_cost_per_distance, "{name}: comm_cost/dist");
    assert_eq!(a.total_distance, b.total_distance, "{name}: total_distance");
    assert_eq!(a.work_units_per_tu, b.work_units_per_tu, "{name}: work_units_per_tu");
    assert_eq!(a.samples, b.samples, "{name}: samples");
    assert_eq!(a.grid_footprint, b.grid_footprint, "{name}: grid_footprint");
}

/// Telemetry must be an observer, never an actor: running the same scenario
/// with the runtime recorder enabled and disabled must produce bit-identical
/// figures. Covers the ideal-channel default scenario and the lossy/lease
/// one (whose retransmission machinery is the most timing-adjacent code).
#[test]
fn telemetry_toggle_leaves_figures_bit_identical() {
    let scenarios = golden_scenarios();
    for idx in [0usize, 5] {
        let (name, scheme, cfg) = scenarios[idx];
        srb_obs::set_enabled(true);
        let on = run_scheme(scheme, &cfg);
        srb_obs::set_enabled(false);
        let off = run_scheme(scheme, &cfg);
        srb_obs::set_enabled(true);
        assert_deterministic_fields_eq(name, &on, &off);
    }
}
