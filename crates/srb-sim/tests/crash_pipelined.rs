//! Crash-injection matrix for the *pipelined* ingestion front-end: the
//! sharded server with live worker threads, batches submitted through the
//! per-shard rings, and WAL partition records appended **on the worker
//! threads**.
//!
//! The method is the same golden-digest prefix table as `crash.rs`: an
//! uninterrupted durability-OFF run records the digest after every op;
//! each crash run arms a [`CrashPoint`], drives the same script until the
//! WAL poisons, drops the server cold mid-stream (workers still parked on
//! their rings — the drop drains and joins them), recovers, and the
//! recovered state must be a completed-operation prefix whose resumption
//! reproduces the golden final digest bit for bit. That *is* the
//! drained-queue guarantee: whatever the interleaving of worker-thread
//! appends, recovery lands exactly where the synchronous engine would.
//!
//! This matrix lives in its own test binary because worker-thread
//! boundaries are reachable only through the process-wide shared plan
//! ([`crash::arm_shared`]); run next to the thread-local matrix it would
//! steal those countdowns. Cargo runs test binaries sequentially, and the
//! in-file mutex serializes the tests within this one.

use srb_core::{
    CrashPoint, DurabilityConfig, FnProvider, ObjectId, QueryId, QuerySpec, SequencedUpdate,
    ServerConfig, ShardedServer, SyncPolicy,
};
use srb_durable::crash;
use srb_geom::{Point, Rect};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tests in this binary share the one process-global crash plan.
static PLAN: Mutex<()> = Mutex::new(());

const N_OBJ: u64 = 12;
const N_ROUNDS: u64 = 48;
const SHARDS: usize = 2;
const WORKERS: usize = 4;

fn scratch(tag: &str) -> &'static str {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "srb-pipecrash-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    Box::leak(d.to_string_lossy().into_owned().into_boxed_str())
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn frac(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The whole world is this pure function: where object `id` is at round
/// `r`. Golden run, crash run, and post-recovery resume all agree on it,
/// so the worker threads' probe answers are reproducible too.
fn pos_at(id: u64, r: u64) -> Point {
    let h = splitmix(id.wrapping_mul(0x0100_0000_01B3).wrapping_add(r));
    Point::new(frac(h), frac(splitmix(h)))
}

fn spec_at(r: u64) -> QuerySpec {
    let cx = frac(splitmix(r.wrapping_mul(3).wrapping_add(1))) * 0.8 + 0.1;
    let cy = frac(splitmix(r.wrapping_mul(3).wrapping_add(2))) * 0.8 + 0.1;
    let c = Point::new(cx, cy);
    match r % 3 {
        0 => QuerySpec::range(
            Rect::centered(c, 0.09, 0.09).intersection(&Rect::UNIT).unwrap_or(Rect::point(c)),
        ),
        1 => QuerySpec::knn(c, 1 + (splitmix(r) % 3) as usize),
        _ => QuerySpec::knn_unordered(c, 1 + (splitmix(r) % 3) as usize),
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Add(u64),
    Register(u64),
    Deregister(u32),
    /// A sequenced batch through `handle_sequenced_updates_parallel`:
    /// submitted to the rings, processed and WAL-logged on the workers.
    Batch,
    Deferred,
}

/// The deterministic script: object setup, query churn, pipelined batches
/// every other round, and the deferred-probe timer.
fn script() -> Vec<(u64, Op)> {
    let mut s = Vec::new();
    for r in 0..N_ROUNDS {
        if r < N_OBJ {
            s.push((r, Op::Add(r)));
            if r % 4 == 3 {
                s.push((r, Op::Register(r)));
            }
            continue;
        }
        match r % 6 {
            0 => s.push((r, Op::Register(r))),
            1 => s.push((r, Op::Deregister((r % 5) as u32))),
            2 => s.push((r, Op::Deferred)),
            _ => s.push((r, Op::Batch)),
        }
    }
    s
}

fn build(cfg: ServerConfig) -> ShardedServer {
    ShardedServer::new(cfg, SHARDS).with_threads(WORKERS)
}

fn apply(e: &mut ShardedServer, r: u64, op: Op) {
    let now = 0.05 + r as f64 * 0.1;
    let sync = move |id: ObjectId| pos_at(id.0 as u64, r);
    match op {
        Op::Add(id) => {
            let mut p = FnProvider(sync);
            let _ = e.add_object(ObjectId(id as u32), pos_at(id, r), &mut p, now);
        }
        Op::Register(seed) => {
            let mut p = FnProvider(sync);
            let _ = e.register_query(spec_at(seed), &mut p, now);
        }
        Op::Deregister(q) => {
            let _ = e.deregister_query(QueryId(q));
        }
        Op::Batch => {
            // Every object reports at most once per round, and rounds only
            // move forward, so `seq = r + 1` is fresh for every reporter —
            // including across a crash/recovery boundary.
            let ups: Vec<SequencedUpdate> = (0..N_OBJ)
                .filter(|o| (o + r).is_multiple_of(3))
                .map(|o| SequencedUpdate { id: ObjectId(o as u32), pos: pos_at(o, r), seq: r + 1 })
                .collect();
            let _ = e.handle_sequenced_updates_parallel(&ups, &sync, now);
        }
        Op::Deferred => {
            let mut p = FnProvider(sync);
            let _ = e.process_deferred(&mut p, now);
        }
    }
}

fn base_config() -> ServerConfig {
    ServerConfig { grid_m: 16, max_speed: Some(0.05), lease: Some(0.3), ..ServerConfig::default() }
}

fn durable_config(dir: &'static str) -> ServerConfig {
    let mut cfg = base_config();
    // Tight cadences so every crash point is reached many times inside
    // the script.
    cfg.durability = DurabilityConfig {
        dir: Some(dir),
        policy: SyncPolicy::GroupCommit,
        group_ops: 2,
        checkpoint_ops: 7,
    };
    cfg
}

/// Digest-after-every-op table from an uninterrupted, durability-OFF,
/// fully pipelined run.
fn golden_digests(script: &[(u64, Op)]) -> Vec<u64> {
    let mut e = build(base_config());
    let mut digests = vec![e.state_digest()];
    for &(r, op) in script {
        apply(&mut e, r, op);
        digests.push(e.state_digest());
    }
    digests
}

/// Arms `point` process-wide, drives the script into the crash (the point
/// may fire on a worker thread mid-batch), recovers, and proves the
/// recovered state is a completed-operation prefix whose resumption
/// reproduces the golden final state. Returns whether the point fired.
fn crash_run(point: CrashPoint, nth: u32, script: &[(u64, Op)], golden: &[u64]) -> bool {
    let cfg = durable_config(scratch("mx"));
    let mut e = build(cfg);
    crash::arm_shared(point, nth);
    for &(r, op) in script {
        apply(&mut e, r, op);
        if e.wal_poisoned() {
            break;
        }
    }
    crash::disarm();
    let injected = crash::fired_shared();
    // A cold drop mid-stream: the workers are joined, but group-commit
    // buffers and unsynced tails are lost, like the page cache in a
    // power cut.
    drop(e);

    let (rec, _replayed) = ShardedServer::recover(cfg, SHARDS)
        .unwrap_or_else(|err| panic!("recovery after {point:?} #{nth} failed: {err:?}"));
    let mut rec = rec.with_threads(WORKERS);
    rec.check_invariants_deep();
    rec.check_invariants();
    let d = rec.state_digest();
    let j = golden.iter().position(|&g| g == d).unwrap_or_else(|| {
        panic!("state recovered after {point:?} #{nth} matches no completed prefix of the script")
    });
    for &(r, op) in &script[j..] {
        apply(&mut rec, r, op);
    }
    assert_eq!(
        rec.state_digest(),
        *golden.last().unwrap(),
        "resume after {point:?} #{nth} diverged from the uninterrupted golden run"
    );
    rec.check_invariants_deep();
    injected
}

#[test]
fn crash_matrix_pipelined_sharded_server() {
    let _guard = PLAN.lock().unwrap();
    let script = script();
    let golden = golden_digests(&script);
    for &point in CrashPoint::ALL.iter() {
        for nth in [0u32, 1, 3] {
            let fired = crash_run(point, nth, &script, &golden);
            assert!(
                fired || nth > 0,
                "{point:?} never fired at nth=0 — the script misses that boundary"
            );
        }
    }
}

/// With no crash injected, the durable pipelined run must shadow the
/// golden (non-durable, equally pipelined) run digest for digest: the
/// worker-thread WAL appends may not perturb a single decision.
#[test]
fn durable_pipelined_run_matches_golden_per_op() {
    let _guard = PLAN.lock().unwrap();
    let script = script();
    let golden = golden_digests(&script);
    let mut e = build(durable_config(scratch("shadow")));
    for (j, &(r, op)) in script.iter().enumerate() {
        apply(&mut e, r, op);
        assert_eq!(e.state_digest(), golden[j + 1], "durable run diverged at op {j} ({op:?})");
    }
}
