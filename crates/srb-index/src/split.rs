//! R*-tree node splitting (Beckmann et al., SIGMOD 1990).
//!
//! The split works on any sequence of rectangles: the same routine splits
//! leaf entries and internal children. Axis choice minimizes the summed
//! margin over all candidate distributions; the distribution on the chosen
//! axis minimizes overlap, with area as the tie-breaker.

use srb_geom::Rect;

/// Result of a split: indices of items assigned to the first and the second
/// group, in the order of the input slice.
pub(crate) struct SplitResult {
    pub first: Vec<usize>,
    pub second: Vec<usize>,
}

/// Computes the R* split of `rects` with the node capacity bounds
/// `min_entries ..= max_entries` (the slice has `max_entries + 1` items).
pub(crate) fn rstar_split(rects: &[Rect], min_entries: usize) -> SplitResult {
    let n = rects.len();
    debug_assert!(n >= 2 * min_entries, "cannot split {n} items with min {min_entries}");

    // For each axis, consider items sorted by lower and by upper coordinate.
    let mut best: Option<(f64, f64, f64, Vec<usize>, usize)> = None; // (margin, overlap, area, order, split_at)
    for axis in 0..2usize {
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let ka = sort_key(&rects[a], axis, by_upper);
                let kb = sort_key(&rects[b], axis, by_upper);
                ka.partial_cmp(&kb).unwrap()
            });
            // Prefix/suffix MBRs for O(n) distribution evaluation.
            let mut prefix: Vec<Rect> = Vec::with_capacity(n);
            let mut acc = rects[order[0]];
            prefix.push(acc);
            for &i in &order[1..] {
                acc = acc.union(&rects[i]);
                prefix.push(acc);
            }
            let mut suffix: Vec<Rect> = vec![rects[order[n - 1]]; n];
            for k in (0..n - 1).rev() {
                suffix[k] = suffix[k + 1].union(&rects[order[k]]);
            }
            // Candidate split points: first group takes k items,
            // k in [min_entries, n - min_entries].
            let mut axis_margin = 0.0;
            let mut axis_best: Option<(f64, f64, usize)> = None; // (overlap, area, k)
            for k in min_entries..=(n - min_entries) {
                let (a, b) = (&prefix[k - 1], &suffix[k]);
                axis_margin += a.perimeter() + b.perimeter();
                let overlap = a.overlap_area(b);
                let area = a.area() + b.area();
                if axis_best.is_none_or(|(o, ar, _)| overlap < o || (overlap == o && area < ar)) {
                    axis_best = Some((overlap, area, k));
                }
            }
            let (overlap, area, k) = axis_best.expect("at least one distribution");
            if best.as_ref().is_none_or(|(m, o, ar, _, _)| {
                axis_margin < *m
                    || (axis_margin == *m && (overlap < *o || (overlap == *o && area < *ar)))
            }) {
                best = Some((axis_margin, overlap, area, order, k));
            }
        }
    }
    let (_, _, _, order, k) = best.expect("split always finds a distribution");
    SplitResult { first: order[..k].to_vec(), second: order[k..].to_vec() }
}

#[inline]
fn sort_key(r: &Rect, axis: usize, by_upper: bool) -> f64 {
    match (axis, by_upper) {
        (0, false) => r.min().x,
        (0, true) => r.max().x,
        (1, false) => r.min().y,
        (_, _) => r.max().y,
    }
}

/// Computes the MBR of a set of rectangles selected by `idx`.
pub(crate) fn mbr_of(rects: &[Rect], idx: &[usize]) -> Rect {
    let mut it = idx.iter();
    let first = *it.next().expect("non-empty index set");
    let mut acc = rects[first];
    for &i in it {
        acc = acc.union(&rects[i]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_geom::Point;

    fn r(x: f64, y: f64) -> Rect {
        Rect::centered(Point::new(x, y), 0.01, 0.01)
    }

    #[test]
    fn split_separates_two_clusters() {
        // Five rects on the left, five on the right: the split must cut
        // between the clusters.
        let mut rects = Vec::new();
        for i in 0..5 {
            rects.push(r(0.1, 0.1 * i as f64));
        }
        for i in 0..5 {
            rects.push(r(0.9, 0.1 * i as f64));
        }
        let s = rstar_split(&rects, 4);
        assert_eq!(s.first.len() + s.second.len(), 10);
        let mbr_a = mbr_of(&rects, &s.first);
        let mbr_b = mbr_of(&rects, &s.second);
        assert_eq!(mbr_a.overlap_area(&mbr_b), 0.0, "{mbr_a:?} vs {mbr_b:?}");
    }

    #[test]
    fn split_respects_min_entries() {
        let rects: Vec<Rect> = (0..9).map(|i| r(0.1 * i as f64, 0.5)).collect();
        let s = rstar_split(&rects, 3);
        assert!(s.first.len() >= 3 && s.second.len() >= 3);
        assert_eq!(s.first.len() + s.second.len(), 9);
    }

    #[test]
    fn split_covers_all_indices_exactly_once() {
        let rects: Vec<Rect> =
            (0..11).map(|i| r((i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0)).collect();
        let s = rstar_split(&rects, 4);
        let mut all: Vec<usize> = s.first.iter().chain(s.second.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn mbr_of_covers_members() {
        let rects: Vec<Rect> = (0..4).map(|i| r(0.2 * i as f64, 0.3)).collect();
        let m = mbr_of(&rects, &[0, 2, 3]);
        for &i in &[0usize, 2, 3] {
            assert!(m.contains_rect(&rects[i]));
        }
    }
}
