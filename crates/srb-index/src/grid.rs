//! [`UniformGrid`] — the cell-bucketed object-index backend.
//!
//! The monitored space is tiled into `m × m` uniform cells (the same
//! cell-range arithmetic the framework's query grid uses); every stored
//! rectangle is bucketed into each cell it overlaps, and an
//! `EntryId → Rect` map resolves point lookups and removals. This is the
//! index shape the update-heavy moving-object literature prefers over
//! trees: relocating an object whose safe region stays within its cell
//! range is a pure in-place rewrite, with no structural rebalancing at all.
//!
//! Search visits the cells overlapping the query window and scans their
//! buckets; an entry stored in several visited cells is reported exactly
//! once via the *owner-cell rule* — it is emitted only from the first
//! overlapped cell (lowest cell coordinates within the query range) — so
//! deduplication needs no allocation. Best-first nearest-neighbor browsing
//! expands Chebyshev rings of cells around the query point and interleaves
//! them with candidate entries on the shared frontier heap, preserving the
//! non-decreasing `δ(q, rect)` contract of
//! [`NearestStream`](crate::NearestStream).
//!
//! Cell sizing: throughput is best when a typical stored rectangle overlaps
//! O(1) cells — pick `m` so the cell side stays a few times larger than the
//! expected safe-region side (see DESIGN.md §13 for the rule and measured
//! tradeoffs).

use crate::backend::{
    BackendConfig, BackendKind, BackendStats, HeapItem, HeapKind, NearestScratch,
};
use crate::UpdateOutcome;
use crate::{ConfigError, EntryId, LeafEntry, NearestStream, Neighbor, SpatialBackend};
use srb_geom::{Point, Rect};
use srb_hash::FastMap;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Resolution configuration of a [`UniformGrid`].
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    /// Cells per axis (`m × m` cells in total).
    pub m: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        // 64 × 64 over the unit space: cell side 1/64 ≈ 0.016, a few times
        // the paper-scale safe-region side (≈ cell-constrained regions of
        // the M = 50 query grid shrunk by neighbor pruning), so typical
        // entries overlap 1-4 cells.
        GridConfig { m: 64 }
    }
}

impl GridConfig {
    /// Validates the resolution, returning a typed error for zero or
    /// overflow-prone values (cell ids must fit the shared `u32` frontier).
    pub fn try_validated(self) -> Result<Self, ConfigError> {
        if self.m < 1 || self.m > 1 << 15 {
            return Err(ConfigError::BadGridResolution { m: self.m });
        }
        Ok(self)
    }

    /// Panicking form of [`try_validated`](Self::try_validated).
    pub fn validated(self) -> Self {
        match self.try_validated() {
            Ok(cfg) => cfg,
            Err(e) => panic!("invalid GridConfig: {e}"),
        }
    }
}

/// The uniform-grid object-index backend. See the module docs for the
/// design; semantics match [`RStarTree`](crate::RStarTree) exactly (pinned
/// by the backend-equivalence proptest).
pub struct UniformGrid {
    pub(crate) space: Rect,
    pub(crate) m: usize,
    pub(crate) cell_w: f64,
    pub(crate) cell_h: f64,
    pub(crate) buckets: Vec<Vec<LeafEntry>>,
    pub(crate) rects: FastMap<EntryId, Rect>,
    pub(crate) visits: Cell<u64>,
}

impl UniformGrid {
    /// Creates an empty grid over `space` with `config.m²` cells.
    pub fn new(config: GridConfig, space: Rect) -> Self {
        let config = config.validated();
        let m = config.m;
        UniformGrid {
            space,
            m,
            cell_w: space.width() / m as f64,
            cell_h: space.height() / m as f64,
            buckets: vec![Vec::new(); m * m],
            rects: FastMap::default(),
            visits: Cell::new(0),
        }
    }

    /// The grid resolution `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The indexed space.
    pub fn space(&self) -> Rect {
        self.space
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Cell-visit counter (the grid's deterministic work unit, parallel to
    /// the R\*-tree's node visits).
    pub fn visits(&self) -> u64 {
        self.visits.get()
    }

    /// Resets the cell-visit counter.
    pub fn reset_visits(&self) {
        self.visits.set(0);
    }

    #[inline]
    fn clamp_axis(&self, v: f64, cell: f64, origin: f64) -> usize {
        (((v - origin) / cell).floor() as isize).clamp(0, self.m as isize - 1) as usize
    }

    /// The inclusive cell range `(lo_x, lo_y, hi_x, hi_y)` a rectangle
    /// overlaps, clamped into the grid.
    #[inline]
    fn cell_range(&self, rect: &Rect) -> (usize, usize, usize, usize) {
        (
            self.clamp_axis(rect.min().x, self.cell_w, self.space.min().x),
            self.clamp_axis(rect.min().y, self.cell_h, self.space.min().y),
            self.clamp_axis(rect.max().x, self.cell_w, self.space.min().x),
            self.clamp_axis(rect.max().y, self.cell_h, self.space.min().y),
        )
    }

    /// The cell containing `p` (clamped to the space).
    #[inline]
    fn cell_of(&self, p: Point) -> (usize, usize) {
        (
            self.clamp_axis(p.x, self.cell_w, self.space.min().x),
            self.clamp_axis(p.y, self.cell_h, self.space.min().y),
        )
    }

    #[inline]
    fn bucket_index(&self, i: usize, j: usize) -> usize {
        j * self.m + i
    }

    fn cell_rect(&self, i: usize, j: usize) -> Rect {
        let min = Point::new(
            self.space.min().x + i as f64 * self.cell_w,
            self.space.min().y + j as f64 * self.cell_h,
        );
        Rect::new(min, Point::new(min.x + self.cell_w, min.y + self.cell_h))
    }

    /// Inserts an entry. `id` must not already be present (checked in debug
    /// builds; use [`update`](Self::update) to move an existing entry).
    pub fn insert(&mut self, id: EntryId, rect: Rect) {
        debug_assert!(!self.rects.contains_key(&id), "duplicate insert of id {id}");
        let (lo_x, lo_y, hi_x, hi_y) = self.cell_range(&rect);
        for j in lo_y..=hi_y {
            for i in lo_x..=hi_x {
                let idx = self.bucket_index(i, j);
                self.buckets[idx].push(LeafEntry { id, rect });
            }
        }
        self.rects.insert(id, rect);
    }

    /// Removes an entry, returning its stored rectangle.
    pub fn remove(&mut self, id: EntryId) -> Option<Rect> {
        let rect = self.rects.remove(&id)?;
        let (lo_x, lo_y, hi_x, hi_y) = self.cell_range(&rect);
        for j in lo_y..=hi_y {
            for i in lo_x..=hi_x {
                let idx = self.bucket_index(i, j);
                let bucket = &mut self.buckets[idx];
                let pos = bucket.iter().position(|e| e.id == id).expect("bucketed in cell range");
                bucket.swap_remove(pos);
            }
        }
        Some(rect)
    }

    /// Moves an existing entry to `new_rect`. When the cell range is
    /// unchanged this is a pure in-place rewrite ([`UpdateOutcome::InPlace`]
    /// — the grid's whole appeal for safe-region jitter); a changed range
    /// relocates the entry across buckets ([`UpdateOutcome::Reinserted`]).
    ///
    /// Inserts the entry fresh when `id` was not present.
    pub fn update(&mut self, id: EntryId, new_rect: Rect) -> UpdateOutcome {
        let Some(&old_rect) = self.rects.get(&id) else {
            self.insert(id, new_rect);
            srb_obs::counter!("index.grid.relocations").inc();
            srb_obs::counter!("index.update.reinsert").inc();
            return UpdateOutcome::Reinserted;
        };
        let old_range = self.cell_range(&old_rect);
        let (lo_x, lo_y, hi_x, hi_y) = self.cell_range(&new_rect);
        if old_range == (lo_x, lo_y, hi_x, hi_y) {
            for j in lo_y..=hi_y {
                for i in lo_x..=hi_x {
                    let idx = self.bucket_index(i, j);
                    let e = self.buckets[idx]
                        .iter_mut()
                        .find(|e| e.id == id)
                        .expect("bucketed in cell range");
                    e.rect = new_rect;
                }
            }
            self.rects.insert(id, new_rect);
            srb_obs::counter!("index.update.in_place").inc();
            return UpdateOutcome::InPlace;
        }
        self.remove(id).expect("entry present");
        self.insert(id, new_rect);
        srb_obs::counter!("index.grid.relocations").inc();
        srb_obs::counter!("index.update.reinsert").inc();
        UpdateOutcome::Reinserted
    }

    /// The stored rectangle of `id`, if present.
    pub fn get(&self, id: EntryId) -> Option<Rect> {
        self.rects.get(&id).copied()
    }

    /// Visits every entry whose rectangle intersects `query` (closed test),
    /// each exactly once (owner-cell deduplication; no allocation).
    pub fn search(&self, query: &Rect, mut f: impl FnMut(&LeafEntry)) {
        if self.rects.is_empty() {
            return;
        }
        let (q_lo_x, q_lo_y, q_hi_x, q_hi_y) = self.cell_range(query);
        let mut cells = 0u64;
        let mut scanned = 0u64;
        for j in q_lo_y..=q_hi_y {
            for i in q_lo_x..=q_hi_x {
                cells += 1;
                let bucket = &self.buckets[self.bucket_index(i, j)];
                scanned += bucket.len() as u64;
                for e in bucket {
                    if !e.rect.intersects(query) {
                        continue;
                    }
                    // Owner-cell rule: report only from the first cell the
                    // entry and the query ranges share, so multi-cell
                    // entries come out exactly once.
                    let (e_lo_x, e_lo_y, _, _) = self.cell_range(&e.rect);
                    if (e_lo_x.max(q_lo_x), e_lo_y.max(q_lo_y)) == (i, j) {
                        f(e);
                    }
                }
            }
        }
        self.visits.set(self.visits.get() + cells);
        srb_obs::counter!("index.grid.cell_visits").add(cells);
        srb_obs::counter!("index.grid.bucket_scans").add(scanned);
        srb_obs::histogram!("index.search.visits").record(cells);
    }

    /// Collects every entry intersecting `query` into a vector.
    pub fn search_vec(&self, query: &Rect) -> Vec<LeafEntry> {
        let mut out = Vec::new();
        self.search(query, |e| out.push(*e));
        out
    }

    /// Iterates over all entries (arbitrary order, each exactly once).
    pub fn iter(&self) -> impl Iterator<Item = LeafEntry> + '_ {
        self.rects.iter().map(|(&id, &rect)| LeafEntry { id, rect })
    }

    /// Incremental best-first browsing of entries by increasing
    /// `δ(q, rect)` via Chebyshev ring expansion around `q`'s cell.
    pub fn nearest_iter(&self, q: Point) -> GridNearest<'_> {
        self.nearest_impl(q, BinaryHeap::new(), None)
    }

    /// [`nearest_iter`](Self::nearest_iter) reusing `scratch`'s frontier
    /// storage, so steady-state browses allocate nothing after warmup.
    pub fn nearest_iter_with<'a>(
        &'a self,
        q: Point,
        scratch: &'a mut NearestScratch,
    ) -> GridNearest<'a> {
        let heap = scratch.take();
        self.nearest_impl(q, heap, Some(scratch))
    }

    fn nearest_impl<'a>(
        &'a self,
        q: Point,
        heap: BinaryHeap<Reverse<HeapItem>>,
        scratch: Option<&'a mut NearestScratch>,
    ) -> GridNearest<'a> {
        let qc = self.cell_of(q);
        GridNearest {
            grid: self,
            q,
            qc,
            heap,
            scratch,
            next_ring: 0,
            exhausted: self.rects.is_empty(),
            visited: 0,
            scanned: 0,
        }
    }

    /// Exhaustively verifies structural invariants; panics on violation.
    pub fn check_invariants(&self) {
        let mut bucketed = 0usize;
        for j in 0..self.m {
            for i in 0..self.m {
                for e in &self.buckets[self.bucket_index(i, j)] {
                    let rect = self.rects.get(&e.id);
                    assert_eq!(rect, Some(&e.rect), "bucket entry {} disagrees with map", e.id);
                    let (lo_x, lo_y, hi_x, hi_y) = self.cell_range(&e.rect);
                    assert!(
                        (lo_x..=hi_x).contains(&i) && (lo_y..=hi_y).contains(&j),
                        "entry {} bucketed outside its cell range",
                        e.id
                    );
                    bucketed += 1;
                }
            }
        }
        let expected: usize = self
            .rects
            .values()
            .map(|rect| {
                let (lo_x, lo_y, hi_x, hi_y) = self.cell_range(rect);
                (hi_x - lo_x + 1) * (hi_y - lo_y + 1)
            })
            .sum();
        assert_eq!(bucketed, expected, "bucketed entry count disagrees with cell ranges");
    }

    fn occupied_cells(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }
}

impl SpatialBackend for UniformGrid {
    type Nearest<'a> = GridNearest<'a>;

    fn build(config: &BackendConfig, space: Rect) -> Self {
        match config {
            BackendConfig::Grid(cfg) => UniformGrid::new(*cfg, space),
            other => panic!("BackendConfig::{other:?} cannot build a UniformGrid"),
        }
    }

    fn label() -> &'static str {
        "grid"
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Grid
    }

    fn accepts_kind(kind: BackendKind) -> bool {
        kind == BackendKind::Grid
    }

    fn grid_resolution(&self) -> Option<usize> {
        Some(self.m)
    }

    fn len(&self) -> usize {
        UniformGrid::len(self)
    }

    fn insert(&mut self, id: EntryId, rect: Rect) {
        UniformGrid::insert(self, id, rect);
    }

    fn remove(&mut self, id: EntryId) -> Option<Rect> {
        UniformGrid::remove(self, id)
    }

    fn update(&mut self, id: EntryId, new_rect: Rect) -> UpdateOutcome {
        UniformGrid::update(self, id, new_rect)
    }

    fn get(&self, id: EntryId) -> Option<Rect> {
        UniformGrid::get(self, id)
    }

    fn search(&self, query: &Rect, f: &mut dyn FnMut(&LeafEntry)) {
        UniformGrid::search(self, query, |e| f(e));
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(EntryId, Rect)) {
        for e in UniformGrid::iter(self) {
            f(e.id, e.rect);
        }
    }

    fn nearest_iter(&self, q: Point) -> Self::Nearest<'_> {
        UniformGrid::nearest_iter(self, q)
    }

    fn nearest_iter_with<'a>(
        &'a self,
        q: Point,
        scratch: &'a mut NearestScratch,
    ) -> Self::Nearest<'a> {
        UniformGrid::nearest_iter_with(self, q, scratch)
    }

    fn visits(&self) -> u64 {
        UniformGrid::visits(self)
    }

    fn reset_visits(&self) {
        UniformGrid::reset_visits(self);
    }

    fn check_invariants(&self) {
        UniformGrid::check_invariants(self);
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            backend: "grid",
            len: self.len(),
            depth: 1,
            nodes: self.occupied_cells(),
            visits: self.visits(),
        }
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        UniformGrid::encode_state(self, out);
    }

    fn decode_state(dec: &mut srb_durable::Dec<'_>) -> Result<Self, srb_durable::DurableError> {
        UniformGrid::decode_state(dec)
    }
}

/// Iterator of [`UniformGrid::nearest_iter`]: yields entries in
/// non-decreasing `δ(q, rect)` order.
///
/// Cells enter the frontier ring by ring (Chebyshev distance from the
/// query's cell); ring `r` is only expanded once the frontier head could be
/// beaten by a cell at distance `(r-1)·min(cell_w, cell_h)` — the standard
/// best-first admissibility argument, with cells playing the role of tree
/// nodes. A multi-cell entry joins the frontier only from the cell of its
/// range nearest to the query (per-axis clamp), which is always popped at a
/// key ≤ the entry's own `δ`, so each entry is yielded exactly once and in
/// order.
pub struct GridNearest<'a> {
    grid: &'a UniformGrid,
    q: Point,
    qc: (usize, usize),
    heap: BinaryHeap<Reverse<HeapItem>>,
    scratch: Option<&'a mut NearestScratch>,
    /// Next Chebyshev ring radius to expand.
    next_ring: usize,
    /// True once every grid cell has been pushed (or the grid is empty).
    exhausted: bool,
    /// Cell pops this browse performed (one histogram sample on drop).
    visited: u64,
    /// Bucket entries scanned (flushed to the bucket-scan counter on drop).
    scanned: u64,
}

impl Drop for GridNearest<'_> {
    fn drop(&mut self) {
        if self.visited > 0 {
            srb_obs::counter!("index.grid.cell_visits").add(self.visited);
            srb_obs::counter!("index.grid.bucket_scans").add(self.scanned);
            srb_obs::histogram!("index.nn.visits").record(self.visited);
        }
        if let Some(scratch) = self.scratch.take() {
            scratch.put(std::mem::take(&mut self.heap));
        }
    }
}

impl GridNearest<'_> {
    /// Smallest `δ` any cell on ring `r` could have: a cell `r` rings out
    /// is at least `r - 1` full cells away from the query point.
    fn ring_lower_bound(&self, r: usize) -> f64 {
        r.saturating_sub(1) as f64 * self.grid.cell_w.min(self.grid.cell_h)
    }

    /// Pushes every non-empty cell of Chebyshev ring `next_ring`.
    fn expand_ring(&mut self) {
        let g = self.grid;
        let r = self.next_ring as isize;
        self.next_ring += 1;
        let (ci, cj) = (self.qc.0 as isize, self.qc.1 as isize);
        let m = g.m as isize;
        let push = |i: isize, j: isize, this: &mut Self| {
            if i < 0 || j < 0 || i >= m || j >= m {
                return;
            }
            let (i, j) = (i as usize, j as usize);
            let idx = g.bucket_index(i, j);
            if g.buckets[idx].is_empty() {
                return;
            }
            this.heap.push(Reverse(HeapItem {
                dist: g.cell_rect(i, j).min_dist(this.q),
                kind: HeapKind::Node(idx as u32),
            }));
        };
        if r == 0 {
            push(ci, cj, self);
        } else {
            for i in ci - r..=ci + r {
                push(i, cj - r, self);
                push(i, cj + r, self);
            }
            for j in cj - r + 1..=cj + r - 1 {
                push(ci - r, j, self);
                push(ci + r, j, self);
            }
        }
        // Once the ring's box covers the whole grid there is nothing left.
        if ci - r <= 0 && cj - r <= 0 && ci + r >= m - 1 && cj + r >= m - 1 {
            self.exhausted = true;
        }
    }
}

impl NearestStream for GridNearest<'_> {
    fn peek_dist(&self) -> Option<f64> {
        // The frontier head is only trustworthy once no unexpanded ring
        // could beat it; peek therefore reports the conservative minimum of
        // the head key and the next ring's lower bound.
        match (self.heap.peek(), self.exhausted) {
            (None, true) => None,
            (None, false) => Some(self.ring_lower_bound(self.next_ring)),
            (Some(Reverse(item)), true) => Some(item.dist),
            (Some(Reverse(item)), false) => {
                Some(item.dist.min(self.ring_lower_bound(self.next_ring)))
            }
        }
    }
}

impl Iterator for GridNearest<'_> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        loop {
            // Expand rings until the frontier head is admissible.
            while !self.exhausted {
                match self.heap.peek() {
                    Some(Reverse(top)) if top.dist < self.ring_lower_bound(self.next_ring) => break,
                    _ => self.expand_ring(),
                }
            }
            match self.heap.pop() {
                None => return None,
                Some(Reverse(item)) => match item.kind {
                    HeapKind::Entry(id, rect) => {
                        return Some(Neighbor { id, rect, dist: item.dist });
                    }
                    HeapKind::Node(cell) => {
                        self.grid.visits.set(self.grid.visits.get() + 1);
                        self.visited += 1;
                        let (i, j) = (cell as usize % self.grid.m, cell as usize / self.grid.m);
                        let bucket = &self.grid.buckets[cell as usize];
                        self.scanned += bucket.len() as u64;
                        for e in bucket {
                            // Push each entry only from the cell of its
                            // range nearest to the query (per-axis clamp of
                            // the query's cell into the entry's range).
                            let (lo_x, lo_y, hi_x, hi_y) = self.grid.cell_range(&e.rect);
                            let owner = (self.qc.0.clamp(lo_x, hi_x), self.qc.1.clamp(lo_y, hi_y));
                            if owner == (i, j) {
                                self.heap.push(Reverse(HeapItem {
                                    dist: e.rect.min_dist(self.q),
                                    kind: HeapKind::Entry(e.id, e.rect),
                                }));
                            }
                        }
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt_rect(x: f64, y: f64) -> Rect {
        Rect::point(Point::new(x, y))
    }

    fn grid() -> UniformGrid {
        UniformGrid::new(GridConfig { m: 16 }, Rect::UNIT)
    }

    #[test]
    fn insert_get_remove() {
        let mut g = grid();
        g.insert(1, pt_rect(0.1, 0.1));
        g.insert(2, Rect::new(Point::new(0.2, 0.2), Point::new(0.6, 0.6)));
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(1), Some(pt_rect(0.1, 0.1)));
        assert_eq!(g.get(3), None);
        g.check_invariants();
        assert!(g.remove(2).is_some());
        assert!(g.remove(2).is_none());
        assert_eq!(g.len(), 1);
        g.check_invariants();
    }

    #[test]
    fn search_reports_multi_cell_entries_once() {
        let mut g = grid();
        // Spans many cells.
        g.insert(7, Rect::new(Point::new(0.1, 0.1), Point::new(0.9, 0.9)));
        g.insert(8, pt_rect(0.5, 0.5));
        let hits = g.search_vec(&Rect::UNIT);
        let mut ids: Vec<u64> = hits.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![7, 8]);
        // A window overlapping the big entry away from its low cell.
        let hits = g.search_vec(&Rect::new(Point::new(0.8, 0.8), Point::new(0.85, 0.85)));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
    }

    #[test]
    fn update_in_place_vs_relocation() {
        let mut g = grid();
        g.insert(1, Rect::centered(Point::new(0.53, 0.53), 0.01, 0.01));
        // Same cell range: in-place.
        let out = g.update(1, Rect::centered(Point::new(0.535, 0.535), 0.01, 0.01));
        assert_eq!(out, UpdateOutcome::InPlace);
        // Across the space: relocated.
        let out = g.update(1, Rect::centered(Point::new(0.1, 0.1), 0.01, 0.01));
        assert_eq!(out, UpdateOutcome::Reinserted);
        // Missing id: inserted.
        let out = g.update(2, pt_rect(0.9, 0.9));
        assert_eq!(out, UpdateOutcome::Reinserted);
        assert_eq!(g.len(), 2);
        g.check_invariants();
    }

    #[test]
    fn nearest_orders_by_min_dist() {
        let mut g = grid();
        for i in 0..60u64 {
            let x = ((i * 37) % 101) as f64 / 101.0;
            let y = ((i * 61) % 97) as f64 / 97.0;
            g.insert(i, pt_rect(x, y));
        }
        let q = Point::new(0.48, 0.52);
        let dists: Vec<f64> = g.nearest_iter(q).map(|n| n.dist).collect();
        assert_eq!(dists.len(), 60, "browse must visit every entry exactly once");
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "out of order: {w:?}");
        }
    }

    #[test]
    fn nearest_handles_multi_cell_rects() {
        let mut g = grid();
        g.insert(1, Rect::new(Point::new(0.05, 0.05), Point::new(0.95, 0.2)));
        g.insert(2, pt_rect(0.5, 0.6));
        g.insert(3, pt_rect(0.9, 0.95));
        let q = Point::new(0.5, 0.5);
        let ids: Vec<u64> = g.nearest_iter(q).map(|n| n.id).collect();
        assert_eq!(ids.len(), 3);
        // Entry 2 at dist 0.1, entry 1 at dist 0.3, entry 3 further out.
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn nearest_scratch_reuses_capacity() {
        let mut g = grid();
        for i in 0..100u64 {
            g.insert(i, pt_rect((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
        }
        let mut scratch = NearestScratch::new();
        let n1: Vec<u64> =
            g.nearest_iter_with(Point::new(0.2, 0.8), &mut scratch).map(|n| n.id).collect();
        assert_eq!(n1.len(), 100);
        let cap = scratch.capacity();
        assert!(cap > 0, "finished browse must hand its buffer back");
        let n2: Vec<u64> =
            g.nearest_iter_with(Point::new(0.2, 0.8), &mut scratch).map(|n| n.id).collect();
        assert_eq!(n1, n2);
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn empty_grid_queries() {
        let g = grid();
        assert!(g.search_vec(&Rect::UNIT).is_empty());
        assert!(g.nearest_iter(Point::new(0.5, 0.5)).next().is_none());
        assert_eq!(g.get(0), None);
        g.check_invariants();
    }

    #[test]
    fn out_of_space_rects_clamp_consistently() {
        let mut g = grid();
        g.insert(1, Rect::new(Point::new(-0.2, 0.4), Point::new(-0.1, 0.5)));
        let hits = g.search_vec(&Rect::new(Point::new(-0.3, 0.3), Point::new(-0.05, 0.6)));
        assert_eq!(hits.len(), 1);
        assert!(g.search_vec(&Rect::new(Point::new(0.5, 0.5), Point::new(0.6, 0.6))).is_empty());
        g.check_invariants();
    }

    #[test]
    #[should_panic(expected = "invalid GridConfig")]
    fn zero_resolution_fails_loudly() {
        let _ = UniformGrid::new(GridConfig { m: 0 }, Rect::UNIT);
    }
}
