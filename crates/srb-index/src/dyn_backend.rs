//! Runtime-dispatched backend: [`DynBackend`] holds *either* an
//! [`RStarTree`] or a [`UniformGrid`] behind one concrete type, so the
//! backend choice moves from a compile-time type parameter to a runtime
//! value — each shard of a sharded deployment can run a different index
//! structure, and the adaptive controller can *migrate* a live shard
//! between structures at a batch boundary.
//!
//! Dispatch is a two-variant enum match (a predictable branch, not a
//! vtable call); the steady-state allocation pins in `alloc_steady.rs`
//! and the dispatch-overhead leg of the `adaptive` bench bound its cost.
//!
//! Migration ([`DynBackend::rebuild_from`]) reconstructs the target
//! structure from the source's contents in **id order**, which makes the
//! rebuilt structure a canonical function of the entry set alone — two
//! engines that migrate at the same point from identical contents end up
//! bit-identical, which is what lets the durability plane checkpoint and
//! replay across migrations.

use crate::backend::{BackendConfig, BackendKind, BackendStats, NearestScratch, NearestStream};
use crate::persist::{dec_rect, put_rect};
use crate::{
    EntryId, GridNearest, LeafEntry, NearestIter, Neighbor, RStarTree, SpatialBackend, UniformGrid,
    UpdateOutcome,
};
use srb_durable::codec::put_u8;
use srb_durable::DurableError;
use srb_geom::{Point, Rect};

/// The concrete structure a [`DynBackend`] currently runs.
enum DynInner {
    RStar(RStarTree),
    Grid(UniformGrid),
}

/// A spatial backend whose concrete index structure is chosen — and can be
/// changed — at runtime. See the module docs.
pub struct DynBackend {
    /// The indexed space, kept so a migration *to* the grid knows its cell
    /// geometry even while the live structure is a tree.
    space: Rect,
    inner: DynInner,
}

/// Resolves an [`BackendConfig::Adaptive`] policy to the concrete config
/// of its initial kind; concrete configs pass through.
fn resolve(config: &BackendConfig) -> BackendConfig {
    match config {
        BackendConfig::Adaptive(cfg) => cfg.config_for(cfg.initial),
        concrete => *concrete,
    }
}

impl DynBackend {
    /// Builds the target structure of `config` and fills it with `src`'s
    /// entries in ascending-id order, then carries over `src`'s work-unit
    /// counter (a migration is bookkeeping, not query work — its cost is
    /// billed through the `index.adaptive.*` telemetry counters instead).
    ///
    /// Id-ordered insertion makes the result a canonical function of the
    /// entry *set*: the source's own structure and history do not leak
    /// into the rebuilt index.
    pub fn rebuild_from<S: SpatialBackend + ?Sized>(
        config: &BackendConfig,
        space: Rect,
        src: &S,
    ) -> Self {
        let mut entries: Vec<(EntryId, Rect)> = Vec::with_capacity(src.len());
        src.for_each_entry(&mut |id, rect| entries.push((id, rect)));
        entries.sort_unstable_by_key(|&(id, _)| id);
        let mut fresh = <DynBackend as SpatialBackend>::build(&resolve(config), space);
        for (id, rect) in entries {
            <DynBackend as SpatialBackend>::insert(&mut fresh, id, rect);
        }
        fresh.set_visits(src.visits());
        fresh
    }

    /// Overwrites the work-unit counter (used by migration carry-over).
    fn set_visits(&self, v: u64) {
        match &self.inner {
            DynInner::RStar(t) => t.visits.set(v),
            DynInner::Grid(g) => g.visits.set(v),
        }
    }
}

impl SpatialBackend for DynBackend {
    type Nearest<'a> = DynNearest<'a>;

    /// Unlike the monomorphized backends, *every* config variant builds:
    /// `RStar`/`Grid` build that structure, `Adaptive` builds its
    /// configured initial kind.
    fn build(config: &BackendConfig, space: Rect) -> Self {
        let inner = match resolve(config) {
            BackendConfig::RStar(cfg) => DynInner::RStar(RStarTree::new(cfg)),
            BackendConfig::Grid(cfg) => DynInner::Grid(UniformGrid::new(cfg, space)),
            BackendConfig::Adaptive(_) => unreachable!("resolve() returns a concrete config"),
        };
        DynBackend { space, inner }
    }

    fn label() -> &'static str {
        "dyn"
    }

    fn kind(&self) -> BackendKind {
        match &self.inner {
            DynInner::RStar(_) => BackendKind::RStar,
            DynInner::Grid(_) => BackendKind::Grid,
        }
    }

    fn accepts_kind(_kind: BackendKind) -> bool {
        true
    }

    fn migrate(&mut self, config: &BackendConfig) -> bool {
        let target = resolve(config);
        // Idempotence: when the live structure already matches the target
        // structure *and parameters*, skip the rebuild entirely.
        let already = match (&target, &self.inner) {
            (BackendConfig::RStar(cfg), DynInner::RStar(t)) => *cfg == t.config(),
            (BackendConfig::Grid(cfg), DynInner::Grid(g)) => cfg.m == g.m(),
            _ => false,
        };
        if !already {
            *self = DynBackend::rebuild_from(&target, self.space, &*self);
        }
        true
    }

    fn grid_resolution(&self) -> Option<usize> {
        match &self.inner {
            DynInner::RStar(_) => None,
            DynInner::Grid(g) => Some(g.m()),
        }
    }

    fn len(&self) -> usize {
        match &self.inner {
            DynInner::RStar(t) => t.len(),
            DynInner::Grid(g) => g.len(),
        }
    }

    fn insert(&mut self, id: EntryId, rect: Rect) {
        match &mut self.inner {
            DynInner::RStar(t) => t.insert(id, rect),
            DynInner::Grid(g) => g.insert(id, rect),
        }
    }

    fn remove(&mut self, id: EntryId) -> Option<Rect> {
        match &mut self.inner {
            DynInner::RStar(t) => t.remove(id),
            DynInner::Grid(g) => g.remove(id),
        }
    }

    fn update(&mut self, id: EntryId, new_rect: Rect) -> UpdateOutcome {
        match &mut self.inner {
            DynInner::RStar(t) => t.update(id, new_rect),
            DynInner::Grid(g) => g.update(id, new_rect),
        }
    }

    fn get(&self, id: EntryId) -> Option<Rect> {
        match &self.inner {
            DynInner::RStar(t) => t.get(id),
            DynInner::Grid(g) => g.get(id),
        }
    }

    fn search(&self, query: &Rect, f: &mut dyn FnMut(&LeafEntry)) {
        match &self.inner {
            DynInner::RStar(t) => t.search(query, |e| f(e)),
            DynInner::Grid(g) => g.search(query, |e| f(e)),
        }
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(EntryId, Rect)) {
        match &self.inner {
            DynInner::RStar(t) => <RStarTree as SpatialBackend>::for_each_entry(t, f),
            DynInner::Grid(g) => <UniformGrid as SpatialBackend>::for_each_entry(g, f),
        }
    }

    fn nearest_iter(&self, q: Point) -> Self::Nearest<'_> {
        match &self.inner {
            DynInner::RStar(t) => DynNearest::RStar(t.nearest_iter(q)),
            DynInner::Grid(g) => DynNearest::Grid(g.nearest_iter(q)),
        }
    }

    fn nearest_iter_with<'a>(
        &'a self,
        q: Point,
        scratch: &'a mut NearestScratch,
    ) -> Self::Nearest<'a> {
        match &self.inner {
            DynInner::RStar(t) => DynNearest::RStar(t.nearest_iter_with(q, scratch)),
            DynInner::Grid(g) => DynNearest::Grid(g.nearest_iter_with(q, scratch)),
        }
    }

    fn visits(&self) -> u64 {
        match &self.inner {
            DynInner::RStar(t) => t.visits(),
            DynInner::Grid(g) => g.visits(),
        }
    }

    fn reset_visits(&self) {
        match &self.inner {
            DynInner::RStar(t) => t.reset_visits(),
            DynInner::Grid(g) => g.reset_visits(),
        }
    }

    fn check_invariants(&self) {
        match &self.inner {
            DynInner::RStar(t) => t.check_invariants(),
            DynInner::Grid(g) => g.check_invariants(),
        }
    }

    fn stats(&self) -> BackendStats {
        match &self.inner {
            DynInner::RStar(t) => <RStarTree as SpatialBackend>::stats(t),
            DynInner::Grid(g) => <UniformGrid as SpatialBackend>::stats(g),
        }
    }

    /// Layout: indexed space, one [`BackendKind`] tag byte, then the inner
    /// structure's own bit-exact encoding — so a recovered `DynBackend`
    /// resumes on exactly the structure (and visit counter) it crashed on,
    /// even mid-way through an adaptive run.
    fn encode_state(&self, out: &mut Vec<u8>) {
        put_rect(out, &self.space);
        put_u8(out, self.kind().tag());
        match &self.inner {
            DynInner::RStar(t) => <RStarTree as SpatialBackend>::encode_state(t, out),
            DynInner::Grid(g) => <UniformGrid as SpatialBackend>::encode_state(g, out),
        }
    }

    fn decode_state(dec: &mut srb_durable::Dec<'_>) -> Result<Self, DurableError> {
        let space = dec_rect(dec)?;
        let kind = BackendKind::from_tag(dec.u8()?)
            .ok_or(DurableError::Corrupt("unknown dyn backend tag"))?;
        let inner = match kind {
            BackendKind::RStar => DynInner::RStar(RStarTree::decode_state(dec)?),
            BackendKind::Grid => DynInner::Grid(UniformGrid::decode_state(dec)?),
        };
        Ok(DynBackend { space, inner })
    }
}

/// Best-first browse iterator of [`DynBackend`]: delegates to whichever
/// structure is live.
pub enum DynNearest<'a> {
    /// Browsing an R\*-tree.
    RStar(NearestIter<'a>),
    /// Browsing a uniform grid.
    Grid(GridNearest<'a>),
}

impl Iterator for DynNearest<'_> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        match self {
            DynNearest::RStar(it) => it.next(),
            DynNearest::Grid(it) => it.next(),
        }
    }
}

impl NearestStream for DynNearest<'_> {
    fn peek_dist(&self) -> Option<f64> {
        match self {
            DynNearest::RStar(it) => it.peek_dist(),
            DynNearest::Grid(it) => it.peek_dist(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveConfig, GridConfig, TreeConfig};

    fn pt_rect(x: f64, y: f64) -> Rect {
        Rect::new(Point::new(x, y), Point::new(x, y))
    }

    fn filled(config: &BackendConfig, n: u64) -> DynBackend {
        let mut b = DynBackend::build(config, Rect::UNIT);
        for i in 0..n {
            // Deterministic scatter, including a point pinned at each corner.
            let x = (i as f64 * 0.37).fract();
            let y = (i as f64 * 0.61).fract();
            b.insert(i, pt_rect(x, y));
        }
        b
    }

    /// Entry sets and search results survive a round of migrations.
    #[test]
    fn migration_preserves_contents() {
        let mut b = filled(&BackendConfig::default(), 200);
        let window = Rect::new(Point::new(0.2, 0.2), Point::new(0.6, 0.6));
        let before: Vec<_> = {
            let mut v = b.search_vec(&window);
            v.sort_by_key(|e| e.id);
            v
        };
        assert_eq!(b.kind(), BackendKind::RStar);

        assert!(b.migrate(&BackendConfig::Grid(GridConfig { m: 12 })));
        assert_eq!(b.kind(), BackendKind::Grid);
        assert_eq!(b.grid_resolution(), Some(12));
        assert_eq!(b.len(), 200);
        b.check_invariants();
        let mut mid = b.search_vec(&window);
        mid.sort_by_key(|e| e.id);
        assert_eq!(mid, before);

        // Grid → grid with a different resolution is a retune, not a no-op.
        assert!(b.migrate(&BackendConfig::Grid(GridConfig { m: 48 })));
        assert_eq!(b.grid_resolution(), Some(48));

        assert!(b.migrate(&BackendConfig::RStar(TreeConfig::default())));
        assert_eq!(b.kind(), BackendKind::RStar);
        b.check_invariants();
        let mut after = b.search_vec(&window);
        after.sort_by_key(|e| e.id);
        assert_eq!(after, before);
    }

    /// The rebuilt structure is a canonical function of the entry set:
    /// insertion history does not leak through a migration.
    #[test]
    fn rebuild_is_history_independent() {
        let target = BackendConfig::Grid(GridConfig { m: 16 });
        let a = filled(&BackendConfig::default(), 150);
        // Same entries, inserted in reverse and with churn.
        let mut b = DynBackend::build(&BackendConfig::default(), Rect::UNIT);
        for i in (0..150u64).rev() {
            let x = (i as f64 * 0.37).fract();
            let y = (i as f64 * 0.61).fract();
            b.insert(i, pt_rect(x, y));
        }
        for i in 0..40u64 {
            b.remove(i);
            let x = (i as f64 * 0.37).fract();
            let y = (i as f64 * 0.61).fract();
            b.insert(i, pt_rect(x, y));
        }
        let ra = DynBackend::rebuild_from(&target, Rect::UNIT, &a);
        let rb = DynBackend::rebuild_from(&target, Rect::UNIT, &b);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        ra.encode_state(&mut ea);
        rb.encode_state(&mut eb);
        // Visit counters may differ (carried over), so compare from the
        // structural bytes only after aligning them.
        ra.set_visits(0);
        rb.set_visits(0);
        ea.clear();
        eb.clear();
        ra.encode_state(&mut ea);
        rb.encode_state(&mut eb);
        assert_eq!(ea, eb, "rebuild must be canonical in the entry set");
    }

    /// Migration carries the work-unit counter and skips matched configs.
    #[test]
    fn migration_counter_and_idempotence() {
        let b = filled(&BackendConfig::default(), 64);
        b.search_vec(&Rect::UNIT);
        let visits = b.visits();
        assert!(visits > 0);
        let g =
            DynBackend::rebuild_from(&BackendConfig::Grid(GridConfig::default()), Rect::UNIT, &b);
        assert_eq!(g.visits(), visits, "migration must not invent or erase work units");

        let mut g = g;
        let mut bytes_before = Vec::new();
        g.encode_state(&mut bytes_before);
        assert!(g.migrate(&BackendConfig::Grid(GridConfig::default())));
        let mut bytes_after = Vec::new();
        g.encode_state(&mut bytes_after);
        assert_eq!(bytes_before, bytes_after, "matched-config migration must be a no-op");
    }

    /// Entries clamped from outside the indexed space survive migration in
    /// both directions (the reason the sweep is `for_each_entry`, not a
    /// whole-space search).
    #[test]
    fn out_of_space_entries_survive_migration() {
        let mut b = DynBackend::build(&BackendConfig::Grid(GridConfig { m: 8 }), Rect::UNIT);
        b.insert(1, pt_rect(1.5, -0.25));
        b.insert(2, pt_rect(0.5, 0.5));
        assert!(b.migrate(&BackendConfig::RStar(TreeConfig::default())));
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1), Some(pt_rect(1.5, -0.25)));
        assert!(b.migrate(&BackendConfig::Grid(GridConfig { m: 8 })));
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1), Some(pt_rect(1.5, -0.25)));
    }

    /// An adaptive config builds its initial kind, and checkpoint bytes
    /// round-trip whichever structure is live.
    #[test]
    fn adaptive_build_and_round_trip() {
        let cfg = BackendConfig::Adaptive(AdaptiveConfig {
            initial: BackendKind::Grid,
            ..AdaptiveConfig::default()
        });
        let mut b = filled(&cfg, 100);
        assert_eq!(b.kind(), BackendKind::Grid);
        for kind_cfg in
            [BackendConfig::Grid(GridConfig { m: 64 }), BackendConfig::RStar(TreeConfig::default())]
        {
            assert!(b.migrate(&kind_cfg));
            b.search_vec(&Rect::UNIT);
            let mut bytes = Vec::new();
            b.encode_state(&mut bytes);
            let mut dec = srb_durable::Dec::new(&bytes);
            let back = DynBackend::decode_state(&mut dec).expect("decode");
            dec.finish().expect("no trailing bytes");
            assert_eq!(back.kind(), b.kind());
            assert_eq!(back.len(), b.len());
            assert_eq!(back.visits(), b.visits());
            let mut again = Vec::new();
            back.encode_state(&mut again);
            assert_eq!(again, bytes, "decode/encode must be bit-identical");
        }
    }

    /// Corrupt tag bytes yield a typed error, never a panic.
    #[test]
    fn corrupt_tag_is_total() {
        let b = filled(&BackendConfig::default(), 10);
        let mut bytes = Vec::new();
        b.encode_state(&mut bytes);
        bytes[32] = 0xEE; // the tag byte follows the 4×f64 space rect
        let mut dec = srb_durable::Dec::new(&bytes);
        assert!(matches!(
            DynBackend::decode_state(&mut dec),
            Err(DurableError::Corrupt("unknown dyn backend tag"))
        ));
    }
}
