//! Arena-allocated R*-tree nodes.

use srb_geom::Rect;

/// Identifier of an indexed entry (a moving object id in the framework).
pub type EntryId = u64;

/// Index of a node in the tree's arena.
pub(crate) type NodeId = u32;

/// Sentinel for "no node".
pub(crate) const NO_NODE: NodeId = u32::MAX;

/// A leaf entry: an object id with its bounding rectangle (a safe region in
/// the SRB framework, or an exact point stored as a degenerate rectangle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeafEntry {
    /// The entry id (a moving-object id in the framework).
    pub id: EntryId,
    /// The stored rectangle (safe region or degenerate point).
    pub rect: Rect,
}

#[derive(Clone, Debug)]
pub(crate) enum NodeKind {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<NodeId>),
}

#[derive(Clone, Debug)]
pub(crate) struct Node {
    /// Minimum bounding rectangle of everything below this node.
    pub rect: Rect,
    pub parent: NodeId,
    pub kind: NodeKind,
    /// Distance from the leaf level (leaves are level 0).
    pub level: u16,
}

impl Node {
    pub fn new_leaf() -> Self {
        Node {
            rect: Rect::point(srb_geom::Point::ORIGIN),
            parent: NO_NODE,
            kind: NodeKind::Leaf(Vec::new()),
            level: 0,
        }
    }

    pub fn new_internal(level: u16) -> Self {
        Node {
            rect: Rect::point(srb_geom::Point::ORIGIN),
            parent: NO_NODE,
            kind: NodeKind::Internal(Vec::new()),
            level,
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    pub fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(v) => v.len(),
            NodeKind::Internal(v) => v.len(),
        }
    }

    pub fn leaf_entries(&self) -> &[LeafEntry] {
        match &self.kind {
            NodeKind::Leaf(v) => v,
            NodeKind::Internal(_) => panic!("leaf_entries on internal node"),
        }
    }

    pub fn leaf_entries_mut(&mut self) -> &mut Vec<LeafEntry> {
        match &mut self.kind {
            NodeKind::Leaf(v) => v,
            NodeKind::Internal(_) => panic!("leaf_entries_mut on internal node"),
        }
    }

    /// Child list of an internal node. Nodes do not know their own arena
    /// index, so callers pass `id` purely to make the corruption report
    /// actionable; `#[track_caller]` points the panic at the misuse site.
    #[track_caller]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match &self.kind {
            NodeKind::Internal(v) => v,
            NodeKind::Leaf(_) => panic!(
                "children() on leaf node {id} (level {}, {} entries)",
                self.level,
                self.len()
            ),
        }
    }

    /// Mutable child list of an internal node; see [`Node::children`] for
    /// the `id` parameter.
    #[track_caller]
    pub fn children_mut(&mut self, id: NodeId) -> &mut Vec<NodeId> {
        let level = self.level;
        let len = self.len();
        match &mut self.kind {
            NodeKind::Internal(v) => v,
            NodeKind::Leaf(_) => {
                panic!("children_mut() on leaf node {id} (level {level}, {len} entries)")
            }
        }
    }
}
