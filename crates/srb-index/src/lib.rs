//! # srb-index
//!
//! The *object-index layer* of the SRB monitoring framework (paper §3.2,
//! Figure 3.1): spatial indexes over the current safe region of every
//! moving object, behind the pluggable [`SpatialBackend`] trait. Every
//! backend supports
//!
//! - **frequent updates** via a cheap-relocation fast path classified by
//!   [`UpdateOutcome`] (for the R\*-tree, the bottom-up technique of Lee et
//!   al., VLDB 2003 — what the paper adopts in §7.1),
//! - **range search** over rectangles ([`SpatialBackend::search`]), and
//! - **incremental best-first nearest-neighbor browsing**
//!   ([`SpatialBackend::nearest_iter`]; Hjaltason & Samet distance
//!   browsing, the paradigm of the paper's Algorithm 2), with a reusable
//!   [`NearestScratch`] frontier for allocation-free steady-state kNN.
//!
//! Two backends ship here: [`RStarTree`], the from-scratch R\*-tree
//! (Beckmann et al., SIGMOD 1990) this file implements, and
//! [`UniformGrid`], a cell-bucketed grid index. [`bulk_load`] (STR) serves
//! the PRD baseline, which rebuilds its index from exact positions every
//! period. Backends are selected through [`BackendConfig`] (see
//! `DESIGN.md` §13 for the tradeoff).
//!
//! Everything is arena- or bucket-allocated, entirely safe Rust, and
//! instrumented with a deterministic visit counter so experiments can
//! report work units alongside wall-clock time. When the `obs` feature is
//! on (default), the backends additionally publish per-search visit
//! histograms (`index.search.visits`, `index.nn.visits`), update-path
//! counters (`index.update.*`, `index.splits`, `index.forced_reinserts`),
//! and grid counters (`index.grid.cell_visits`, `index.grid.bucket_scans`,
//! `index.grid.relocations`) through the `srb-obs` registry; telemetry only
//! observes and never alters index behavior.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod backend;
mod bulk;
mod dyn_backend;
mod grid;
mod node;
mod persist;
mod split;

pub use backend::{
    AdaptiveConfig, BackendConfig, BackendKind, BackendStats, NearestScratch, NearestStream,
    SpatialBackend,
};
pub use bulk::bulk_load;
pub use dyn_backend::{DynBackend, DynNearest};
pub use grid::{GridConfig, GridNearest, UniformGrid};
pub use node::{EntryId, LeafEntry};

use backend::{HeapItem, HeapKind};
use node::{Node, NodeId, NodeKind, NO_NODE};
use split::{mbr_of, rstar_split};
use srb_geom::{Point, Rect};
use srb_hash::FastMap;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Node capacity configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per node (`m`), at most `max_entries / 2`.
    pub min_entries: usize,
    /// Number of entries evicted on the first overflow of a level
    /// (R\* forced reinsertion; ~30% of `M` in the original paper).
    pub reinsert_count: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_entries: 32, min_entries: 12, reinsert_count: 9 }
    }
}

impl TreeConfig {
    /// Validates the configuration, returning a typed error for any value
    /// that would corrupt splits or forced reinsertion: `max_entries < 4`,
    /// `min_entries` outside `[2, max_entries / 2]`, or a `reinsert_count`
    /// outside `[1, max_entries + 1 - 2 * min_entries]` (evicting more
    /// would leave an overflowing node unable to split into two legal
    /// halves).
    pub fn try_validated(self) -> Result<Self, ConfigError> {
        if self.max_entries < 4 {
            return Err(ConfigError::MaxEntriesTooSmall { max_entries: self.max_entries });
        }
        if self.min_entries < 2 || self.min_entries > self.max_entries / 2 {
            return Err(ConfigError::BadMinEntries {
                min_entries: self.min_entries,
                max_entries: self.max_entries,
            });
        }
        let limit = self.max_entries + 1 - 2 * self.min_entries;
        if self.reinsert_count < 1 || self.reinsert_count > limit {
            return Err(ConfigError::BadReinsertCount {
                reinsert_count: self.reinsert_count,
                limit,
            });
        }
        Ok(self)
    }

    /// Panicking form of [`try_validated`](Self::try_validated) — invalid
    /// configurations fail loudly at construction instead of silently
    /// corrupting the tree later.
    pub fn validated(self) -> Self {
        match self.try_validated() {
            Ok(cfg) => cfg,
            Err(e) => panic!("invalid TreeConfig: {e}"),
        }
    }
}

/// A structurally invalid index configuration, reported at construction
/// time by [`TreeConfig::try_validated`] / [`GridConfig::try_validated`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_entries` below the minimum of 4 a split requires.
    MaxEntriesTooSmall {
        /// The offending node capacity.
        max_entries: usize,
    },
    /// `min_entries` outside `[2, max_entries / 2]` — a split could not
    /// give both halves a legal fill.
    BadMinEntries {
        /// The offending minimum fill.
        min_entries: usize,
        /// The capacity it was checked against.
        max_entries: usize,
    },
    /// `reinsert_count` outside `[1, max_entries + 1 - 2 * min_entries]`.
    BadReinsertCount {
        /// The offending eviction count.
        reinsert_count: usize,
        /// The largest legal eviction count for this configuration.
        limit: usize,
    },
    /// Grid resolution of zero, or large enough to overflow cell ids.
    BadGridResolution {
        /// The offending per-axis resolution.
        m: usize,
    },
    /// `SRB_BACKEND` named a backend that does not exist.
    UnknownBackend {
        /// The unrecognized value (leaked to `'static` so the error stays
        /// `Copy`; env parsing runs once per process).
        value: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MaxEntriesTooSmall { max_entries } => {
                write!(f, "max_entries must be at least 4, got {max_entries}")
            }
            ConfigError::BadMinEntries { min_entries, max_entries } => write!(
                f,
                "min_entries must lie in [2, max_entries / 2 = {}], got {min_entries}",
                max_entries / 2
            ),
            ConfigError::BadReinsertCount { reinsert_count, limit } => write!(
                f,
                "reinsert_count must lie in [1, max_entries + 1 - 2 * min_entries = {limit}], \
                 got {reinsert_count}"
            ),
            ConfigError::BadGridResolution { m } => {
                write!(f, "grid resolution must lie in [1, 32768], got {m}")
            }
            ConfigError::UnknownBackend { value } => write!(
                f,
                "SRB_BACKEND={value:?} is not a known backend \
                 (use \"rstar\", \"grid\", or \"adaptive\")"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Outcome of [`RStarTree::update`], distinguishing the bottom-up fast paths
/// from the slow delete+reinsert path (reported by the ablation benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The new rectangle stayed within the leaf MBR — pure in-place update.
    InPlace,
    /// The leaf MBR grew but its parent still covered it — local expansion.
    LocalExpand,
    /// Full delete + reinsert.
    Reinserted,
}

/// An entry yielded by [`RStarTree::nearest_iter`]: the object, its stored
/// rectangle, and the *minimum* distance `δ(q, rect)` used as the ordering
/// key.
#[derive(Clone, Copy, Debug)]
pub struct Neighbor {
    /// The entry id.
    pub id: EntryId,
    /// The stored rectangle (safe region or degenerate point).
    pub rect: Rect,
    /// `δ(q, rect)` — minimum distance to the query point.
    pub dist: f64,
}

/// The R\*-tree.
pub struct RStarTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) len: usize,
    pub(crate) leaf_of: FastMap<EntryId, NodeId>,
    pub(crate) config: TreeConfig,
    pub(crate) visits: Cell<u64>,
    /// Bulk-loaded trees may have trailing nodes below `min_entries`; the
    /// invariant checker relaxes the fill-factor assertion for them.
    pub(crate) relaxed_min: bool,
}

impl Default for RStarTree {
    fn default() -> Self {
        Self::new(TreeConfig::default())
    }
}

impl RStarTree {
    /// Creates an empty tree with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        let config = config.validated();
        let mut tree = RStarTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NO_NODE,
            len: 0,
            leaf_of: FastMap::default(),
            config,
            visits: Cell::new(0),
            relaxed_min: false,
        };
        tree.root = tree.alloc(Node::new_leaf());
        tree
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// Height of the tree (1 for a single leaf root).
    pub fn height(&self) -> usize {
        self.node(self.root).level as usize + 1
    }

    /// Total node visits performed by searches since the last
    /// [`reset_visits`](Self::reset_visits) — the deterministic work-unit
    /// counter used by the experiment harness.
    pub fn visits(&self) -> u64 {
        self.visits.get()
    }

    /// Resets the node-visit counter.
    pub fn reset_visits(&self) {
        self.visits.set(0);
    }

    // ------------------------------------------------------------------
    // Arena plumbing
    // ------------------------------------------------------------------

    fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            let id = self.nodes.len() as NodeId;
            self.nodes.push(node);
            id
        }
    }

    fn release(&mut self, id: NodeId) {
        self.free.push(id);
    }

    #[inline]
    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    #[inline]
    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts an entry. `id` must not already be present (checked in debug
    /// builds; use [`update`](Self::update) to move an existing entry).
    pub fn insert(&mut self, id: EntryId, rect: Rect) {
        debug_assert!(!self.leaf_of.contains_key(&id), "duplicate insert of id {id}");
        let mut reinserted = 0u64;
        self.insert_entry(LeafEntry { id, rect }, &mut reinserted);
        self.len += 1;
    }

    fn insert_entry(&mut self, entry: LeafEntry, reinserted: &mut u64) {
        let leaf = self.choose_subtree(entry.rect, 0);
        self.leaf_of.insert(entry.id, leaf);
        let node = self.node_mut(leaf);
        if node.len() == 0 {
            node.rect = entry.rect;
        } else {
            node.rect = node.rect.union(&entry.rect);
        }
        node.leaf_entries_mut().push(entry);
        self.expand_upward(leaf, entry.rect);
        if self.node(leaf).len() > self.config.max_entries {
            self.overflow(leaf, reinserted);
        }
    }

    fn insert_subtree(&mut self, child: NodeId, reinserted: &mut u64) {
        let child_level = self.node(child).level;
        let child_rect = self.node(child).rect;
        let target = self.choose_subtree(child_rect, child_level + 1);
        self.node_mut(child).parent = target;
        let node = self.node_mut(target);
        if node.len() == 0 {
            node.rect = child_rect;
        } else {
            node.rect = node.rect.union(&child_rect);
        }
        node.children_mut(target).push(child);
        self.expand_upward(target, child_rect);
        if self.node(target).len() > self.config.max_entries {
            self.overflow(target, reinserted);
        }
    }

    /// Expands MBRs on the path from `from`'s parent to the root.
    fn expand_upward(&mut self, from: NodeId, rect: Rect) {
        let mut cur = self.node(from).parent;
        while cur != NO_NODE {
            let n = self.node_mut(cur);
            let grown = n.rect.union(&rect);
            if grown == n.rect {
                break;
            }
            n.rect = grown;
            cur = n.parent;
        }
    }

    /// Descends from the root to a node at `target_level`, using the R\*
    /// subtree-choice heuristics.
    fn choose_subtree(&self, rect: Rect, target_level: u16) -> NodeId {
        let mut cur = self.root;
        debug_assert!(self.node(cur).level >= target_level, "tree too short");
        while self.node(cur).level > target_level {
            let node = self.node(cur);
            let children = node.children(cur);
            let leaf_children = node.level == 1;
            let mut best: Option<(f64, f64, f64, NodeId)> = None;
            for &c in children {
                let crect = self.node(c).rect;
                let area_enl = crect.area_enlargement(&rect);
                let overlap_enl = if leaf_children {
                    // Overlap enlargement against siblings (the R* heuristic
                    // for the level just above the leaves).
                    let grown = crect.union(&rect);
                    let mut delta = 0.0;
                    for &o in children {
                        if o != c {
                            let or = self.node(o).rect;
                            delta += grown.overlap_area(&or) - crect.overlap_area(&or);
                        }
                    }
                    delta
                } else {
                    0.0
                };
                let key = (overlap_enl, area_enl, crect.area());
                if best.is_none_or(|(o, a, ar, _)| key < (o, a, ar)) {
                    best = Some((key.0, key.1, key.2, c));
                }
            }
            cur = best.expect("internal node has children").3;
        }
        cur
    }

    fn overflow(&mut self, node_id: NodeId, reinserted: &mut u64) {
        let level = self.node(node_id).level;
        let is_root = node_id == self.root;
        let bit = 1u64 << level.min(63);
        if !is_root && *reinserted & bit == 0 {
            *reinserted |= bit;
            srb_obs::counter!("index.forced_reinserts").inc();
            self.forced_reinsert(node_id, reinserted);
        } else {
            srb_obs::counter!("index.splits").inc();
            self.split_node(node_id, reinserted);
        }
    }

    fn forced_reinsert(&mut self, node_id: NodeId, reinserted: &mut u64) {
        let center = self.node(node_id).rect.center();
        let p = self.config.reinsert_count;
        if self.node(node_id).is_leaf() {
            let entries = self.node_mut(node_id).leaf_entries_mut();
            entries.sort_by(|a, b| {
                let da = a.rect.center().dist_sq(center);
                let db = b.rect.center().dist_sq(center);
                da.partial_cmp(&db).unwrap()
            });
            let at = entries.len() - p;
            let evicted: Vec<LeafEntry> = entries.split_off(at);
            self.recompute_mbr(node_id);
            self.shrink_upward(node_id);
            // Reinsert closest-first.
            for e in evicted.into_iter().rev() {
                self.insert_entry(e, reinserted);
            }
        } else {
            let kids = self.node(node_id).children(node_id).to_vec();
            let mut order: Vec<usize> = (0..kids.len()).collect();
            order.sort_by(|&a, &b| {
                let da = self.node(kids[a]).rect.center().dist_sq(center);
                let db = self.node(kids[b]).rect.center().dist_sq(center);
                da.partial_cmp(&db).unwrap()
            });
            let keep: Vec<NodeId> = order[..kids.len() - p].iter().map(|&i| kids[i]).collect();
            let evict: Vec<NodeId> = order[kids.len() - p..].iter().map(|&i| kids[i]).collect();
            *self.node_mut(node_id).children_mut(node_id) = keep;
            self.recompute_mbr(node_id);
            self.shrink_upward(node_id);
            for c in evict.into_iter().rev() {
                self.insert_subtree(c, reinserted);
            }
        }
    }

    fn split_node(&mut self, node_id: NodeId, reinserted: &mut u64) {
        let level = self.node(node_id).level;
        let min = self.config.min_entries;
        let (sib_id, node_rect, sib_rect) = if self.node(node_id).is_leaf() {
            let items = std::mem::take(self.node_mut(node_id).leaf_entries_mut());
            let rects: Vec<Rect> = items.iter().map(|e| e.rect).collect();
            let split = rstar_split(&rects, min);
            let node_rect = mbr_of(&rects, &split.first);
            let sib_rect = mbr_of(&rects, &split.second);
            let first: Vec<LeafEntry> = split.first.iter().map(|&i| items[i]).collect();
            let second: Vec<LeafEntry> = split.second.iter().map(|&i| items[i]).collect();
            *self.node_mut(node_id).leaf_entries_mut() = first;
            let mut sib = Node::new_leaf();
            sib.kind = NodeKind::Leaf(second);
            let sib_id = self.alloc(sib);
            let moved: Vec<EntryId> =
                self.node(sib_id).leaf_entries().iter().map(|e| e.id).collect();
            for id in moved {
                self.leaf_of.insert(id, sib_id);
            }
            (sib_id, node_rect, sib_rect)
        } else {
            let items = std::mem::take(self.node_mut(node_id).children_mut(node_id));
            let rects: Vec<Rect> = items.iter().map(|&c| self.node(c).rect).collect();
            let split = rstar_split(&rects, min);
            let node_rect = mbr_of(&rects, &split.first);
            let sib_rect = mbr_of(&rects, &split.second);
            let first: Vec<NodeId> = split.first.iter().map(|&i| items[i]).collect();
            let second: Vec<NodeId> = split.second.iter().map(|&i| items[i]).collect();
            *self.node_mut(node_id).children_mut(node_id) = first;
            let mut sib = Node::new_internal(level);
            sib.kind = NodeKind::Internal(second.clone());
            let sib_id = self.alloc(sib);
            for c in second {
                self.node_mut(c).parent = sib_id;
            }
            (sib_id, node_rect, sib_rect)
        };
        self.node_mut(node_id).rect = node_rect;
        self.node_mut(sib_id).rect = sib_rect;
        self.node_mut(sib_id).level = level;

        if node_id == self.root {
            let mut new_root = Node::new_internal(level + 1);
            new_root.rect = node_rect.union(&sib_rect);
            new_root.kind = NodeKind::Internal(vec![node_id, sib_id]);
            let root_id = self.alloc(new_root);
            self.node_mut(node_id).parent = root_id;
            self.node_mut(sib_id).parent = root_id;
            self.root = root_id;
        } else {
            let parent = self.node(node_id).parent;
            self.node_mut(sib_id).parent = parent;
            self.node_mut(parent).children_mut(parent).push(sib_id);
            self.shrink_upward(node_id);
            if self.node(parent).len() > self.config.max_entries {
                self.overflow(parent, reinserted);
            }
        }
    }

    fn recompute_mbr(&mut self, node_id: NodeId) {
        let rect = match &self.node(node_id).kind {
            NodeKind::Leaf(entries) => {
                let mut it = entries.iter();
                match it.next() {
                    None => Rect::point(Point::ORIGIN),
                    Some(first) => it.fold(first.rect, |acc, e| acc.union(&e.rect)),
                }
            }
            NodeKind::Internal(children) => {
                let mut it = children.iter();
                let first = *it.next().expect("internal node non-empty");
                let start = self.node(first).rect;
                it.fold(start, |acc, &c| acc.union(&self.node(c).rect))
            }
        };
        self.node_mut(node_id).rect = rect;
    }

    /// Recomputes exact MBRs from `from`'s parent up to the root.
    fn shrink_upward(&mut self, from: NodeId) {
        let mut cur = self.node(from).parent;
        while cur != NO_NODE {
            let old = self.node(cur).rect;
            self.recompute_mbr(cur);
            if self.node(cur).rect == old {
                break;
            }
            cur = self.node(cur).parent;
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes an entry, returning its stored rectangle.
    pub fn remove(&mut self, id: EntryId) -> Option<Rect> {
        let leaf = self.leaf_of.remove(&id)?;
        let entries = self.node_mut(leaf).leaf_entries_mut();
        let pos = entries.iter().position(|e| e.id == id)?;
        let rect = entries.swap_remove(pos).rect;
        self.len -= 1;
        self.condense(leaf);
        Some(rect)
    }

    fn condense(&mut self, start: NodeId) {
        let min = self.config.min_entries;
        let mut orphans: Vec<LeafEntry> = Vec::new();
        let mut cur = start;
        while cur != self.root && self.node(cur).len() < min {
            let parent = self.node(cur).parent;
            // Detach from the parent and flatten the subtree into entries.
            let kids = self.node_mut(parent).children_mut(parent);
            let pos = kids.iter().position(|&c| c == cur).expect("child link");
            kids.swap_remove(pos);
            self.flatten_into(cur, &mut orphans);
            cur = parent;
        }
        self.recompute_mbr(cur);
        self.shrink_upward(cur);
        // Collapse root chains left behind by condensation.
        while !self.node(self.root).is_leaf() && self.node(self.root).len() == 1 {
            let old_root = self.root;
            let child = self.node(old_root).children(old_root)[0];
            self.node_mut(child).parent = NO_NODE;
            self.root = child;
            self.release(old_root);
        }
        if !self.node(self.root).is_leaf() && self.node(self.root).len() == 0 {
            let old_root = self.root;
            self.root = self.alloc(Node::new_leaf());
            self.release(old_root);
        }
        // Reinsert orphaned entries.
        let mut reinserted = 0u64;
        for e in orphans {
            self.insert_entry(e, &mut reinserted);
        }
    }

    fn flatten_into(&mut self, node_id: NodeId, out: &mut Vec<LeafEntry>) {
        match std::mem::replace(&mut self.node_mut(node_id).kind, NodeKind::Leaf(Vec::new())) {
            NodeKind::Leaf(entries) => out.extend(entries),
            NodeKind::Internal(children) => {
                for c in children {
                    self.flatten_into(c, out);
                }
            }
        }
        self.release(node_id);
    }

    // ------------------------------------------------------------------
    // Update (bottom-up fast path)
    // ------------------------------------------------------------------

    /// Moves an existing entry to `new_rect`, preferring the bottom-up fast
    /// paths of Lee et al. (VLDB 2003): in-place when the leaf MBR still
    /// covers the new rectangle, local leaf-MBR expansion when the parent
    /// covers it, and a full delete + reinsert otherwise.
    ///
    /// Inserts the entry fresh when `id` was not present.
    pub fn update(&mut self, id: EntryId, new_rect: Rect) -> UpdateOutcome {
        let Some(&leaf) = self.leaf_of.get(&id) else {
            self.insert(id, new_rect);
            srb_obs::counter!("index.update.reinsert").inc();
            return UpdateOutcome::Reinserted;
        };
        let leaf_rect = self.node(leaf).rect;
        if leaf_rect.contains_rect(&new_rect) {
            let entries = self.node_mut(leaf).leaf_entries_mut();
            let e = entries.iter_mut().find(|e| e.id == id).expect("leaf_of consistent");
            e.rect = new_rect;
            // Tighten cheaply (O(M)) so repeated in-place updates do not
            // degrade search performance.
            self.recompute_mbr(leaf);
            self.shrink_upward(leaf);
            srb_obs::counter!("index.update.in_place").inc();
            return UpdateOutcome::InPlace;
        }
        let parent = self.node(leaf).parent;
        if parent != NO_NODE && self.node(parent).rect.contains_rect(&new_rect) {
            let entries = self.node_mut(leaf).leaf_entries_mut();
            let e = entries.iter_mut().find(|e| e.id == id).expect("leaf_of consistent");
            e.rect = new_rect;
            self.recompute_mbr(leaf);
            srb_obs::counter!("index.update.local_expand").inc();
            return UpdateOutcome::LocalExpand;
        }
        self.remove(id).expect("entry present");
        self.insert(id, new_rect);
        srb_obs::counter!("index.update.reinsert").inc();
        UpdateOutcome::Reinserted
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The stored rectangle of `id`, if present.
    pub fn get(&self, id: EntryId) -> Option<Rect> {
        let leaf = *self.leaf_of.get(&id)?;
        self.node(leaf).leaf_entries().iter().find(|e| e.id == id).map(|e| e.rect)
    }

    /// Visits every entry whose rectangle intersects `query` (closed test).
    pub fn search(&self, query: &Rect, mut f: impl FnMut(&LeafEntry)) {
        if self.len == 0 {
            return;
        }
        // Visits accumulate locally and flush once at the end: one histogram
        // sample per search instead of an atomic per node.
        let mut visited = 0u64;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            self.visits.set(self.visits.get() + 1);
            visited += 1;
            let node = self.node(id);
            if !node.rect.intersects(query) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        if e.rect.intersects(query) {
                            f(e);
                        }
                    }
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
        srb_obs::histogram!("index.search.visits").record(visited);
    }

    /// Collects every entry intersecting `query` into a vector.
    pub fn search_vec(&self, query: &Rect) -> Vec<LeafEntry> {
        let mut out = Vec::new();
        self.search(query, |e| out.push(*e));
        out
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = LeafEntry> + '_ {
        AllEntries::new(self)
    }

    /// Incremental best-first browsing of entries by increasing
    /// `δ(q, rect)` (Hjaltason & Samet) — the traversal underlying the
    /// paper's Algorithm 2.
    pub fn nearest_iter(&self, q: Point) -> NearestIter<'_> {
        self.nearest_impl(q, BinaryHeap::new(), None)
    }

    /// [`nearest_iter`](Self::nearest_iter) reusing `scratch`'s frontier
    /// storage: the browse's binary heap is taken from (and on drop handed
    /// back to) the scratch, so steady-state kNN search performs no heap
    /// allocation after warmup.
    pub fn nearest_iter_with<'a>(
        &'a self,
        q: Point,
        scratch: &'a mut NearestScratch,
    ) -> NearestIter<'a> {
        let heap = scratch.take();
        self.nearest_impl(q, heap, Some(scratch))
    }

    fn nearest_impl<'a>(
        &'a self,
        q: Point,
        mut heap: BinaryHeap<Reverse<HeapItem>>,
        scratch: Option<&'a mut NearestScratch>,
    ) -> NearestIter<'a> {
        if self.len > 0 {
            heap.push(Reverse(HeapItem {
                dist: self.node(self.root).rect.min_dist(q),
                kind: HeapKind::Node(self.root),
            }));
        }
        NearestIter { tree: self, q, heap, scratch, visited: 0 }
    }

    /// Number of live (allocated, non-freed) nodes.
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    // ------------------------------------------------------------------
    // Invariant checking (used by tests; cheap enough to expose)
    // ------------------------------------------------------------------

    /// Exhaustively verifies structural invariants; panics on violation.
    /// Intended for tests and debugging.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        self.check_node(self.root, None);
        for (&id, &leaf) in &self.leaf_of {
            let node = self.node(leaf);
            assert!(node.is_leaf(), "leaf_of[{id}] points at internal node");
            assert!(
                node.leaf_entries().iter().any(|e| e.id == id),
                "leaf_of[{id}] points at a leaf missing the entry"
            );
            seen += 1;
        }
        assert_eq!(seen, self.len, "len does not match leaf_of size");
        assert_eq!(self.node(self.root).parent, NO_NODE, "root has a parent");
    }

    fn check_node(&self, id: NodeId, expected_parent: Option<NodeId>) {
        let node = self.node(id);
        if let Some(p) = expected_parent {
            assert_eq!(node.parent, p, "bad parent link at node {id}");
            let within = self.node(p).rect.contains_rect(&node.rect);
            assert!(within, "child MBR escapes parent at node {id}");
            assert_eq!(node.level + 1, self.node(p).level, "bad level at node {id}");
        }
        match &node.kind {
            NodeKind::Leaf(entries) => {
                assert_eq!(node.level, 0, "leaf at non-zero level");
                for e in entries {
                    assert!(node.rect.contains_rect(&e.rect), "entry escapes leaf MBR");
                    assert_eq!(self.leaf_of.get(&e.id), Some(&id), "stale leaf_of for {}", e.id);
                }
                if id != self.root && !self.relaxed_min {
                    assert!(entries.len() >= self.config.min_entries, "leaf underflow");
                }
                if id != self.root {
                    assert!(!entries.is_empty(), "empty non-root leaf");
                }
                assert!(entries.len() <= self.config.max_entries, "leaf overflow");
            }
            NodeKind::Internal(children) => {
                assert!(!children.is_empty(), "empty internal node");
                if id != self.root && !self.relaxed_min {
                    assert!(children.len() >= self.config.min_entries, "node underflow");
                }
                assert!(children.len() <= self.config.max_entries, "node overflow");
                for &c in children {
                    self.check_node(c, Some(id));
                }
            }
        }
    }

    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        root: NodeId,
        len: usize,
        leaf_of: FastMap<EntryId, NodeId>,
        config: TreeConfig,
    ) -> Self {
        RStarTree {
            nodes,
            free: Vec::new(),
            root,
            len,
            leaf_of,
            config,
            visits: Cell::new(0),
            relaxed_min: true,
        }
    }
}

struct AllEntries<'a> {
    tree: &'a RStarTree,
    stack: Vec<NodeId>,
    buf: Vec<LeafEntry>,
}

impl<'a> AllEntries<'a> {
    fn new(tree: &'a RStarTree) -> Self {
        let stack = if tree.len > 0 { vec![tree.root] } else { Vec::new() };
        AllEntries { tree, stack, buf: Vec::new() }
    }
}

impl Iterator for AllEntries<'_> {
    type Item = LeafEntry;

    fn next(&mut self) -> Option<LeafEntry> {
        loop {
            if let Some(e) = self.buf.pop() {
                return Some(e);
            }
            let id = self.stack.pop()?;
            match &self.tree.node(id).kind {
                NodeKind::Leaf(entries) => self.buf.extend_from_slice(entries),
                NodeKind::Internal(children) => self.stack.extend_from_slice(children),
            }
        }
    }
}

/// Iterator of [`RStarTree::nearest_iter`]: yields entries in
/// non-decreasing `δ(q, rect)` order.
pub struct NearestIter<'a> {
    tree: &'a RStarTree,
    q: Point,
    heap: BinaryHeap<Reverse<HeapItem>>,
    /// When the browse was started with a [`NearestScratch`], the heap's
    /// buffer is handed back to it on drop.
    scratch: Option<&'a mut NearestScratch>,
    /// Node pops this browse performed; published as one histogram sample
    /// when the iterator is dropped.
    visited: u64,
}

impl Drop for NearestIter<'_> {
    fn drop(&mut self) {
        if self.visited > 0 {
            srb_obs::histogram!("index.nn.visits").record(self.visited);
        }
        if let Some(scratch) = self.scratch.take() {
            scratch.put(std::mem::take(&mut self.heap));
        }
    }
}

impl NearestIter<'_> {
    /// The `δ` key of the next entry/node without consuming it. Useful to
    /// interleave with externally-probed exact locations, as the paper's
    /// Algorithm 2 requires.
    pub fn peek_dist(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(item)| item.dist)
    }
}

impl NearestStream for NearestIter<'_> {
    fn peek_dist(&self) -> Option<f64> {
        NearestIter::peek_dist(self)
    }
}

impl Iterator for NearestIter<'_> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        while let Some(Reverse(item)) = self.heap.pop() {
            match item.kind {
                HeapKind::Entry(id, rect) => {
                    return Some(Neighbor { id, rect, dist: item.dist });
                }
                HeapKind::Node(nid) => {
                    self.tree.visits.set(self.tree.visits.get() + 1);
                    self.visited += 1;
                    match &self.tree.node(nid).kind {
                        NodeKind::Leaf(entries) => {
                            for e in entries {
                                self.heap.push(Reverse(HeapItem {
                                    dist: e.rect.min_dist(self.q),
                                    kind: HeapKind::Entry(e.id, e.rect),
                                }));
                            }
                        }
                        NodeKind::Internal(children) => {
                            for &c in children {
                                self.heap.push(Reverse(HeapItem {
                                    dist: self.tree.node(c).rect.min_dist(self.q),
                                    kind: HeapKind::Node(c),
                                }));
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt_rect(x: f64, y: f64) -> Rect {
        Rect::point(Point::new(x, y))
    }

    #[test]
    fn insert_and_get() {
        let mut t = RStarTree::default();
        t.insert(1, pt_rect(0.1, 0.1));
        t.insert(2, pt_rect(0.9, 0.9));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1), Some(pt_rect(0.1, 0.1)));
        assert_eq!(t.get(3), None);
        t.check_invariants();
    }

    #[test]
    fn search_finds_intersecting() {
        let mut t = RStarTree::default();
        for i in 0..100u64 {
            let x = (i % 10) as f64 / 10.0;
            let y = (i / 10) as f64 / 10.0;
            t.insert(i, Rect::centered(Point::new(x, y), 0.01, 0.01));
        }
        let q = Rect::new(Point::new(0.0, 0.0), Point::new(0.35, 0.35));
        let hits = t.search_vec(&q);
        let expected: Vec<u64> = (0..100u64)
            .filter(|i| {
                let x = (i % 10) as f64 / 10.0;
                let y = (i / 10) as f64 / 10.0;
                Rect::centered(Point::new(x, y), 0.01, 0.01).intersects(&q)
            })
            .collect();
        let mut got: Vec<u64> = hits.iter().map(|e| e.id).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
        t.check_invariants();
    }

    #[test]
    fn many_inserts_keep_invariants() {
        let mut t =
            RStarTree::new(TreeConfig { max_entries: 8, min_entries: 3, reinsert_count: 2 });
        for i in 0..500u64 {
            let x = ((i * 37) % 101) as f64 / 101.0;
            let y = ((i * 61) % 97) as f64 / 97.0;
            t.insert(i, Rect::centered(Point::new(x, y), 0.002, 0.002));
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() > 1);
        t.check_invariants();
    }

    #[test]
    fn remove_everything() {
        let mut t =
            RStarTree::new(TreeConfig { max_entries: 8, min_entries: 3, reinsert_count: 2 });
        for i in 0..200u64 {
            let x = ((i * 37) % 101) as f64 / 101.0;
            let y = ((i * 61) % 97) as f64 / 97.0;
            t.insert(i, pt_rect(x, y));
        }
        for i in 0..200u64 {
            assert!(t.remove(i).is_some(), "missing {i}");
            if i % 17 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.remove(0), None);
        t.check_invariants();
    }

    #[test]
    fn nearest_iter_orders_by_min_dist() {
        let mut t = RStarTree::default();
        for i in 0..50u64 {
            let x = ((i * 37) % 101) as f64 / 101.0;
            let y = ((i * 61) % 97) as f64 / 97.0;
            t.insert(i, pt_rect(x, y));
        }
        let q = Point::new(0.5, 0.5);
        let dists: Vec<f64> = t.nearest_iter(q).map(|n| n.dist).collect();
        assert_eq!(dists.len(), 50);
        for w in dists.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "out of order: {w:?}");
        }
    }

    #[test]
    fn nearest_iter_matches_brute_force_first() {
        let mut t = RStarTree::default();
        let mut pts = Vec::new();
        for i in 0..200u64 {
            let x = ((i * 137) % 211) as f64 / 211.0;
            let y = ((i * 211) % 137) as f64 / 137.0;
            pts.push((i, Point::new(x, y)));
            t.insert(i, pt_rect(x, y));
        }
        let q = Point::new(0.31, 0.77);
        let nn = t.nearest_iter(q).next().unwrap();
        let brute =
            pts.iter().min_by(|a, b| a.1.dist(q).partial_cmp(&b.1.dist(q)).unwrap()).unwrap();
        assert_eq!(nn.id, brute.0);
    }

    #[test]
    fn update_outcomes() {
        let mut t =
            RStarTree::new(TreeConfig { max_entries: 8, min_entries: 3, reinsert_count: 2 });
        for i in 0..64u64 {
            let x = (i % 8) as f64 / 8.0;
            let y = (i / 8) as f64 / 8.0;
            t.insert(i, Rect::centered(Point::new(x, y), 0.01, 0.01));
        }
        // Tiny wiggle: stays within the leaf MBR most of the time.
        let r0 = t.get(0).unwrap();
        let out = t.update(0, Rect::centered(r0.center(), 0.009, 0.009));
        assert_ne!(out, UpdateOutcome::Reinserted);
        // Move across the space: must reinsert.
        let out = t.update(0, Rect::centered(Point::new(0.95, 0.95), 0.01, 0.01));
        assert_eq!(out, UpdateOutcome::Reinserted);
        t.check_invariants();
        // Update of a missing id inserts it.
        let out = t.update(1000, pt_rect(0.5, 0.5));
        assert_eq!(out, UpdateOutcome::Reinserted);
        assert_eq!(t.len(), 65);
        t.check_invariants();
    }

    #[test]
    fn visits_counter_moves() {
        let mut t = RStarTree::default();
        for i in 0..100u64 {
            t.insert(i, pt_rect((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0));
        }
        t.reset_visits();
        assert_eq!(t.visits(), 0);
        let _ = t.search_vec(&Rect::UNIT);
        assert!(t.visits() > 0);
    }

    #[test]
    fn iter_yields_all() {
        let mut t = RStarTree::default();
        for i in 0..123u64 {
            t.insert(i, pt_rect((i % 11) as f64 / 11.0, (i / 11) as f64 / 11.0));
        }
        let mut ids: Vec<u64> = t.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..123).collect::<Vec<_>>());
    }

    #[test]
    fn empty_tree_queries() {
        let t = RStarTree::default();
        assert!(t.search_vec(&Rect::UNIT).is_empty());
        assert!(t.nearest_iter(Point::new(0.5, 0.5)).next().is_none());
        assert_eq!(t.get(0), None);
        t.check_invariants();
    }

    #[test]
    fn config_validation_rejects_corrupting_values() {
        assert!(TreeConfig::default().try_validated().is_ok());
        assert_eq!(
            TreeConfig { max_entries: 3, ..TreeConfig::default() }.try_validated(),
            Err(ConfigError::MaxEntriesTooSmall { max_entries: 3 })
        );
        // min_entries > max_entries / 2 would make splits impossible.
        assert_eq!(
            TreeConfig { max_entries: 8, min_entries: 5, reinsert_count: 1 }.try_validated(),
            Err(ConfigError::BadMinEntries { min_entries: 5, max_entries: 8 })
        );
        assert_eq!(
            TreeConfig { max_entries: 8, min_entries: 1, reinsert_count: 1 }.try_validated(),
            Err(ConfigError::BadMinEntries { min_entries: 1, max_entries: 8 })
        );
        // Evicting too much would leave a split without two legal halves.
        assert_eq!(
            TreeConfig { max_entries: 8, min_entries: 4, reinsert_count: 2 }.try_validated(),
            Err(ConfigError::BadReinsertCount { reinsert_count: 2, limit: 1 })
        );
        assert_eq!(
            TreeConfig { max_entries: 8, min_entries: 3, reinsert_count: 0 }.try_validated(),
            Err(ConfigError::BadReinsertCount { reinsert_count: 0, limit: 3 })
        );
    }

    #[test]
    #[should_panic(expected = "invalid TreeConfig")]
    fn invalid_config_fails_loudly_at_construction() {
        let _ = RStarTree::new(TreeConfig { max_entries: 8, min_entries: 7, reinsert_count: 1 });
    }

    #[test]
    fn nearest_iter_with_reuses_scratch_capacity() {
        let mut t = RStarTree::default();
        for i in 0..200u64 {
            t.insert(i, pt_rect(((i * 37) % 101) as f64 / 101.0, ((i * 61) % 97) as f64 / 97.0));
        }
        let q = Point::new(0.4, 0.6);
        let plain: Vec<u64> = t.nearest_iter(q).map(|n| n.id).collect();
        let mut scratch = NearestScratch::new();
        let first: Vec<u64> = t.nearest_iter_with(q, &mut scratch).map(|n| n.id).collect();
        assert_eq!(plain, first);
        let cap = scratch.capacity();
        assert!(cap > 0, "finished browse must hand its buffer back");
        // An abandoned (partially consumed) browse must also hand it back.
        {
            let mut it = t.nearest_iter_with(q, &mut scratch);
            assert_eq!(it.next().map(|n| n.id), plain.first().copied());
            assert!(NearestStream::peek_dist(&it).is_some());
        }
        assert!(scratch.capacity() > 0);
        let again: Vec<u64> = t.nearest_iter_with(q, &mut scratch).map(|n| n.id).collect();
        assert_eq!(plain, again);
        assert_eq!(scratch.capacity(), cap);
    }
}
