//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The PRD baseline of the paper's evaluation rebuilds its object index from
//! exact positions at every update period; STR packing makes that honest and
//! fast instead of inserting N entries one at a time.

use crate::node::{EntryId, LeafEntry, Node, NodeId, NodeKind, NO_NODE};
use crate::{RStarTree, TreeConfig};
use srb_hash::FastMap;

/// Builds an [`RStarTree`] from `entries` using STR packing. Duplicate ids
/// must not appear. The resulting tree is fully functional (it supports
/// subsequent inserts, removals, and updates).
pub fn bulk_load(mut entries: Vec<LeafEntry>, config: TreeConfig) -> RStarTree {
    let config = config.validated();
    if entries.is_empty() {
        return RStarTree::new(config);
    }
    let cap = config.max_entries;
    let mut nodes: Vec<Node> = Vec::new();
    let mut leaf_of: FastMap<EntryId, NodeId> = FastMap::default();
    let len = entries.len();

    // --- Pack the leaf level ---------------------------------------------
    let n_leaves = len.div_ceil(cap);
    let n_slices = (n_leaves as f64).sqrt().ceil() as usize;
    let per_slice = len.div_ceil(n_slices);
    entries.sort_by(|a, b| a.rect.center().x.partial_cmp(&b.rect.center().x).unwrap());

    let mut leaf_ids: Vec<NodeId> = Vec::with_capacity(n_leaves);
    for slice in entries.chunks_mut(per_slice.max(1)) {
        slice.sort_by(|a, b| a.rect.center().y.partial_cmp(&b.rect.center().y).unwrap());
        for group in slice.chunks(cap) {
            let id = nodes.len() as NodeId;
            let rect = group.iter().skip(1).fold(group[0].rect, |acc, e| acc.union(&e.rect));
            for e in group {
                leaf_of.insert(e.id, id);
            }
            nodes.push(Node {
                rect,
                parent: NO_NODE,
                kind: NodeKind::Leaf(group.to_vec()),
                level: 0,
            });
            leaf_ids.push(id);
        }
    }

    // --- Pack upper levels -----------------------------------------------
    let mut level_ids = leaf_ids;
    let mut level: u16 = 0;
    while level_ids.len() > 1 {
        level += 1;
        let n_nodes = level_ids.len().div_ceil(cap);
        let n_slices = (n_nodes as f64).sqrt().ceil() as usize;
        let per_slice = level_ids.len().div_ceil(n_slices);
        level_ids.sort_by(|&a, &b| {
            let ca = nodes[a as usize].rect.center().x;
            let cb = nodes[b as usize].rect.center().x;
            ca.partial_cmp(&cb).unwrap()
        });
        let mut next_level: Vec<NodeId> = Vec::with_capacity(n_nodes);
        let chunks: Vec<Vec<NodeId>> = level_ids
            .chunks_mut(per_slice.max(1))
            .flat_map(|slice| {
                slice.sort_by(|&a, &b| {
                    let ca = nodes[a as usize].rect.center().y;
                    let cb = nodes[b as usize].rect.center().y;
                    ca.partial_cmp(&cb).unwrap()
                });
                slice.chunks(cap).map(|g| g.to_vec()).collect::<Vec<_>>()
            })
            .collect();
        for group in chunks {
            let id = nodes.len() as NodeId;
            let rect = group
                .iter()
                .skip(1)
                .fold(nodes[group[0] as usize].rect, |acc, &c| acc.union(&nodes[c as usize].rect));
            for &c in &group {
                nodes[c as usize].parent = id;
            }
            nodes.push(Node { rect, parent: NO_NODE, kind: NodeKind::Internal(group), level });
            next_level.push(id);
        }
        level_ids = next_level;
    }

    let root = level_ids[0];
    RStarTree::from_parts(nodes, root, len, leaf_of, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_geom::{Point, Rect};

    fn entries(n: u64) -> Vec<LeafEntry> {
        (0..n)
            .map(|i| LeafEntry {
                id: i,
                rect: Rect::point(Point::new(
                    ((i * 137) % 997) as f64 / 997.0,
                    ((i * 613) % 991) as f64 / 991.0,
                )),
            })
            .collect()
    }

    #[test]
    fn bulk_load_small() {
        let t = bulk_load(entries(10), TreeConfig::default());
        assert_eq!(t.len(), 10);
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn bulk_load_large_and_search() {
        let es = entries(5000);
        let t = bulk_load(es.clone(), TreeConfig::default());
        assert_eq!(t.len(), 5000);
        assert!(t.height() >= 2);
        t.check_invariants();
        let q = Rect::new(Point::new(0.2, 0.2), Point::new(0.4, 0.4));
        let mut got: Vec<u64> = t.search_vec(&q).iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut expected: Vec<u64> =
            es.iter().filter(|e| e.rect.intersects(&q)).map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn bulk_load_empty() {
        let t = bulk_load(Vec::new(), TreeConfig::default());
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn bulk_loaded_tree_supports_mutation() {
        let mut t = bulk_load(entries(300), TreeConfig::default());
        t.insert(10_000, Rect::point(Point::new(0.5, 0.5)));
        assert_eq!(t.len(), 301);
        assert!(t.remove(10).is_some());
        let out = t.update(20, Rect::point(Point::new(0.9, 0.9)));
        let _ = out; // any outcome is fine; invariants must hold
        t.check_invariants();
    }

    #[test]
    fn bulk_load_exact_capacity_boundaries() {
        for n in [31u64, 32, 33, 1024, 1025] {
            let t = bulk_load(entries(n), TreeConfig::default());
            assert_eq!(t.len(), n as usize);
            t.check_invariants();
        }
    }
}
