//! The pluggable object-index seam: [`SpatialBackend`] is the interface the
//! SRB framework's object index (paper Figure 3.1) is written against, so
//! the index structure under the monitoring stack can be swapped without
//! touching the query-processing layers.
//!
//! Two backends ship in this crate:
//!
//! - [`RStarTree`](crate::RStarTree) — the paper's §7.1 choice: an R\*-tree
//!   with the bottom-up update fast path of Lee et al. (VLDB 2003);
//! - [`UniformGrid`](crate::UniformGrid) — the cell-bucketed index the
//!   update-heavy moving-object literature favors (e.g. the distributed
//!   range-query systems in PAPERS.md): O(1) relocation inside a cell, at
//!   the price of scan-based search.
//!
//! Both expose identical semantics (verified by the backend-equivalence
//! proptest in `tests/prop_backend.rs`): rectangles keyed by [`EntryId`],
//! closed-interval intersection search, and incremental best-first
//! nearest-neighbor browsing through the [`NearestStream`] interface the
//! paper's Algorithm 2 consumes.

use crate::node::NodeId;
use crate::{ConfigError, GridConfig};
use crate::{EntryId, LeafEntry, Neighbor, RStarTree, TreeConfig, UpdateOutcome};
use srb_geom::{Point, Rect};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The concrete index structure a backend instance is running right now.
///
/// [`BackendConfig`] selects a *policy* (which may be adaptive);
/// `BackendKind` names the *mechanism* currently holding the entries. The
/// durable checkpoint header records it so recovery can refuse a silent
/// backend mismatch, and the adaptive controller uses it as the migration
/// state variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// An [`RStarTree`](crate::RStarTree).
    RStar,
    /// A [`UniformGrid`](crate::UniformGrid).
    Grid,
}

impl BackendKind {
    /// Short label for logs, errors, and JSON rows.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::RStar => "rstar",
            BackendKind::Grid => "grid",
        }
    }

    /// One-byte wire tag for checkpoint headers.
    pub fn tag(self) -> u8 {
        match self {
            BackendKind::RStar => 0,
            BackendKind::Grid => 1,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(BackendKind::RStar),
            1 => Some(BackendKind::Grid),
            _ => None,
        }
    }
}

/// Parameters of the adaptive backend plane: the per-kind build configs a
/// [`DynBackend`](crate::DynBackend) migrates between, and the thresholds
/// the `AdaptiveController` (srb-core) applies at batch boundaries.
///
/// The whole struct feeds the durable config fingerprint via its `Debug`
/// form, so changing any threshold invalidates old checkpoints — which is
/// required for determinism: controller decisions replay from the log, and
/// must be made under the thresholds that produced the log.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Build parameters used whenever a shard runs (or migrates to) the
    /// R\*-tree.
    pub rstar: TreeConfig,
    /// Build parameters used whenever a shard runs (or migrates to) the
    /// grid; `grid.m` is only the *initial* resolution — the controller
    /// retunes it from live density.
    pub grid: GridConfig,
    /// The kind every shard starts on.
    pub initial: BackendKind,
    /// Controller cadence: examine counters every this many batches
    /// (per coordinator, not per shard). Must be ≥ 1.
    pub decision_every: u32,
    /// A shard holding more objects than this votes for the grid (dense
    /// populations amortize cell scans; see BENCH_backend.json).
    pub dense_above: usize,
    /// A shard holding fewer objects than this votes for the tree (sparse
    /// populations make ring scans touch mostly empty cells).
    pub sparse_below: usize,
    /// Hysteresis: a shard must vote for the *same* other kind this many
    /// consecutive decisions before the controller migrates it.
    pub confirm: u32,
    /// Grid retune target: ideal resolution is chosen so the average
    /// occupied cell holds about this many objects.
    pub target_per_cell: f64,
    /// Grid retune deadband: only resize when the ideal resolution differs
    /// from the current one by more than this fraction of the current.
    pub retune_ratio: f64,
    /// Work-mix signal: when a decision window spends more than this many
    /// index visits per operation, the shard is search-bound and votes for
    /// the grid even below `dense_above`.
    pub hot_visits_per_op: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            rstar: TreeConfig::default(),
            grid: GridConfig::default(),
            initial: BackendKind::RStar,
            decision_every: 8,
            dense_above: 6000,
            sparse_below: 1500,
            confirm: 2,
            target_per_cell: 4.0,
            retune_ratio: 0.5,
            hot_visits_per_op: 64.0,
        }
    }
}

impl AdaptiveConfig {
    /// The [`BackendConfig`] that builds a backend of `kind` under this
    /// adaptive policy's per-kind parameters.
    pub fn config_for(&self, kind: BackendKind) -> BackendConfig {
        match kind {
            BackendKind::RStar => BackendConfig::RStar(self.rstar),
            BackendKind::Grid => BackendConfig::Grid(self.grid),
        }
    }
}

/// Selects and parameterizes the object-index backend.
///
/// Lives on `ServerConfig`/`SimConfig` so the whole monitoring stack — the
/// single-stack server, every shard of the sharded engine, and the
/// simulator — builds its index through one switch.
#[derive(Clone, Copy, Debug)]
pub enum BackendConfig {
    /// The R\*-tree reference backend (paper §7.1).
    RStar(TreeConfig),
    /// The uniform-grid backend (cell-bucketed safe regions).
    Grid(GridConfig),
    /// The runtime-dispatched adaptive plane: each shard holds a
    /// [`DynBackend`](crate::DynBackend) and the controller may migrate it
    /// between kinds or retune the grid resolution at batch boundaries.
    Adaptive(AdaptiveConfig),
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig::RStar(TreeConfig::default())
    }
}

impl BackendConfig {
    /// Short label for logs, benches, and JSON rows.
    pub fn label(&self) -> &'static str {
        match self {
            BackendConfig::RStar(_) => "rstar",
            BackendConfig::Grid(_) => "grid",
            BackendConfig::Adaptive(_) => "adaptive",
        }
    }

    /// Reads the backend from the `SRB_BACKEND` environment variable:
    /// `grid` selects [`UniformGrid`](crate::UniformGrid) defaults,
    /// `adaptive` the runtime-dispatched adaptive plane, `rstar` (or
    /// unset) the R\*-tree defaults. Any other value is a typed
    /// [`ConfigError::UnknownBackend`] — a typo must not silently run the
    /// wrong experiment.
    pub fn try_from_env() -> Result<Self, ConfigError> {
        match std::env::var("SRB_BACKEND") {
            Err(_) => Ok(BackendConfig::default()),
            Ok(v) if v.eq_ignore_ascii_case("grid") => {
                Ok(BackendConfig::Grid(GridConfig::default()))
            }
            Ok(v) if v.eq_ignore_ascii_case("adaptive") => {
                Ok(BackendConfig::Adaptive(AdaptiveConfig::default()))
            }
            Ok(v) if v.eq_ignore_ascii_case("rstar") || v.is_empty() => {
                Ok(BackendConfig::default())
            }
            // `ConfigError` is `Copy`, so the offending value is leaked
            // into a `'static` str. This path runs at most once per
            // process (env parsing at startup), so the leak is bounded.
            Ok(v) => Err(ConfigError::UnknownBackend { value: Box::leak(v.into_boxed_str()) }),
        }
    }

    /// Like [`try_from_env`](Self::try_from_env) but panics on an unknown
    /// value — the startup-path convenience the simulator uses.
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Structural snapshot of a backend, for logs and bench rows. The fields
/// generalize over tree- and grid-shaped indexes.
#[derive(Clone, Copy, Debug)]
pub struct BackendStats {
    /// Backend label (matches [`BackendConfig::label`]).
    pub backend: &'static str,
    /// Number of entries stored.
    pub len: usize,
    /// Structure depth: tree height, or 1 for a flat grid.
    pub depth: usize,
    /// Occupied structural units: live tree nodes, or non-empty grid cells.
    pub nodes: usize,
    /// Current value of the deterministic work-unit (visit) counter.
    pub visits: u64,
}

/// Incremental best-first nearest-neighbor browsing: entries come out in
/// non-decreasing `δ(q, rect)` order, and [`peek_dist`](Self::peek_dist)
/// exposes the next key without consuming it so callers can interleave the
/// browse with externally probed exact locations (the paper's Algorithm 2).
pub trait NearestStream: Iterator<Item = Neighbor> {
    /// The `δ` key of the next entry/structural unit, or `None` when the
    /// browse is exhausted.
    fn peek_dist(&self) -> Option<f64>;
}

/// A spatial index over `EntryId`-keyed rectangles, as the object index of
/// the SRB framework requires (paper §3.2): frequent-update support with a
/// bottom-up fast path, closed-interval rectangle search, and best-first
/// nearest-neighbor browsing.
///
/// Implementations must agree on *semantics* (same result sets for the same
/// contents); they are free to differ in enumeration order, cost profile,
/// and the [`UpdateOutcome`] fast-path classification.
pub trait SpatialBackend {
    /// The backend's best-first browse iterator (a GAT so backends can
    /// borrow internal structures without boxing).
    type Nearest<'a>: NearestStream + 'a
    where
        Self: 'a;

    /// Builds an empty backend over `space` from the matching
    /// [`BackendConfig`] variant. Panics on a mismatched variant: silently
    /// running an experiment against the wrong backend parameters would be
    /// worse than failing.
    fn build(config: &BackendConfig, space: Rect) -> Self
    where
        Self: Sized;

    /// Backend label (matches [`BackendConfig::label`]).
    fn label() -> &'static str
    where
        Self: Sized;

    /// The concrete index structure currently holding the entries. For the
    /// monomorphized backends this is a constant; for
    /// [`DynBackend`](crate::DynBackend) it changes across migrations.
    fn kind(&self) -> BackendKind;

    /// Whether a checkpoint recorded under `kind` can be decoded into this
    /// backend type. Recovery checks this *before* touching backend bytes,
    /// so a type/checkpoint mismatch yields a typed refusal instead of a
    /// codec error.
    fn accepts_kind(kind: BackendKind) -> bool
    where
        Self: Sized;

    /// Rebuilds the index in place under a new [`BackendConfig`] (a *live
    /// migration*), preserving every entry. Returns `false` when the
    /// backend cannot represent the requested config — the monomorphized
    /// backends refuse everything; only [`DynBackend`](crate::DynBackend)
    /// migrates.
    fn migrate(&mut self, config: &BackendConfig) -> bool {
        let _ = config;
        false
    }

    /// The current grid resolution `m`, when the live structure is a grid.
    /// The adaptive controller reads this to decide retunes.
    fn grid_resolution(&self) -> Option<usize> {
        None
    }

    /// Number of entries stored.
    fn len(&self) -> usize;

    /// True when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry; `id` must not already be present.
    fn insert(&mut self, id: EntryId, rect: Rect);

    /// Removes an entry, returning its stored rectangle.
    fn remove(&mut self, id: EntryId) -> Option<Rect>;

    /// Moves an existing entry to `new_rect`, preferring the backend's
    /// cheap relocation path; inserts fresh when `id` was not present.
    fn update(&mut self, id: EntryId, new_rect: Rect) -> UpdateOutcome;

    /// The stored rectangle of `id`, if present.
    fn get(&self, id: EntryId) -> Option<Rect>;

    /// Visits every entry whose rectangle intersects `query` (closed test).
    /// Enumeration order is backend-specific but deterministic.
    fn search(&self, query: &Rect, f: &mut dyn FnMut(&LeafEntry));

    /// Collects every entry intersecting `query` into a vector.
    fn search_vec(&self, query: &Rect) -> Vec<LeafEntry> {
        let mut out = Vec::new();
        self.search(query, &mut |e| out.push(*e));
        out
    }

    /// Visits every stored entry (backend-specific order) without touching
    /// the visit counter. This is the migration sweep: unlike a
    /// whole-space `search`, it also reaches entries whose rectangles lie
    /// outside the indexed space (the grid clamps those into edge cells).
    fn for_each_entry(&self, f: &mut dyn FnMut(EntryId, Rect));

    /// Starts a best-first browse from `q`, allocating a fresh frontier.
    fn nearest_iter(&self, q: Point) -> Self::Nearest<'_>;

    /// Starts a best-first browse from `q` reusing `scratch`'s frontier
    /// storage: after warmup, repeated browses perform no heap allocation.
    fn nearest_iter_with<'a>(
        &'a self,
        q: Point,
        scratch: &'a mut NearestScratch,
    ) -> Self::Nearest<'a>;

    /// The deterministic work-unit counter: structural units (tree nodes or
    /// grid cells) visited by searches and browses since the last
    /// [`reset_visits`](Self::reset_visits).
    fn visits(&self) -> u64;

    /// Resets the work-unit counter.
    fn reset_visits(&self);

    /// Exhaustively verifies structural invariants; panics on violation.
    fn check_invariants(&self);

    /// Structural snapshot for logs and bench rows.
    fn stats(&self) -> BackendStats;

    /// Serializes the backend's full structure bit-exactly for a
    /// durability checkpoint: arenas, free lists, bucket orders, and the
    /// visit counter all round-trip verbatim, so a recovered backend
    /// enumerates, allocates, and counts identically to one that never
    /// restarted.
    fn encode_state(&self, out: &mut Vec<u8>);

    /// Rebuilds a backend from [`encode_state`](Self::encode_state)
    /// bytes. Total: structural corruption yields a typed error, never a
    /// panic.
    fn decode_state(dec: &mut srb_durable::Dec<'_>) -> Result<Self, srb_durable::DurableError>
    where
        Self: Sized;
}

// ---------------------------------------------------------------------------
// Shared best-first frontier
// ---------------------------------------------------------------------------

/// One frontier element of a best-first browse: a structural unit (tree
/// node or grid cell) or a concrete entry, keyed by min-distance.
pub(crate) struct HeapItem {
    pub(crate) dist: f64,
    pub(crate) kind: HeapKind,
}

/// What a [`HeapItem`] refers to. `Node` doubles as the grid's cell index —
/// both backends fit their structural ids in a `u32`.
#[derive(Clone, Copy)]
pub(crate) enum HeapKind {
    Node(NodeId),
    Entry(EntryId, Rect),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.total_cmp(&other.dist)
    }
}

/// Reusable frontier storage for [`SpatialBackend::nearest_iter_with`]:
/// holds the best-first binary heap's buffer between browses so
/// steady-state nearest-neighbor search allocates nothing (the kNN leg of
/// the allocation-free hot path, pinned by `alloc_steady.rs`).
#[derive(Default)]
pub struct NearestScratch {
    buf: Vec<Reverse<HeapItem>>,
}

impl NearestScratch {
    /// Creates an empty scratch; capacity grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retained frontier capacity, in elements (diagnostic).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Hands the (empty, capacity-retaining) buffer to a starting browse.
    pub(crate) fn take(&mut self) -> BinaryHeap<Reverse<HeapItem>> {
        BinaryHeap::from(std::mem::take(&mut self.buf))
    }

    /// Takes the finished browse's buffer back, keeping its capacity.
    pub(crate) fn put(&mut self, heap: BinaryHeap<Reverse<HeapItem>>) {
        let mut buf = heap.into_vec();
        buf.clear();
        self.buf = buf;
    }
}

// ---------------------------------------------------------------------------
// Reference implementation: the R*-tree
// ---------------------------------------------------------------------------

impl SpatialBackend for RStarTree {
    type Nearest<'a> = crate::NearestIter<'a>;

    fn build(config: &BackendConfig, _space: Rect) -> Self {
        match config {
            BackendConfig::RStar(cfg) => RStarTree::new(*cfg),
            other => panic!("BackendConfig::{other:?} cannot build an RStarTree"),
        }
    }

    fn label() -> &'static str {
        "rstar"
    }

    fn kind(&self) -> BackendKind {
        BackendKind::RStar
    }

    fn accepts_kind(kind: BackendKind) -> bool {
        kind == BackendKind::RStar
    }

    fn len(&self) -> usize {
        RStarTree::len(self)
    }

    fn insert(&mut self, id: EntryId, rect: Rect) {
        RStarTree::insert(self, id, rect);
    }

    fn remove(&mut self, id: EntryId) -> Option<Rect> {
        RStarTree::remove(self, id)
    }

    fn update(&mut self, id: EntryId, new_rect: Rect) -> UpdateOutcome {
        RStarTree::update(self, id, new_rect)
    }

    fn get(&self, id: EntryId) -> Option<Rect> {
        RStarTree::get(self, id)
    }

    fn search(&self, query: &Rect, f: &mut dyn FnMut(&LeafEntry)) {
        RStarTree::search(self, query, |e| f(e));
    }

    fn for_each_entry(&self, f: &mut dyn FnMut(EntryId, Rect)) {
        for e in RStarTree::iter(self) {
            f(e.id, e.rect);
        }
    }

    fn nearest_iter(&self, q: Point) -> Self::Nearest<'_> {
        RStarTree::nearest_iter(self, q)
    }

    fn nearest_iter_with<'a>(
        &'a self,
        q: Point,
        scratch: &'a mut NearestScratch,
    ) -> Self::Nearest<'a> {
        RStarTree::nearest_iter_with(self, q, scratch)
    }

    fn visits(&self) -> u64 {
        RStarTree::visits(self)
    }

    fn reset_visits(&self) {
        RStarTree::reset_visits(self);
    }

    fn check_invariants(&self) {
        RStarTree::check_invariants(self);
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            backend: "rstar",
            len: self.len(),
            depth: self.height(),
            nodes: self.live_nodes(),
            visits: self.visits(),
        }
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        RStarTree::encode_state(self, out);
    }

    fn decode_state(dec: &mut srb_durable::Dec<'_>) -> Result<Self, srb_durable::DurableError> {
        RStarTree::decode_state(dec)
    }
}
