//! Bit-exact structural serialization of the index backends for the
//! durability plane's checkpoints.
//!
//! Both backends serialize their *structure* verbatim — node arenas,
//! free lists, bucket contents, even the visit counter — rather than
//! re-inserting entries on load. Re-insertion would rebuild a
//! differently-shaped tree (different splits, different enumeration
//! order, different visit counts), and the crash harness asserts the
//! recovered engine is **bit-identical** to one that never crashed:
//! every probe order and work-unit number downstream depends on the
//! exact structure.
//!
//! The only thing not serialized is the `EntryId → location` map of each
//! backend (`leaf_of` / `rects`): hash maps iterate in
//! insertion-history-dependent order, so writing them verbatim would
//! make the encoding (and therefore state digests) depend on the path
//! taken to reach a state. They are derived data and are rebuilt on
//! decode — `leaf_of` by walking the tree from the root (never by
//! scanning the arena, whose freed slots hold stale leaves), `rects`
//! from the buckets.
//!
//! Decoding is total: payloads arrive CRC-checked, but every structural
//! reference is still bounds-checked and returns
//! [`DurableError::Corrupt`] instead of panicking.

use crate::node::{Node, NodeId, NodeKind, NO_NODE};
use crate::{EntryId, GridConfig, LeafEntry, RStarTree, TreeConfig, UniformGrid};
use srb_durable::codec::{put_bool, put_f64, put_u16, put_u32, put_u64, put_u8, put_usize};
use srb_durable::{Dec, DurableError};
use srb_geom::{Point, Rect};
use srb_hash::FastMap;
use std::cell::Cell;

pub(crate) fn put_rect(out: &mut Vec<u8>, r: &Rect) {
    put_f64(out, r.min().x);
    put_f64(out, r.min().y);
    put_f64(out, r.max().x);
    put_f64(out, r.max().y);
}

pub(crate) fn dec_rect(dec: &mut Dec<'_>) -> Result<Rect, DurableError> {
    let (x0, y0) = (dec.f64()?, dec.f64()?);
    let (x1, y1) = (dec.f64()?, dec.f64()?);
    if !(x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite()) || x0 > x1 || y0 > y1
    {
        return Err(DurableError::Corrupt("malformed rect"));
    }
    Ok(Rect::new(Point::new(x0, y0), Point::new(x1, y1)))
}

fn put_leaf_entry(out: &mut Vec<u8>, e: &LeafEntry) {
    put_u64(out, e.id);
    put_rect(out, &e.rect);
}

fn dec_leaf_entry(dec: &mut Dec<'_>) -> Result<LeafEntry, DurableError> {
    let id = dec.u64()?;
    let rect = dec_rect(dec)?;
    Ok(LeafEntry { id, rect })
}

const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;

impl RStarTree {
    /// Serializes the tree structure verbatim (arena, free list, root,
    /// counters). `leaf_of` is derived and not written.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        put_usize(out, self.config.max_entries);
        put_usize(out, self.config.min_entries);
        put_usize(out, self.config.reinsert_count);
        put_u32(out, self.root);
        put_usize(out, self.len);
        put_bool(out, self.relaxed_min);
        put_u64(out, self.visits.get());
        put_usize(out, self.free.len());
        for &f in &self.free {
            put_u32(out, f);
        }
        put_usize(out, self.nodes.len());
        for node in &self.nodes {
            put_rect(out, &node.rect);
            put_u32(out, node.parent);
            put_u16(out, node.level);
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    put_u8(out, KIND_LEAF);
                    put_usize(out, entries.len());
                    for e in entries {
                        put_leaf_entry(out, e);
                    }
                }
                NodeKind::Internal(children) => {
                    put_u8(out, KIND_INTERNAL);
                    put_usize(out, children.len());
                    for &c in children {
                        put_u32(out, c);
                    }
                }
            }
        }
    }

    /// Rebuilds a tree from [`encode_state`](Self::encode_state) bytes,
    /// deriving `leaf_of` by walking the tree from the root.
    pub(crate) fn decode_state(dec: &mut Dec<'_>) -> Result<RStarTree, DurableError> {
        let config = TreeConfig {
            max_entries: dec.usize()?,
            min_entries: dec.usize()?,
            reinsert_count: dec.usize()?,
        }
        .try_validated()
        .map_err(|_| DurableError::Corrupt("invalid TreeConfig"))?;
        let root = dec.u32()?;
        let len = dec.usize()?;
        let relaxed_min = dec.bool()?;
        let visits = dec.u64()?;
        let n_free = dec.len(4)?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(dec.u32()?);
        }
        let n_nodes = dec.len(39)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let rect = dec_rect(dec)?;
            let parent = dec.u32()?;
            let level = dec.u16()?;
            let kind = match dec.u8()? {
                KIND_LEAF => {
                    let n = dec.len(40)?;
                    let mut entries = Vec::with_capacity(n);
                    for _ in 0..n {
                        entries.push(dec_leaf_entry(dec)?);
                    }
                    NodeKind::Leaf(entries)
                }
                KIND_INTERNAL => {
                    let n = dec.len(4)?;
                    let mut children = Vec::with_capacity(n);
                    for _ in 0..n {
                        children.push(dec.u32()?);
                    }
                    NodeKind::Internal(children)
                }
                _ => return Err(DurableError::Corrupt("unknown node kind")),
            };
            nodes.push(Node { rect, parent, kind, level });
        }
        if (root as usize) >= nodes.len() {
            return Err(DurableError::Corrupt("root out of bounds"));
        }
        // Derive leaf_of by walking from the root — the arena's freed
        // slots hold stale leaves that must not resurrect entries.
        let mut leaf_of: FastMap<EntryId, NodeId> = FastMap::default();
        let mut stack = vec![root];
        let mut walked = 0usize;
        while let Some(id) = stack.pop() {
            walked += 1;
            if walked > nodes.len() {
                return Err(DurableError::Corrupt("tree walk cycles"));
            }
            match &nodes[id as usize].kind {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        leaf_of.insert(e.id, id);
                    }
                }
                NodeKind::Internal(children) => {
                    for &c in children {
                        if (c as usize) >= nodes.len() || c == NO_NODE {
                            return Err(DurableError::Corrupt("child out of bounds"));
                        }
                        stack.push(c);
                    }
                }
            }
        }
        if leaf_of.len() != len {
            return Err(DurableError::Corrupt("len disagrees with reachable entries"));
        }
        Ok(RStarTree {
            nodes,
            free,
            root,
            len,
            leaf_of,
            config,
            visits: Cell::new(visits),
            relaxed_min,
        })
    }
}

impl UniformGrid {
    /// Serializes the grid verbatim — bucket contents *in bucket order*,
    /// which determines search emission order. `rects` is derived and
    /// not written.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        put_rect(out, &self.space);
        put_usize(out, self.m);
        put_u64(out, self.visits.get());
        for bucket in &self.buckets {
            put_usize(out, bucket.len());
            for e in bucket {
                put_leaf_entry(out, e);
            }
        }
    }

    /// Rebuilds a grid from [`encode_state`](Self::encode_state) bytes,
    /// deriving the `rects` map from the buckets.
    pub(crate) fn decode_state(dec: &mut Dec<'_>) -> Result<UniformGrid, DurableError> {
        let space = dec_rect(dec)?;
        let m = dec.usize()?;
        GridConfig { m }.try_validated().map_err(|_| DurableError::Corrupt("invalid grid m"))?;
        let visits = dec.u64()?;
        let mut buckets = Vec::with_capacity(m * m);
        let mut rects: FastMap<EntryId, Rect> = FastMap::default();
        for _ in 0..m * m {
            let n = dec.len(40)?;
            let mut bucket = Vec::with_capacity(n);
            for _ in 0..n {
                let e = dec_leaf_entry(dec)?;
                rects.insert(e.id, e.rect);
                bucket.push(e);
            }
            buckets.push(bucket);
        }
        Ok(UniformGrid {
            space,
            m,
            cell_w: space.width() / m as f64,
            cell_h: space.height() / m as f64,
            buckets,
            rects,
            visits: Cell::new(visits),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialBackend;

    fn pt_rect(x: f64, y: f64) -> Rect {
        Rect::point(Point::new(x, y))
    }

    fn churned_tree() -> RStarTree {
        let mut t =
            RStarTree::new(TreeConfig { max_entries: 8, min_entries: 3, reinsert_count: 2 });
        for i in 0..300u64 {
            let x = ((i * 37) % 101) as f64 / 101.0;
            let y = ((i * 61) % 97) as f64 / 97.0;
            t.insert(i, Rect::centered(Point::new(x, y), 0.004, 0.004));
        }
        // Deletions populate the free list; updates churn structure.
        for i in (0..300u64).step_by(3) {
            t.remove(i).unwrap();
        }
        for i in (1..300u64).step_by(3) {
            let x = ((i * 73) % 89) as f64 / 89.0;
            let y = ((i * 41) % 83) as f64 / 83.0;
            t.update(i, Rect::centered(Point::new(x, y), 0.004, 0.004));
        }
        let _ = t.search_vec(&Rect::UNIT);
        t
    }

    fn churned_grid() -> UniformGrid {
        let mut g = UniformGrid::new(GridConfig { m: 16 }, Rect::UNIT);
        for i in 0..200u64 {
            let x = ((i * 37) % 101) as f64 / 101.0;
            let y = ((i * 61) % 97) as f64 / 97.0;
            g.insert(i, Rect::centered(Point::new(x, y), 0.03, 0.03));
        }
        for i in (0..200u64).step_by(4) {
            g.remove(i).unwrap();
        }
        for i in (1..200u64).step_by(4) {
            g.update(i, pt_rect(((i * 7) % 13) as f64 / 13.0, ((i * 11) % 17) as f64 / 17.0));
        }
        let _ = g.search_vec(&Rect::UNIT);
        g
    }

    #[test]
    fn tree_round_trip_is_bit_identical() {
        let t = churned_tree();
        let mut bytes = Vec::new();
        t.encode_state(&mut bytes);
        let mut dec = Dec::new(&bytes);
        let t2 = RStarTree::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        // Structure re-encodes to the exact same bytes...
        let mut bytes2 = Vec::new();
        t2.encode_state(&mut bytes2);
        assert_eq!(bytes, bytes2);
        // ...and behaves identically, down to the visit counter.
        assert_eq!(t.len(), t2.len());
        assert_eq!(t.visits(), t2.visits());
        let q = Rect::new(Point::new(0.2, 0.2), Point::new(0.7, 0.7));
        let a: Vec<u64> = t.search_vec(&q).iter().map(|e| e.id).collect();
        let b: Vec<u64> = t2.search_vec(&q).iter().map(|e| e.id).collect();
        assert_eq!(a, b, "emission order must match exactly");
        let na: Vec<u64> = t.nearest_iter(Point::new(0.4, 0.6)).map(|n| n.id).collect();
        let nb: Vec<u64> = t2.nearest_iter(Point::new(0.4, 0.6)).map(|n| n.id).collect();
        assert_eq!(na, nb);
        assert_eq!(t.visits(), t2.visits());
        t2.check_invariants();
    }

    #[test]
    fn tree_free_list_survives_and_reuses_identically() {
        let t = churned_tree();
        let mut bytes = Vec::new();
        t.encode_state(&mut bytes);
        let mut t1 = t;
        let mut t2 = RStarTree::decode_state(&mut Dec::new(&bytes)).unwrap();
        // Identical inserts after the round trip must allocate the same
        // arena slots (the free list is part of the state).
        for i in 1000..1050u64 {
            let r = pt_rect(((i * 3) % 7) as f64 / 7.0, ((i * 5) % 11) as f64 / 11.0);
            t1.insert(i, r);
            t2.insert(i, r);
        }
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        t1.encode_state(&mut b1);
        t2.encode_state(&mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn grid_round_trip_is_bit_identical() {
        let g = churned_grid();
        let mut bytes = Vec::new();
        g.encode_state(&mut bytes);
        let mut dec = Dec::new(&bytes);
        let g2 = UniformGrid::decode_state(&mut dec).unwrap();
        dec.finish().unwrap();
        let mut bytes2 = Vec::new();
        g2.encode_state(&mut bytes2);
        assert_eq!(bytes, bytes2);
        assert_eq!(g.len(), g2.len());
        let q = Rect::new(Point::new(0.1, 0.1), Point::new(0.8, 0.8));
        let a: Vec<u64> = g.search_vec(&q).iter().map(|e| e.id).collect();
        let b: Vec<u64> = g2.search_vec(&q).iter().map(|e| e.id).collect();
        assert_eq!(a, b, "bucket order determines emission order");
        let na: Vec<u64> = g.nearest_iter(Point::new(0.3, 0.3)).map(|n| n.id).collect();
        let nb: Vec<u64> = g2.nearest_iter(Point::new(0.3, 0.3)).map(|n| n.id).collect();
        assert_eq!(na, nb);
        assert_eq!(g.visits(), g2.visits());
        g2.check_invariants();
    }

    #[test]
    fn decode_rejects_structural_corruption_without_panicking() {
        let t = churned_tree();
        let mut bytes = Vec::new();
        t.encode_state(&mut bytes);
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len().min(200) {
            let _ = RStarTree::decode_state(&mut Dec::new(&bytes[..cut]));
        }
        // A hostile root index is caught.
        let mut bad = bytes.clone();
        bad[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(RStarTree::decode_state(&mut Dec::new(&bad)).is_err());
    }

    #[test]
    fn backend_trait_round_trip() {
        fn round_trip<B: SpatialBackend>(b: &B) -> B {
            let mut bytes = Vec::new();
            b.encode_state(&mut bytes);
            let mut dec = Dec::new(&bytes);
            let b2 = B::decode_state(&mut dec).unwrap();
            dec.finish().unwrap();
            b2
        }
        let t = round_trip(&churned_tree());
        t.check_invariants();
        let g = round_trip(&churned_grid());
        g.check_invariants();
    }
}
