//! A minimal FxHash-style hasher for the hot `EntryId -> NodeId` map.
//!
//! The standard library's SipHash is collision-resistant but slow for small
//! integer keys; object-id lookups happen on every location update, so we use
//! the classic Fx multiply-rotate scheme (the rustc hasher) implemented
//! locally to avoid an external dependency.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style 64-bit hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// A `HashMap` keyed by small integers using [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        // Sequential keys must not all collide to the same bucket pattern.
        let hashes: Vec<u64> = (0..64u64)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), 64);
    }
}
