//! Backend-equivalence property test: under a randomized workload of
//! inserts, removals, updates, range searches, and nearest-neighbor
//! browses, the [`RStarTree`], the [`UniformGrid`], and a [`DynBackend`]
//! that *live-migrates between structures mid-stream* must all produce
//! *identical result sets* — the trait seam swaps cost profiles, never
//! semantics. All three are additionally cross-checked against a
//! brute-force oracle so an agreeing-but-wrong trio cannot slip through.

use proptest::prelude::*;
use srb_geom::{Point, Rect};
use srb_index::{
    BackendConfig, DynBackend, GridConfig, NearestStream, RStarTree, SpatialBackend, TreeConfig,
    UniformGrid,
};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, f64, f64, f64, f64),
    Remove(u64),
    Update(u64, f64, f64, f64, f64),
    Search(f64, f64, f64, f64),
    Nearest(f64, f64),
    /// Live-migrate the `DynBackend` participant: to an R\*-tree when
    /// `to_grid` is false, else to a grid with resolution `m`.
    Migrate {
        to_grid: bool,
        m: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Weighted mix via a kind band (8:8:8:8:8:3): migrations are rare enough
    // that real workload accumulates between structure swaps.
    (0u8..43, 0u64..40, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.1, 0.0f64..0.1, 2usize..24).prop_map(
        |(kind, id, x, y, hx, hy, m)| match kind {
            0..=7 => Op::Insert(id, x, y, hx, hy),
            8..=15 => Op::Remove(id),
            16..=23 => Op::Update(id, x, y, hx, hy),
            24..=31 => Op::Search(x, y, hx, hy),
            32..=39 => Op::Nearest(x, y),
            _ => Op::Migrate { to_grid: id % 2 == 0, m },
        },
    )
}

fn rect(x: f64, y: f64, hx: f64, hy: f64) -> Rect {
    Rect::centered(Point::new(x, y), hx, hy)
}

/// Sorted `(id)` result set of a range search.
fn search_ids<B: SpatialBackend>(b: &B, q: &Rect) -> Vec<u64> {
    let mut ids: Vec<u64> = b.search_vec(q).iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids
}

/// The full browse as `(dist, id)` pairs sorted by `(dist, id)` — distances
/// are a pure function of the stored rectangle, so two correct backends
/// must produce identical sorted sequences even when ties reorder.
fn nearest_pairs<B: SpatialBackend>(b: &B, q: Point) -> Vec<(f64, u64)> {
    let mut prev = f64::NEG_INFINITY;
    let mut out: Vec<(f64, u64)> = Vec::new();
    let mut it = b.nearest_iter(q);
    loop {
        let peek = it.peek_dist();
        let Some(n) = it.next() else { break };
        // The stream contract: peek is a valid lower bound, order is
        // non-decreasing.
        assert!(peek.expect("peek before a yielded entry") <= n.dist + 1e-12);
        assert!(n.dist >= prev - 1e-12, "browse out of order");
        prev = n.dist;
        out.push((n.dist, n.id));
    }
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn grid_rstar_and_migrating_dyn_agree(
        ops in prop::collection::vec(arb_op(), 1..120),
        m in 2usize..24,
        dyn_starts_grid in any::<bool>(),
    ) {
        let mut tree = RStarTree::new(TreeConfig::default());
        let mut grid = UniformGrid::new(GridConfig { m }, Rect::UNIT);
        let dyn_cfg = if dyn_starts_grid {
            BackendConfig::Grid(GridConfig { m })
        } else {
            BackendConfig::RStar(TreeConfig::default())
        };
        let mut dynb = DynBackend::build(&dyn_cfg, Rect::UNIT);
        let mut oracle: HashMap<u64, Rect> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(id, x, y, hx, hy) => {
                    if let std::collections::hash_map::Entry::Vacant(e) = oracle.entry(id) {
                        let r = rect(x, y, hx, hy);
                        tree.insert(id, r);
                        grid.insert(id, r);
                        dynb.insert(id, r);
                        e.insert(r);
                    }
                }
                Op::Remove(id) => {
                    let expected = oracle.remove(&id);
                    prop_assert_eq!(tree.remove(id), expected);
                    prop_assert_eq!(grid.remove(id), expected);
                    prop_assert_eq!(SpatialBackend::remove(&mut dynb, id), expected);
                }
                Op::Update(id, x, y, hx, hy) => {
                    let r = rect(x, y, hx, hy);
                    // Outcomes are backend-specific cost classifications;
                    // only the resulting contents must agree.
                    let _ = tree.update(id, r);
                    let _ = grid.update(id, r);
                    let _ = SpatialBackend::update(&mut dynb, id, r);
                    oracle.insert(id, r);
                }
                Op::Search(x, y, hx, hy) => {
                    let q = rect(x, y, hx, hy);
                    let got_tree = search_ids(&tree, &q);
                    let got_grid = search_ids(&grid, &q);
                    let got_dyn = search_ids(&dynb, &q);
                    let mut expected: Vec<u64> = oracle
                        .iter()
                        .filter(|(_, r)| r.intersects(&q))
                        .map(|(&id, _)| id)
                        .collect();
                    expected.sort_unstable();
                    prop_assert_eq!(&got_tree, &expected);
                    prop_assert_eq!(&got_grid, &expected);
                    prop_assert_eq!(&got_dyn, &expected);
                }
                Op::Nearest(x, y) => {
                    let q = Point::new(x, y);
                    let got_tree = nearest_pairs(&tree, q);
                    let got_grid = nearest_pairs(&grid, q);
                    let got_dyn = nearest_pairs(&dynb, q);
                    prop_assert_eq!(got_tree.len(), oracle.len());
                    prop_assert_eq!(got_grid.len(), oracle.len());
                    prop_assert_eq!(got_dyn.len(), oracle.len());
                    for ((dt, it), (dg, ig)) in got_tree.iter().zip(got_grid.iter()) {
                        prop_assert!((dt - dg).abs() < 1e-12);
                        prop_assert_eq!(it, ig);
                    }
                    for ((dt, it), (dd, id)) in got_tree.iter().zip(got_dyn.iter()) {
                        prop_assert!((dt - dd).abs() < 1e-12);
                        prop_assert_eq!(it, id);
                    }
                }
                Op::Migrate { to_grid, m } => {
                    let target = if to_grid {
                        BackendConfig::Grid(GridConfig { m })
                    } else {
                        BackendConfig::RStar(TreeConfig::default())
                    };
                    prop_assert!(dynb.migrate(&target));
                    dynb.check_invariants();
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
            prop_assert_eq!(grid.len(), oracle.len());
            prop_assert_eq!(dynb.len(), oracle.len());
            for (&id, &r) in &oracle {
                prop_assert_eq!(tree.get(id), Some(r));
                prop_assert_eq!(grid.get(id), Some(r));
                prop_assert_eq!(SpatialBackend::get(&dynb, id), Some(r));
            }
        }
        tree.check_invariants();
        grid.check_invariants();
        dynb.check_invariants();
    }
}
