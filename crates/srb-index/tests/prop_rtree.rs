//! Property-based tests: the R*-tree against a brute-force oracle under a
//! randomized workload of inserts, removals, updates, range searches, and
//! nearest-neighbor browsing.

use proptest::prelude::*;
use srb_geom::{Point, Rect};
use srb_index::{bulk_load, LeafEntry, RStarTree, TreeConfig};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, f64, f64, f64, f64),
    Remove(u64),
    Update(u64, f64, f64, f64, f64),
    Search(f64, f64, f64, f64),
    Nearest(f64, f64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let id = 0u64..40;
    let coord = 0.0f64..1.0;
    let half = 0.0f64..0.1;
    prop_oneof![
        (id.clone(), coord.clone(), coord.clone(), half.clone(), half.clone())
            .prop_map(|(i, x, y, hx, hy)| Op::Insert(i, x, y, hx, hy)),
        id.clone().prop_map(Op::Remove),
        (id, coord.clone(), coord.clone(), half.clone(), half.clone())
            .prop_map(|(i, x, y, hx, hy)| Op::Update(i, x, y, hx, hy)),
        (coord.clone(), coord.clone(), half.clone(), half)
            .prop_map(|(x, y, hx, hy)| Op::Search(x, y, hx, hy)),
        (coord.clone(), coord).prop_map(|(x, y)| Op::Nearest(x, y)),
    ]
}

fn rect(x: f64, y: f64, hx: f64, hy: f64) -> Rect {
    Rect::centered(Point::new(x, y), hx, hy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tree_matches_oracle(
        ops in prop::collection::vec(arb_op(), 1..120),
        max_entries in 4usize..16,
    ) {
        let config = TreeConfig {
            max_entries,
            min_entries: (max_entries / 3).max(2),
            reinsert_count: 1,
        };
        let mut tree = RStarTree::new(config);
        let mut oracle: HashMap<u64, Rect> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(id, x, y, hx, hy) => {
                    if let std::collections::hash_map::Entry::Vacant(e) = oracle.entry(id) {
                        let r = rect(x, y, hx, hy);
                        tree.insert(id, r);
                        e.insert(r);
                    }
                }
                Op::Remove(id) => {
                    let expected = oracle.remove(&id);
                    let got = tree.remove(id);
                    prop_assert_eq!(got, expected);
                }
                Op::Update(id, x, y, hx, hy) => {
                    let r = rect(x, y, hx, hy);
                    tree.update(id, r);
                    oracle.insert(id, r);
                }
                Op::Search(x, y, hx, hy) => {
                    let q = rect(x, y, hx, hy);
                    let mut got: Vec<u64> = tree.search_vec(&q).iter().map(|e| e.id).collect();
                    got.sort_unstable();
                    let mut expected: Vec<u64> = oracle
                        .iter()
                        .filter(|(_, r)| r.intersects(&q))
                        .map(|(&id, _)| id)
                        .collect();
                    expected.sort_unstable();
                    prop_assert_eq!(got, expected);
                }
                Op::Nearest(x, y) => {
                    let q = Point::new(x, y);
                    let got: Vec<(u64, f64)> =
                        tree.nearest_iter(q).map(|n| (n.id, n.dist)).collect();
                    prop_assert_eq!(got.len(), oracle.len());
                    // Distances must be non-decreasing and match δ(q, rect).
                    let mut prev = 0.0f64;
                    for (id, d) in &got {
                        let r = oracle[id];
                        prop_assert!((r.min_dist(q) - d).abs() < 1e-12);
                        prop_assert!(*d >= prev - 1e-12);
                        prev = *d;
                    }
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
        }
        tree.check_invariants();
        // Final full consistency: every oracle entry is retrievable.
        for (&id, &r) in &oracle {
            prop_assert_eq!(tree.get(id), Some(r));
        }
    }

    #[test]
    fn bulk_load_matches_incremental_search(
        pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..300),
        qx in 0.0f64..1.0, qy in 0.0f64..1.0, qh in 0.01f64..0.4,
    ) {
        let entries: Vec<LeafEntry> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| LeafEntry { id: i as u64, rect: Rect::point(Point::new(x, y)) })
            .collect();
        let bulk = bulk_load(entries.clone(), TreeConfig::default());
        bulk.check_invariants();
        let mut incr = RStarTree::default();
        for e in &entries {
            incr.insert(e.id, e.rect);
        }
        let q = rect(qx, qy, qh, qh);
        let mut a: Vec<u64> = bulk.search_vec(&q).iter().map(|e| e.id).collect();
        let mut b: Vec<u64> = incr.search_vec(&q).iter().map(|e| e.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn knn_via_browsing_matches_brute_force(
        pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..200),
        qx in 0.0f64..1.0, qy in 0.0f64..1.0,
        k in 1usize..10,
    ) {
        let mut tree = RStarTree::default();
        for (i, &(x, y)) in pts.iter().enumerate() {
            tree.insert(i as u64, Rect::point(Point::new(x, y)));
        }
        let q = Point::new(qx, qy);
        let got: Vec<u64> = tree.nearest_iter(q).take(k).map(|n| n.id).collect();
        let mut brute: Vec<(f64, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::new(x, y).dist(q), i as u64))
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Compare distances (ids may tie at equal distance).
        for (g, b) in got.iter().zip(brute.iter()) {
            let gd = Point::new(pts[*g as usize].0, pts[*g as usize].1).dist(q);
            prop_assert!((gd - b.0).abs() < 1e-12);
        }
    }
}
