//! Property-based tests for the Ir-lp constructions of paper §5.
//!
//! Invariants checked for every construction, on randomized inputs:
//! 1. the result contains the object location `p`;
//! 2. the result stays inside the grid cell;
//! 3. the result respects the quarantine constraint (inside the circle /
//!    ring, outside the disc / blocking rectangles);
//! 4. the result is never *worse* than an easily-constructed feasible
//!    baseline rectangle (so the optimizer cannot silently degenerate).

use proptest::prelude::*;
use srb_geom::{
    irlp_circle, irlp_circle_complement, irlp_rect_complement_batch, irlp_ring, Circle,
    OrdinaryPerimeter, Point, Rect, Ring, WeightedPerimeter,
};

const TOL: f64 = 1e-7;

fn unit_cell() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
}

prop_compose! {
    /// A cell inside the unit square together with a point inside the cell.
    fn cell_and_point()(cx in 0.05f64..0.95, cy in 0.05f64..0.95,
                        hw in 0.01f64..0.5, hh in 0.01f64..0.5,
                        fx in 0.0f64..=1.0, fy in 0.0f64..=1.0) -> (Rect, Point) {
        let cell = Rect::centered(Point::new(cx, cy), hw, hh)
            .intersection(&unit_cell()).unwrap();
        let p = Point::new(
            cell.min().x + fx * cell.width(),
            cell.min().y + fy * cell.height(),
        );
        (cell, p)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn circle_irlp_invariants(
        (cell, p) in cell_and_point(),
        r in 0.01f64..1.0,
        // circle center placed so that p is inside: offset length <= r
        frac in 0.0f64..=1.0, ang in 0.0f64..(2.0 * std::f64::consts::PI),
    ) {
        let q = Point::new(p.x + frac * r * ang.cos(), p.y + frac * r * ang.sin());
        let circle = Circle::new(q, r);
        let res = irlp_circle(&circle, p, &cell, &OrdinaryPerimeter);
        let res = res.expect("p inside circle and cell: must be feasible");
        prop_assert!(res.contains_point(p));
        prop_assert!(cell.inflate(TOL).contains_rect(&res));
        let grown = Circle::new(q, r + TOL);
        prop_assert!(grown.contains_rect(&res), "{res:?} escapes {circle:?}");
    }

    #[test]
    fn circle_complement_irlp_invariants(
        (cell, p) in cell_and_point(),
        qx in -0.5f64..1.5, qy in -0.5f64..1.5,
        rfrac in 0.01f64..=1.0,
    ) {
        let q = Point::new(qx, qy);
        let d = q.dist(p);
        prop_assume!(d > 1e-6);
        let r = rfrac * d; // guarantees p outside (or on) the circle
        let circle = Circle::new(q, r);
        let res = irlp_circle_complement(&circle, p, &cell, &OrdinaryPerimeter);
        let res = res.expect("p outside circle, inside cell: must be feasible");
        prop_assert!(res.contains_point(p));
        prop_assert!(cell.inflate(TOL).contains_rect(&res));
        prop_assert!(
            res.min_dist(q) >= r - TOL,
            "{res:?} pokes into circle at {q:?} r={r} (min_dist {})",
            res.min_dist(q)
        );
    }

    #[test]
    fn ring_irlp_invariants(
        (cell, p) in cell_and_point(),
        qx in -0.5f64..1.5, qy in -0.5f64..1.5,
        inner_frac in 0.0f64..=1.0, outer_extra in 0.0f64..=1.0,
    ) {
        let q = Point::new(qx, qy);
        let d = q.dist(p);
        prop_assume!(d > 1e-6);
        let inner = inner_frac * d;
        let outer = d * (1.0 + outer_extra) + 1e-9;
        let ring = Ring::new(q, inner, outer);
        prop_assert!(ring.contains(p));
        let res = irlp_ring(&ring, p, &cell, &OrdinaryPerimeter);
        let res = res.expect("p inside ring and cell: must be feasible");
        prop_assert!(res.contains_point(p));
        prop_assert!(cell.inflate(TOL).contains_rect(&res));
        let grown = Ring::new(q, (inner - TOL).max(0.0), outer + TOL);
        prop_assert!(grown.contains_rect(&res), "{res:?} escapes {ring:?}");
    }

    #[test]
    fn batch_staircase_invariants(
        (cell, p) in cell_and_point(),
        blocks in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.005f64..0.3, 0.005f64..0.3), 0..12),
    ) {
        let blocks: Vec<Rect> = blocks
            .into_iter()
            .map(|(x, y, w, h)| Rect::new(Point::new(x, y), Point::new(x + w, y + h)))
            // Blocks strictly containing p are the infeasible case tested
            // separately; here we keep p outside or on the boundary.
            .filter(|b| !(p.x > b.min().x && p.x < b.max().x && p.y > b.min().y && p.y < b.max().y))
            .collect();
        let res = irlp_rect_complement_batch(&blocks, p, &cell, &OrdinaryPerimeter);
        prop_assert!(res.contains_point(p));
        prop_assert!(cell.inflate(TOL).contains_rect(&res));
        for b in &blocks {
            // No point of the result may lie strictly inside a block — this
            // is stronger than positive-area overlap and covers degenerate
            // (zero-width) safe regions too.
            let clipped = res.intersection(b);
            if let Some(c) = clipped {
                let interior = c.min().x > b.min().x + TOL
                    || c.max().x < b.max().x - TOL
                    || c.min().y > b.min().y + TOL
                    || c.max().y < b.max().y - TOL;
                // The intersection must lie on the block boundary: its
                // extent along some axis collapses onto a block edge.
                let on_x_edge = (c.max().x - b.min().x).abs() < TOL
                    || (c.min().x - b.max().x).abs() < TOL;
                let on_y_edge = (c.max().y - b.min().y).abs() < TOL
                    || (c.min().y - b.max().y).abs() < TOL;
                prop_assert!(
                    on_x_edge || on_y_edge || !interior,
                    "{res:?} enters block {b:?} (intersection {c:?})"
                );
            }
        }
    }

    #[test]
    fn batch_staircase_beats_single_axis_cut(
        (_, p) in cell_and_point(),
        bx in 0.0f64..0.9, by in 0.0f64..0.9,
    ) {
        // One block; the optimal single-quadrant answer is a simple slab.
        let cell = unit_cell();
        let block = Rect::new(Point::new(bx, by), Point::new(bx + 0.1, by + 0.1));
        prop_assume!(!block.contains_point(p));
        let res = irlp_rect_complement_batch(&[block], p, &cell, &OrdinaryPerimeter);
        // Baseline: the best of the four slabs that avoid the block entirely
        // and contain p.
        let mut baseline: f64 = 0.0;
        let slabs = [
            Rect::new(cell.min(), Point::new(bx, 1.0)),
            Rect::new(Point::new(bx + 0.1, 0.0), cell.max()),
            Rect::new(cell.min(), Point::new(1.0, by)),
            Rect::new(Point::new(0.0, by + 0.1), cell.max()),
        ];
        for s in slabs {
            if s.min().x <= s.max().x && s.min().y <= s.max().y && s.contains_point(p) {
                baseline = baseline.max(s.perimeter());
            }
        }
        prop_assert!(
            res.perimeter() >= baseline - TOL,
            "staircase {} < slab baseline {}", res.perimeter(), baseline
        );
    }

    #[test]
    fn weighted_objective_keeps_invariants(
        (cell, p) in cell_and_point(),
        qx in -0.2f64..1.2, qy in -0.2f64..1.2,
        rfrac in 0.01f64..=1.0,
        plx in 0.0f64..1.0, ply in 0.0f64..1.0,
        d in 0.0f64..=1.0,
    ) {
        // The weighted-perimeter objective must not break feasibility.
        let q = Point::new(qx, qy);
        let dist = q.dist(p);
        prop_assume!(dist > 1e-6);
        let r = rfrac * dist;
        let circle = Circle::new(q, r);
        let w = WeightedPerimeter::new(p, Point::new(plx, ply), d);
        let res = irlp_circle_complement(&circle, p, &cell, &w);
        let res = res.expect("feasible under any objective");
        prop_assert!(res.contains_point(p));
        prop_assert!(cell.inflate(TOL).contains_rect(&res));
        prop_assert!(res.min_dist(q) >= r - TOL);
    }

    #[test]
    fn rect_distance_bounds_hold(
        (cell, p) in cell_and_point(),
        sx in 0.0f64..=1.0, sy in 0.0f64..=1.0,
        ox in -1.0f64..2.0, oy in -1.0f64..2.0,
    ) {
        // δ(o,R) <= d(o, any point of R) <= Δ(o,R), sampled.
        let o = Point::new(ox, oy);
        let sample = Point::new(
            cell.min().x + sx * cell.width(),
            cell.min().y + sy * cell.height(),
        );
        let d = o.dist(sample);
        prop_assert!(cell.min_dist(o) <= d + 1e-12, "p sample {sample:?}");
        prop_assert!(cell.max_dist(o) >= d - 1e-12);
        // And p is inside the cell, so δ(p, cell) = 0.
        prop_assert_eq!(cell.min_dist(p), 0.0);
    }
}
