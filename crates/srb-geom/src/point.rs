//! 2-D points and basic vector arithmetic.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the 2-D plane.
///
/// Coordinates are `f64`; the framework operates on the unit square
/// `[0,1] x [0,1]` but nothing in this crate assumes that.
#[derive(Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` (the paper's `d(s, t)`).
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length when interpreting the point as a vector from the origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other` (as vectors).
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The unit vector in this direction, or `None` for the zero vector.
    #[inline]
    pub fn normalized(&self) -> Option<Point> {
        let n = self.norm();
        if n > 0.0 {
            Some(Point::new(self.x / n, self.y / n))
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(self.x + t * (other.x - self.x), self.y + t * (other.y - self.y))
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(0.25, 0.75);
        let b = Point::new(0.5, 0.1);
        assert_eq!(a.dist(b), b.dist(a));
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_sq(b), 25.0);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, 2.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Point::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point::ORIGIN.normalized().is_none());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(2.0, 3.0);
        assert_eq!(a.min(b), Point::new(1.0, 3.0));
        assert_eq!(a.max(b), Point::new(2.0, 5.0));
    }
}
