//! Ir-lp of the complement of a circle (paper §5.2.2, Proposition 5.4).
//!
//! The rectangle must contain `p`, stay inside the (enlarged) cell, and avoid
//! the open disc. Lemma 5.3: the cell corner `t` of `p`'s quadrant (relative
//! to the circle center `q`) is one corner of the Ir-lp; the opposite corner
//! `x` lies either on the quarter arc, or beyond it at the two "slab"
//! positions the paper calls ① and ②.
//!
//! **Correction** (see DESIGN.md §5): for `x` on the arc the perimeter is
//! `2(a − r·sinθ) + 2(b − r·cosθ)`, which is *minimal* at θ = π/4, not
//! maximal as Proposition 5.4 states. The optimum over the valid θ-range lies
//! at its endpoints, so this implementation evaluates both endpoints (plus
//! π/4 for fidelity — it can never win, but costs nothing) and the two slab
//! candidates, returning the best.

use super::{clip_containing, pad_range, QuadFrame, EPS};
use crate::circle::Circle;
use crate::objective::{better_of, optimize_theta, PerimeterObjective};
use crate::point::Point;
use crate::rect::Rect;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// Computes the longest-perimeter rectangle containing `p`, inside `cell`,
/// that does not overlap the open disc `circle`.
///
/// Following §5.2, the cell is first enlarged to fully contain the circle;
/// the resulting rectangle is then intersected back with the original cell.
///
/// Returns `None` when `p` is strictly inside the circle (infeasible) or
/// outside `cell`.
pub fn irlp_circle_complement<O>(
    circle: &Circle,
    p: Point,
    cell: &Rect,
    objective: &O,
) -> Option<Rect>
where
    O: PerimeterObjective + ?Sized,
{
    if !cell.contains_point(p) {
        return None;
    }
    let q = circle.center;
    let r = circle.radius;
    let d = q.dist(p);
    if d < r - EPS {
        return None; // p strictly inside the disc: infeasible
    }
    if r <= EPS {
        // Nothing to avoid.
        return Some(*cell);
    }
    // Enlarge the cell to fully contain the circle (§5.2).
    let big = cell.union(&circle.bbox());
    let frame = QuadFrame::toward(q, p);
    let local_p = frame.to_local(p);
    let (dx, dy) = (local_p.x, local_p.y);
    // Extents of the enlarged cell in the p-quadrant (a, b) and the opposite
    // directions (mx, my). q is inside `big` because big contains the circle
    // bbox, so all four are non-negative.
    let bl = frame.to_local(big.min());
    let bm = frame.to_local(big.max());
    let a = bl.x.max(bm.x);
    let b = bl.y.max(bm.y);
    let mx = -bl.x.min(bm.x);
    let my = -bl.y.min(bm.y);
    debug_assert!(a >= -EPS && b >= -EPS && mx >= -EPS && my >= -EPS);

    // Valid θ range for the arc candidate: x = (r·sinθ, r·cosθ) with the
    // rectangle [x, t]; containment of p needs r·cosθ <= dy (θ >= θ_lo) and
    // r·sinθ <= dx (θ <= θ_hi).
    let theta_lo = if dy >= r { 0.0 } else { (dy.max(0.0) / r).acos() };
    let theta_hi = if dx >= r { FRAC_PI_2 } else { (dx.max(0.0) / r).asin() };
    let mut best: Option<Rect> = None;
    if theta_lo <= theta_hi + 1e-9 {
        let (lo, hi) = (theta_lo.min(theta_hi), theta_hi.max(theta_lo));
        // Both θ-range endpoints put a rectangle edge through p; pad them
        // so p keeps positive clearance (unless the endpoint is the natural
        // 0 / π/2 limit, where the constraint is the circle, not p).
        let (lo, hi) = pad_range(lo, hi, theta_lo > 0.0, theta_hi < FRAC_PI_2);
        let rect_of = |theta: f64| {
            let u1 = (r * theta.sin()).min(a);
            let v1 = (r * theta.cos()).min(b);
            clip_containing(frame.rect_to_world(u1, a, v1, b), cell, p)
        };
        best = optimize_theta(lo, hi, FRAC_PI_4, objective, rect_of);
    }
    // Slab candidate ①: p beyond the circle top (dy >= r) — full-width
    // rectangle above the circle: [-mx, a] x [r, b].
    if dy >= r - EPS && b >= r {
        let cand = clip_containing(frame.rect_to_world(-mx, a, r.min(b), b), cell, p);
        best = better_of(best, cand, objective);
    }
    // Slab candidate ②: p beyond the circle side (dx >= r) — full-height
    // rectangle beside the circle: [r, a] x [-my, b].
    if dx >= r - EPS && a >= r {
        let cand = clip_containing(frame.rect_to_world(r.min(a), a, -my, b), cell, p);
        best = better_of(best, cand, objective);
    }
    // If the circle does not even reach the original cell, the whole cell is
    // feasible and dominates everything above.
    if !circle.overlaps_rect(cell) {
        best = better_of(best, Some(*cell), objective);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::OrdinaryPerimeter;

    fn unit_cell() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    fn assert_valid(res: &Rect, circle: &Circle, p: Point, cell: &Rect) {
        assert!(res.contains_point(p), "must contain p: {res:?} {p:?}");
        assert!(cell.contains_rect(res), "must be within cell: {res:?}");
        assert!(
            res.min_dist(circle.center) >= circle.radius - 1e-9,
            "must avoid open disc: {res:?} vs {circle:?} (min_dist {})",
            res.min_dist(circle.center)
        );
    }

    #[test]
    fn p_far_from_small_circle_gets_large_rect() {
        let c = Circle::new(Point::new(0.2, 0.2), 0.05);
        let p = Point::new(0.8, 0.8);
        let cell = unit_cell();
        let res = irlp_circle_complement(&c, p, &cell, &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &c, p, &cell);
        // A near-full-cell rectangle should be achievable (slab above or
        // beside the small circle): perimeter well above half the cell's.
        assert!(res.perimeter() > 3.0, "perimeter {}", res.perimeter());
    }

    #[test]
    fn circle_outside_cell_yields_whole_cell() {
        let c = Circle::new(Point::new(5.0, 5.0), 0.5);
        let p = Point::new(0.5, 0.5);
        let cell = unit_cell();
        let res = irlp_circle_complement(&c, p, &cell, &OrdinaryPerimeter).unwrap();
        assert_eq!(res, cell);
    }

    #[test]
    fn p_inside_circle_is_infeasible() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.3);
        assert!(irlp_circle_complement(&c, Point::new(0.5, 0.6), &unit_cell(), &OrdinaryPerimeter)
            .is_none());
    }

    #[test]
    fn p_on_circle_boundary_is_feasible() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.2);
        let p = Point::new(0.7, 0.5);
        let res = irlp_circle_complement(&c, p, &unit_cell(), &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &c, p, &unit_cell());
    }

    #[test]
    fn slab_candidates_beat_arc_when_p_past_circle() {
        // Circle centered mid-cell; p directly above, beyond the top. The
        // full-width slab above the circle should win over arc candidates.
        let c = Circle::new(Point::new(0.5, 0.4), 0.2);
        let p = Point::new(0.5, 0.8);
        let cell = unit_cell();
        let res = irlp_circle_complement(&c, p, &cell, &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &c, p, &cell);
        // Full-width slab: width 1.0, height 1.0 - 0.6 = 0.4 -> perimeter 2.8.
        assert!(res.perimeter() >= 2.8 - 1e-9, "perimeter {}", res.perimeter());
        assert!((res.width() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn query_point_outside_cell_is_handled() {
        // kNN query points can lie outside the object's cell.
        let c = Circle::new(Point::new(-0.5, 0.5), 0.6);
        let p = Point::new(0.3, 0.5);
        let cell = unit_cell();
        let res = irlp_circle_complement(&c, p, &cell, &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &c, p, &cell);
    }

    #[test]
    fn result_at_least_endpoint_candidates() {
        // Because we evaluate both θ endpoints, the result must be at least
        // as good as the paper's π/4-clamped choice on a symmetric input.
        let c = Circle::new(Point::new(0.0, 0.0), 0.5);
        let p = Point::new(0.6, 0.6);
        let cell = Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        let res = irlp_circle_complement(&c, p, &cell, &OrdinaryPerimeter).unwrap();
        // θ = π/4 arc candidate: x = (0.3536, 0.3536), t = (1, 1):
        // perimeter = 2(0.6464 + 0.6464) = 2.586. Endpoints do better.
        assert!(res.perimeter() > 2.586);
        assert_valid(&res, &c, p, &cell);
    }

    #[test]
    fn degenerate_zero_radius() {
        let c = Circle::new(Point::new(0.5, 0.5), 0.0);
        let p = Point::new(0.2, 0.2);
        let res = irlp_circle_complement(&c, p, &unit_cell(), &OrdinaryPerimeter).unwrap();
        assert_eq!(res, unit_cell());
    }
}
