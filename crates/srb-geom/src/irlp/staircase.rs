//! Safe region for a *batch* of range queries (paper §5.3, Proposition 5.6):
//! the Ir-lp of the complement of a set of rectangles.
//!
//! With `p` as the origin, the cell splits into four quadrants. In each
//! quadrant the maximal rectangles anchored at `p` that avoid every block
//! form a *staircase*: their opposite corners (`t` points) are derived from
//! the Pareto-minimal (non-dominating) corners of the blocking rectangles.
//! A greedy pass then picks one component rectangle per quadrant — starting
//! from the globally longest one and proceeding clockwise — trimming the
//! running rectangular union each time.

use crate::objective::PerimeterObjective;
use crate::point::Point;
use crate::rect::Rect;

/// Computes a maximal-perimeter rectangle containing `p`, inside `cell`,
/// that has no positive-area overlap with any rectangle in `blocks`
/// (Proposition 5.6 + the paper's greedy rectangular-union heuristic).
///
/// Blocks that merely touch `p` on their boundary are fine; if a block
/// strictly contains `p` the constraint is infeasible and the degenerate
/// rectangle `{p}` is returned.
pub fn irlp_rect_complement_batch<O>(blocks: &[Rect], p: Point, cell: &Rect, objective: &O) -> Rect
where
    O: PerimeterObjective + ?Sized,
{
    let p = cell.clamp_point(p);
    if blocks
        .iter()
        .any(|b| p.x > b.min().x && p.x < b.max().x && p.y > b.min().y && p.y < b.max().y)
    {
        return Rect::point(p);
    }
    if blocks.is_empty() {
        return *cell;
    }

    // Quadrants in clockwise order (NE, SE, SW, NW), as (sx, sy) signs.
    const QUADS: [(f64, f64); 4] = [(1.0, 1.0), (1.0, -1.0), (-1.0, -1.0), (-1.0, 1.0)];
    let mut quad_ts: [Vec<Point>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for (qi, &(sx, sy)) in QUADS.iter().enumerate() {
        quad_ts[qi] = staircase_quadrant(blocks, p, cell, sx, sy);
    }

    // Pick the starting quadrant: the one holding the component rectangle
    // with the longest plain perimeter 2(t.u + t.v).
    let start = (0..4)
        .max_by(|&i, &j| {
            let best =
                |q: usize| quad_ts[q].iter().map(|t| t.x + t.y).fold(f64::NEG_INFINITY, f64::max);
            best(i).partial_cmp(&best(j)).unwrap()
        })
        .unwrap_or(0);

    let mut union = *cell;
    for step in 0..4 {
        let qi = (start + step) % 4;
        let (sx, sy) = QUADS[qi];
        let ts = &quad_ts[qi];
        if ts.is_empty() {
            continue;
        }
        // Greedily choose the t whose trim leaves the best remaining union.
        let mut best: Option<(f64, Rect)> = None;
        for t in ts {
            let trimmed = trim(&union, p, *t, sx, sy);
            let score = if step == 0 {
                // First quadrant: the paper scores the component rectangle
                // itself, not the trimmed union.
                2.0 * (t.x + t.y)
            } else {
                objective.score(&trimmed)
            };
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, trimmed));
            }
        }
        if let Some((_, trimmed)) = best {
            union = trimmed;
        }
    }
    debug_assert!(union.contains_point(p));
    union
}

/// Trims `union` in quadrant `(sx, sy)` of `p` by the component-rectangle
/// corner `t` (in local, non-negative coordinates).
fn trim(union: &Rect, p: Point, t: Point, sx: f64, sy: f64) -> Rect {
    let mut min = union.min();
    let mut max = union.max();
    if sx > 0.0 {
        max.x = max.x.min(p.x + t.x);
    } else {
        min.x = min.x.max(p.x - t.x);
    }
    if sy > 0.0 {
        max.y = max.y.min(p.y + t.y);
    } else {
        min.y = min.y.max(p.y - t.y);
    }
    // The trim never crosses p (t >= 0), so min <= max holds as long as the
    // incoming union contained p.
    Rect::new(min.min(max), max.max(min))
}

/// Computes the `t` set (opposite corners of maximal component rectangles)
/// for one quadrant, in local coordinates `u = sx(x - p.x)`, `v = sy(y - p.y)`.
fn staircase_quadrant(blocks: &[Rect], p: Point, cell: &Rect, sx: f64, sy: f64) -> Vec<Point> {
    // Quadrant extents within the cell.
    let a = if sx > 0.0 { cell.max().x - p.x } else { p.x - cell.min().x };
    let b = if sy > 0.0 { cell.max().y - p.y } else { p.y - cell.min().y };
    let (mut a, mut b) = (a.max(0.0), b.max(0.0));

    // Binding lower-left corners (s candidates) of blocks overlapping the
    // quadrant with positive area. Blocks whose interior *straddles* one of
    // p's axes cannot be escaped by shrinking the other coordinate to zero
    // (even a degenerate rectangle would pass through them), so they cap the
    // quadrant extent outright instead of joining the staircase.
    let mut s: Vec<Point> = Vec::new();
    for bl in blocks {
        let (u1, u2) = if sx > 0.0 {
            (bl.min().x - p.x, bl.max().x - p.x)
        } else {
            (p.x - bl.max().x, p.x - bl.min().x)
        };
        let (v1, v2) = if sy > 0.0 {
            (bl.min().y - p.y, bl.max().y - p.y)
        } else {
            (p.y - bl.max().y, p.y - bl.min().y)
        };
        // Positive-area overlap with the open quadrant rectangle (0,a)x(0,b).
        if u2 <= 0.0 || v2 <= 0.0 || u1 >= a || v1 >= b || a <= 0.0 || b <= 0.0 {
            continue;
        }
        if u1 < 0.0 && v1 < 0.0 {
            // Block interior contains p — the caller filtered this case; a
            // fully-degenerate quadrant is the only safe answer.
            a = 0.0;
            b = 0.0;
        } else if u1 < 0.0 {
            b = b.min(v1); // v1 >= 0 here
        } else if v1 < 0.0 {
            a = a.min(u1);
        } else {
            s.push(Point::new(u1, v1));
        }
    }
    // Blocks beyond the caps can no longer constrain anything.
    s.retain(|pt| pt.x < a && pt.y < b);

    if s.is_empty() {
        return vec![Point::new(a, b)];
    }

    // Pareto-minimal points (Proposition 5.6's "corners that do not dominate
    // the other corners"): keep s_i iff no other point is <= it in both
    // coordinates.
    s.sort_by(|l, r| l.x.partial_cmp(&r.x).unwrap().then(l.y.partial_cmp(&r.y).unwrap()));
    let mut minimal: Vec<Point> = Vec::new();
    let mut best_v = f64::INFINITY;
    for pt in s {
        if pt.y < best_v {
            minimal.push(pt);
            best_v = pt.y;
        }
    }
    // minimal is now sorted by u ascending, v strictly descending.

    // Build the t set: t_i = (s_i.u, s_{i-1}.v) with s_0.v = B, plus the
    // final corner (A, s_last.v) from the paper's x-axis sentinel.
    let mut ts: Vec<Point> = Vec::with_capacity(minimal.len() + 1);
    let mut prev_v = b;
    for sp in &minimal {
        ts.push(Point::new(sp.x.min(a), prev_v));
        prev_v = sp.y;
    }
    ts.push(Point::new(a, prev_v.min(b)));
    // Drop dominated ts (can arise from clamping) and exact duplicates.
    ts.retain(|t| t.x >= 0.0 && t.y >= 0.0);
    let mut keep: Vec<Point> = Vec::with_capacity(ts.len());
    for (i, t) in ts.iter().enumerate() {
        let dominated = ts
            .iter()
            .enumerate()
            .any(|(j, o)| j != i && o.x >= t.x && o.y >= t.y && (o.x > t.x || o.y > t.y || j < i));
        if !dominated {
            keep.push(*t);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::OrdinaryPerimeter;

    fn unit_cell() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    fn r(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect::new(Point::new(x1, y1), Point::new(x2, y2))
    }

    fn assert_valid(res: &Rect, blocks: &[Rect], p: Point, cell: &Rect) {
        assert!(res.contains_point(p), "{res:?} must contain {p:?}");
        assert!(cell.contains_rect(res), "{res:?} must be inside {cell:?}");
        for b in blocks {
            assert!(!res.overlaps(b), "{res:?} overlaps block {b:?}");
        }
    }

    #[test]
    fn no_blocks_returns_cell() {
        let p = Point::new(0.5, 0.5);
        let res = irlp_rect_complement_batch(&[], p, &unit_cell(), &OrdinaryPerimeter);
        assert_eq!(res, unit_cell());
    }

    #[test]
    fn single_block_far_corner() {
        let blocks = [r(0.8, 0.8, 0.9, 0.9)];
        let p = Point::new(0.2, 0.2);
        let res = irlp_rect_complement_batch(&blocks, p, &unit_cell(), &OrdinaryPerimeter);
        assert_valid(&res, &blocks, p, &unit_cell());
        // Best is to trim one axis at 0.8: perimeter 2(0.8 + 1.0) = 3.6.
        assert!((res.perimeter() - 3.6).abs() < 1e-9, "perimeter {}", res.perimeter());
    }

    #[test]
    fn block_containing_p_degenerates() {
        let blocks = [r(0.4, 0.4, 0.6, 0.6)];
        let p = Point::new(0.5, 0.5);
        let res = irlp_rect_complement_batch(&blocks, p, &unit_cell(), &OrdinaryPerimeter);
        assert_eq!(res, Rect::point(p));
    }

    #[test]
    fn p_on_block_boundary_is_fine() {
        let blocks = [r(0.5, 0.4, 0.7, 0.6)];
        let p = Point::new(0.5, 0.5); // on the block's left edge
        let res = irlp_rect_complement_batch(&blocks, p, &unit_cell(), &OrdinaryPerimeter);
        assert_valid(&res, &blocks, p, &unit_cell());
        // The whole left half is available.
        assert!(res.width() >= 0.5 - 1e-9);
    }

    #[test]
    fn two_blocks_staircase() {
        // Mirrors Figure 5.5: two query rectangles in the NE quadrant.
        let blocks = [r(0.5, 0.6, 0.7, 0.8), r(0.7, 0.3, 0.9, 0.5)];
        let p = Point::new(0.2, 0.2);
        let res = irlp_rect_complement_batch(&blocks, p, &unit_cell(), &OrdinaryPerimeter);
        assert_valid(&res, &blocks, p, &unit_cell());
        // Candidate unions: x<=0.5 full height (perim 3.0), x<=0.7,y<=0.6
        // (perim 2.6), full width y<=0.3 (perim 2.6). Best 3.0.
        assert!((res.perimeter() - 3.0).abs() < 1e-9, "perimeter {}", res.perimeter());
    }

    #[test]
    fn blocks_in_all_quadrants() {
        let blocks = [
            r(0.7, 0.7, 0.8, 0.8),
            r(0.7, 0.1, 0.8, 0.2),
            r(0.1, 0.1, 0.2, 0.2),
            r(0.1, 0.7, 0.2, 0.8),
        ];
        let p = Point::new(0.5, 0.5);
        let res = irlp_rect_complement_batch(&blocks, p, &unit_cell(), &OrdinaryPerimeter);
        assert_valid(&res, &blocks, p, &unit_cell());
        // The middle band x in [0.2, 0.7] x [0, 1] is block-free: the greedy
        // union should find at least that much perimeter.
        assert!(res.perimeter() >= 2.0 * (0.5 + 1.0) - 1e-9, "perimeter {}", res.perimeter());
    }

    #[test]
    fn block_covering_whole_cell_side() {
        let blocks = [r(0.6, 0.0, 0.8, 1.0)];
        let p = Point::new(0.3, 0.5);
        let res = irlp_rect_complement_batch(&blocks, p, &unit_cell(), &OrdinaryPerimeter);
        assert_valid(&res, &blocks, p, &unit_cell());
        assert!((res.max().x - 0.6).abs() < 1e-9);
        assert!((res.perimeter() - 2.0 * 1.6).abs() < 1e-9);
    }

    #[test]
    fn p_outside_cell_is_clamped() {
        let blocks = [r(0.4, 0.4, 0.6, 0.6)];
        let p = Point::new(1.5, 0.5);
        let res = irlp_rect_complement_batch(&blocks, p, &unit_cell(), &OrdinaryPerimeter);
        assert!(unit_cell().contains_rect(&res));
        assert!(res.contains_point(Point::new(1.0, 0.5)));
    }

    #[test]
    fn overlapping_blocks() {
        let blocks = [r(0.5, 0.0, 0.7, 0.6), r(0.6, 0.4, 0.9, 1.0)];
        let p = Point::new(0.2, 0.8);
        let res = irlp_rect_complement_batch(&blocks, p, &unit_cell(), &OrdinaryPerimeter);
        assert_valid(&res, &blocks, p, &unit_cell());
    }
}
