//! *Ir-lp* computations — the **I**nscribed **r**ectangle with the
//! **l**ongest **p**erimeter, the building block of safe-region computation
//! (paper §5).
//!
//! Each function answers the same question for a different constraint shape:
//! *given the shape, the object's current location `p`, and the grid cell the
//! safe region must stay inside, which axis-aligned rectangle containing `p`
//! maximizes the (possibly weighted) perimeter while respecting the shape?*
//!
//! | function | shape | paper |
//! |---|---|---|
//! | [`irlp_circle`] | inside a circle | Prop 5.2 |
//! | [`irlp_circle_complement`] | outside a circle | Prop 5.4 (corrected — see DESIGN.md §5) |
//! | [`irlp_ring`] | inside a ring | Prop 5.5 (+ corner-contact fallback) |
//! | [`irlp_rect_complement_batch`] | outside a set of rectangles | Prop 5.6 + greedy union |
//!
//! All results are intersected with `cell` and are guaranteed to contain `p`
//! whenever a result is returned at all.

mod circle;
mod complement;
mod ring;
mod staircase;

pub use circle::irlp_circle;
pub use complement::irlp_circle_complement;
pub use ring::irlp_ring;
pub use staircase::irlp_rect_complement_batch;

use crate::point::Point;
use crate::rect::Rect;

/// Tolerance used for boundary classifications inside the Ir-lp routines.
pub(crate) const EPS: f64 = 1e-12;

/// Interior padding applied to θ-ranges whose endpoints are *p-binding*
/// (the rectangle edge would pass exactly through `p`). Perimeter
/// maximization drives the optimum onto those constraints, which would put
/// every object exactly on its safe-region boundary — an object moving
/// toward that edge would have to update instantly and continuously.
/// Backing off by a 1e-3 fraction of the range costs a negligible amount of
/// perimeter and guarantees positive clearance, bounding the update rate.
pub(crate) const RANGE_PAD: f64 = 1e-3;

/// Pads a θ-range inward at the p-binding ends; falls back to the original
/// range when it would invert.
pub(crate) fn pad_range(lo: f64, hi: f64, pad_lo: bool, pad_hi: bool) -> (f64, f64) {
    let pad = RANGE_PAD * (hi - lo);
    let lo2 = if pad_lo { lo + pad } else { lo };
    let hi2 = if pad_hi { hi - pad } else { hi };
    if lo2 <= hi2 {
        (lo2, hi2)
    } else {
        (lo, hi)
    }
}

/// A local frame that maps the quadrant of `p` relative to `origin` onto the
/// first quadrant (`u, v >= 0`), so each Ir-lp derivation can assume the
/// paper's "without loss of generality" normalization.
#[derive(Clone, Copy, Debug)]
pub(crate) struct QuadFrame {
    origin: Point,
    sx: f64,
    sy: f64,
}

impl QuadFrame {
    /// Frame whose positive quadrant contains `p` (ties broken toward `+`).
    pub fn toward(origin: Point, p: Point) -> Self {
        QuadFrame {
            origin,
            sx: if p.x >= origin.x { 1.0 } else { -1.0 },
            sy: if p.y >= origin.y { 1.0 } else { -1.0 },
        }
    }

    /// Local coordinates of a world point.
    #[inline]
    pub fn to_local(self, p: Point) -> Point {
        Point::new(self.sx * (p.x - self.origin.x), self.sy * (p.y - self.origin.y))
    }

    /// Converts a local-coordinate rectangle `[u1,u2] x [v1,v2]` back to a
    /// world rectangle.
    #[inline]
    pub fn rect_to_world(&self, u1: f64, u2: f64, v1: f64, v2: f64) -> Rect {
        debug_assert!(u1 <= u2 && v1 <= v2);
        let (x1, x2) = if self.sx > 0.0 {
            (self.origin.x + u1, self.origin.x + u2)
        } else {
            (self.origin.x - u2, self.origin.x - u1)
        };
        let (y1, y2) = if self.sy > 0.0 {
            (self.origin.y + v1, self.origin.y + v2)
        } else {
            (self.origin.y - v2, self.origin.y - v1)
        };
        Rect::new(Point::new(x1, y1), Point::new(x2, y2))
    }
}

/// Clips `rect` to `cell` and keeps it only if it still contains `p`
/// (within a 1e-9 tolerance, after which the rectangle is snapped to contain
/// `p` exactly — candidate corners computed from trig identities can miss
/// `p`'s own coordinate by an ulp).
#[inline]
pub(crate) fn clip_containing(rect: Rect, cell: &Rect, p: Point) -> Option<Rect> {
    const TOL: f64 = 1e-9;
    let r = rect.intersection(cell)?;
    if p.x >= r.min().x - TOL
        && p.x <= r.max().x + TOL
        && p.y >= r.min().y - TOL
        && p.y <= r.max().y + TOL
    {
        Some(r.union_point(p))
    } else {
        None
    }
}

#[cfg(test)]
mod frame_tests {
    use super::*;

    #[test]
    fn frame_maps_p_to_first_quadrant() {
        let q = Point::new(0.5, 0.5);
        for p in
            [Point::new(0.7, 0.9), Point::new(0.2, 0.9), Point::new(0.2, 0.1), Point::new(0.7, 0.1)]
        {
            let f = QuadFrame::toward(q, p);
            let l = f.to_local(p);
            assert!(l.x >= 0.0 && l.y >= 0.0, "{p:?} -> {l:?}");
        }
    }

    #[test]
    fn rect_round_trip() {
        let q = Point::new(0.5, 0.5);
        let p = Point::new(0.2, 0.1); // third quadrant
        let f = QuadFrame::toward(q, p);
        let world = f.rect_to_world(0.1, 0.3, 0.2, 0.4);
        // u in [0.1, 0.3] with sx = -1 -> x in [0.5-0.3, 0.5-0.1] = [0.2, 0.4]
        assert!((world.min().x - 0.2).abs() < 1e-12);
        assert!((world.max().x - 0.4).abs() < 1e-12);
        // v in [0.2, 0.4] with sy = -1 -> y in [0.1, 0.3]
        assert!((world.min().y - 0.1).abs() < 1e-12);
        assert!((world.max().y - 0.3).abs() < 1e-12);
    }

    #[test]
    fn clip_containing_rejects_when_p_clipped_away() {
        let cell = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let rect = Rect::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        // p inside rect but outside cell -> after clipping p is gone
        assert!(clip_containing(rect, &cell, Point::new(1.5, 1.5)).is_none());
        // p inside both -> kept
        assert!(clip_containing(rect, &cell, Point::new(0.7, 0.7)).is_some());
    }
}
