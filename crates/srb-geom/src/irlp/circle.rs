//! Ir-lp of a circle (paper §5.2.1, Proposition 5.2).

use super::{clip_containing, pad_range, QuadFrame, EPS};
use crate::circle::Circle;
use crate::objective::{optimize_theta, PerimeterObjective};
use crate::point::Point;
use crate::rect::Rect;
use std::f64::consts::FRAC_PI_4;

/// Computes the inscribed rectangle of `circle` with the longest
/// (objective-weighted) perimeter that contains `p`, intersected with `cell`.
///
/// The rectangle is centered at the circle center with its corners on the
/// circle, parameterized by the angle `θ` between a corner radius and the
/// y-axis: half-extents `(r·sinθ, r·cosθ)`. The plain perimeter
/// `4r(sinθ + cosθ)` peaks at `θ = π/4`; containment of `p` restricts `θ` to
/// `[θx, θy]` with `θx = arcsin(|p.x−q.x|/r)` and `θy = arccos(|p.y−q.y|/r)`
/// (Proposition 5.2).
///
/// Returns `None` when `p` lies outside the (closed) circle — the constraint
/// is then infeasible — or outside `cell`.
pub fn irlp_circle<O>(circle: &Circle, p: Point, cell: &Rect, objective: &O) -> Option<Rect>
where
    O: PerimeterObjective + ?Sized,
{
    if !cell.contains_point(p) {
        return None;
    }
    let q = circle.center;
    let r = circle.radius;
    let d = q.dist(p);
    if d > r + EPS {
        return None; // p outside the circle: no inscribed rect can contain it
    }
    if r <= EPS {
        // Degenerate circle: the only feasible rectangle is the point itself.
        return clip_containing(Rect::point(p), cell, p);
    }
    let frame = QuadFrame::toward(q, p);
    let local = frame.to_local(p);
    let (dx, dy) = (local.x.min(r), local.y.min(r));
    let theta_x = (dx / r).asin();
    let theta_y = (dy / r).acos();
    if theta_x > theta_y + 1e-9 {
        return None; // numerically outside
    }
    let (lo, hi) = (theta_x.min(theta_y), theta_y.max(theta_x));
    // Both endpoints are p-binding: at θx the vertical edge passes through
    // p, at θy the horizontal one. Keep p strictly interior.
    let (lo, hi) = pad_range(lo, hi, true, true);
    let rect_of = |theta: f64| {
        let hx = r * theta.sin();
        let hy = r * theta.cos();
        clip_containing(Rect::centered(q, hx, hy), cell, p)
    };
    optimize_theta(lo, hi, FRAC_PI_4, objective, rect_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::OrdinaryPerimeter;

    const SQ2: f64 = std::f64::consts::SQRT_2;

    fn big_cell() -> Rect {
        Rect::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn center_point_yields_inscribed_square() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let r = irlp_circle(&c, Point::new(0.0, 0.0), &big_cell(), &OrdinaryPerimeter).unwrap();
        // θ = π/4: half-extents r/√2.
        assert!((r.width() - SQ2).abs() < 1e-9);
        assert!((r.height() - SQ2).abs() < 1e-9);
        assert!((r.perimeter() - 4.0 * SQ2).abs() < 1e-9);
    }

    #[test]
    fn off_center_point_still_contained() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let p = Point::new(0.9, 0.0); // near the right edge: θx = arcsin(0.9)
        let r = irlp_circle(&c, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert!(r.contains_point(p));
        assert!(c.contains_rect(&r), "result must be inscribed: {r:?}");
        // θ is forced to (just above) arcsin(0.9) > π/4, so the width is
        // 2·0.9 plus the interior-clearance pad.
        assert!(r.width() >= 1.8 - 1e-9 && r.width() < 1.81, "width {}", r.width());
        // p must have strictly positive clearance from the edges the pad
        // protects (this is what prevents update livelock).
        assert!(p.x < r.max().x - 1e-6);
    }

    #[test]
    fn point_outside_circle_is_infeasible() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(irlp_circle(&c, Point::new(1.5, 0.0), &big_cell(), &OrdinaryPerimeter).is_none());
    }

    #[test]
    fn point_on_boundary_gives_degenerate_rect() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let p = Point::new(1.0, 0.0);
        let r = irlp_circle(&c, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert!(r.contains_point(p));
        assert!(c.contains_rect(&r));
    }

    #[test]
    fn clipped_by_cell() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let cell = Rect::new(Point::new(0.0, -1.0), Point::new(1.0, 1.0));
        let p = Point::new(0.3, 0.0);
        let r = irlp_circle(&c, p, &cell, &OrdinaryPerimeter).unwrap();
        assert!(cell.contains_rect(&r));
        assert!(r.contains_point(p));
        assert!(r.min().x >= 0.0);
    }

    #[test]
    fn p_outside_cell_rejected() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let cell = Rect::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(irlp_circle(&c, Point::new(0.0, 0.0), &cell, &OrdinaryPerimeter).is_none());
    }

    #[test]
    fn zero_radius_circle() {
        let p = Point::new(0.5, 0.5);
        let c = Circle::new(p, 0.0);
        let r = irlp_circle(&c, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert_eq!(r, Rect::point(p));
    }

    #[test]
    fn result_beats_naive_axis_rect() {
        // The Ir-lp should never lose to the naive thin sliver through p.
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let p = Point::new(0.5, 0.3);
        let r = irlp_circle(&c, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert!(r.perimeter() >= 2.0 * (2.0 * 0.5));
        assert!(r.contains_point(p));
        assert!(c.contains_rect(&r));
    }
}
