//! Ir-lp of a ring (paper §5.2.3, Proposition 5.5).
//!
//! The constraint keeps an order-sensitive kNN result object between its
//! neighbors: `p` must stay at a distance in `[inner, outer]` from the query
//! point. Proposition 5.5 considers two layouts — a rectangle tangent to the
//! inner circle horizontally (I) or vertically (II), with its far corners on
//! the outer circle. Neither layout contains `p` when `p` sits near the
//! ring's diagonal with both `|Δx| < inner` and `|Δy| < inner`; for those
//! inputs this implementation adds a *corner-contact* layout (III) whose
//! inner corner slides on the inner circle (see DESIGN.md §5).

use super::{clip_containing, pad_range, QuadFrame, EPS};
use crate::circle::Ring;
use crate::objective::{better_of, optimize_theta, PerimeterObjective};
use crate::point::Point;
use crate::rect::Rect;
use std::f64::consts::FRAC_PI_4;

/// Computes the longest-perimeter rectangle containing `p`, inside `cell`,
/// whose points all lie within the ring (outside the open inner disc, inside
/// the closed outer disc).
///
/// Returns `None` when `p` lies outside the closed ring or outside `cell`.
pub fn irlp_ring<O>(ring: &Ring, p: Point, cell: &Rect, objective: &O) -> Option<Rect>
where
    O: PerimeterObjective + ?Sized,
{
    if !cell.contains_point(p) {
        return None;
    }
    let q = ring.center;
    let (r, big_r) = (ring.inner, ring.outer);
    let d = q.dist(p);
    if d < r - EPS || d > big_r + EPS {
        return None;
    }
    if big_r - r <= EPS && big_r <= EPS {
        return clip_containing(Rect::point(p), cell, p);
    }
    if r <= EPS {
        // Degenerate ring = circle.
        return super::irlp_circle(&ring.outer_circle(), p, cell, objective);
    }
    let frame = QuadFrame::toward(q, p);
    let local = frame.to_local(p);
    let (dx, dy) = (local.x.min(big_r), local.y.min(big_r));
    // Outer-corner constraint range shared by all layouts: corners at
    // (R sinθ, R cosθ) must reach past p: R sinθ >= dx and R cosθ >= dy.
    let theta_x = (dx / big_r).asin();
    let theta_y = (dy / big_r).acos();
    if theta_x > theta_y + 1e-9 {
        return None; // numerically outside the outer circle
    }
    let (t_lo, t_hi) = (theta_x.min(theta_y), theta_y.max(theta_x));
    let mut best: Option<Rect> = None;

    // Layout I: horizontal tangent side at v = r; rectangle
    // [-R sinθ, R sinθ] x [r, R cosθ]. Feasible only when p is past the
    // tangent line (dy >= r) and the far side clears it (R cosθ >= r).
    if dy >= r - EPS {
        let hi = t_hi.min((r / big_r).acos());
        if t_lo <= hi + 1e-9 {
            let (t_lo, hi) = pad_range(t_lo.min(hi), hi, true, hi < (r / big_r).acos());
            let rect_of = |theta: f64| {
                let w = big_r * theta.sin();
                let v2 = big_r * theta.cos();
                if v2 < r {
                    return None;
                }
                clip_containing(frame.rect_to_world(-w, w, r, v2), cell, p)
            };
            // Plain perimeter 4R sinθ + 2(R cosθ − r) peaks at θ = arctan 2.
            let cand = optimize_theta(t_lo, hi.max(t_lo), 2f64.atan(), objective, rect_of);
            best = better_of(best, cand, objective);
        }
    }

    // Layout II: vertical tangent side at u = r; rectangle
    // [r, R sinθ] x [-R cosθ, R cosθ]. Feasible when dx >= r.
    if dx >= r - EPS {
        let lo = t_lo.max((r / big_r).asin());
        if lo <= t_hi + 1e-9 {
            let (lo, t_hi) = pad_range(lo, lo.max(t_hi), lo > (r / big_r).asin(), true);
            let rect_of = |theta: f64| {
                let u2 = big_r * theta.sin();
                let h = big_r * theta.cos();
                if u2 < r {
                    return None;
                }
                clip_containing(frame.rect_to_world(r, u2, -h, h), cell, p)
            };
            // Plain perimeter 4R cosθ + 2(R sinθ − r) peaks at θ = arccot 2.
            let cand = optimize_theta(lo.min(t_hi), t_hi, 0.5f64.atan(), objective, rect_of);
            best = better_of(best, cand, objective);
        }
    }

    // Layout III (fallback beyond the paper): inner corner on the inner
    // circle at angle φ, outer corner on the outer circle at angle θ:
    // [r sinφ, R sinθ] x [r cosφ, R cosθ]. Containment of p requires
    // r sinφ <= dx and r cosφ <= dy.
    {
        let phi_lo = if dy >= r { 0.0 } else { (dy.max(0.0) / r).acos() };
        let phi_hi = if dx >= r { std::f64::consts::FRAC_PI_2 } else { (dx.max(0.0) / r).asin() };
        if phi_lo <= phi_hi + 1e-9 {
            // Pad the φ endpoints (inner-corner contact with p) and the
            // outer θ range below.
            let (phi_lo, phi_hi) = pad_range(phi_lo.min(phi_hi), phi_hi.max(phi_lo), true, true);
            let (t_lo, t_hi) = pad_range(t_lo, t_hi, true, true);
            let phis = [phi_lo, (phi_lo + phi_hi) * 0.5, phi_hi];
            for phi in phis {
                let (iu, iv) = (r * phi.sin(), r * phi.cos());
                let rect_of = |theta: f64| {
                    let u2 = big_r * theta.sin();
                    let v2 = big_r * theta.cos();
                    if u2 < iu - EPS || v2 < iv - EPS {
                        return None;
                    }
                    clip_containing(frame.rect_to_world(iu, u2.max(iu), iv, v2.max(iv)), cell, p)
                };
                let cand = optimize_theta(t_lo, t_hi, FRAC_PI_4, objective, rect_of);
                best = better_of(best, cand, objective);
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::OrdinaryPerimeter;

    fn big_cell() -> Rect {
        Rect::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0))
    }

    fn assert_valid(res: &Rect, ring: &Ring, p: Point, cell: &Rect) {
        assert!(res.contains_point(p), "must contain p: {res:?} {p:?}");
        assert!(cell.contains_rect(res), "must stay in cell: {res:?}");
        assert!(ring.contains_rect(res), "must stay in ring: {res:?} vs {ring:?}");
    }

    #[test]
    fn point_below_center_uses_horizontal_layout() {
        let ring = Ring::new(Point::new(0.0, 0.0), 0.5, 2.0);
        let p = Point::new(0.1, -1.2);
        let res = irlp_ring(&ring, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &ring, p, &big_cell());
        // Layout I at θ = arctan 2: perimeter 4R sinθ + 2(R cosθ − r)
        // = 4·2·(2/√5) + 2·(2/√5 − 0.5) ≈ 8.05.
        assert!(res.perimeter() > 7.5, "perimeter {}", res.perimeter());
    }

    #[test]
    fn point_right_of_center_uses_vertical_layout() {
        let ring = Ring::new(Point::new(0.0, 0.0), 0.5, 2.0);
        let p = Point::new(1.2, 0.1);
        let res = irlp_ring(&ring, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &ring, p, &big_cell());
        assert!(res.perimeter() > 7.5);
    }

    #[test]
    fn diagonal_point_needs_fallback_layout() {
        // dx, dy both < inner: the paper's two layouts cannot contain p.
        let ring = Ring::new(Point::new(0.0, 0.0), 1.0, 2.0);
        let p = Point::new(0.8, 0.8); // dist ≈ 1.13, inside the ring
        assert!(ring.contains(p));
        let res = irlp_ring(&ring, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &ring, p, &big_cell());
        assert!(res.area() > 0.0, "fallback should produce a real rect");
    }

    #[test]
    fn asymmetric_near_miss_of_both_layouts() {
        // dx just below inner, dy small: layouts I and II both infeasible,
        // corner-contact layout must still cover it.
        let ring = Ring::new(Point::new(0.0, 0.0), 1.0, 1.1);
        let p = Point::new(0.99, 0.3);
        assert!(ring.contains(p));
        let res = irlp_ring(&ring, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &ring, p, &big_cell());
    }

    #[test]
    fn degenerate_inner_zero_is_circle() {
        let ring = Ring::new(Point::new(0.0, 0.0), 0.0, 1.0);
        let p = Point::new(0.0, 0.0);
        let res = irlp_ring(&ring, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert!((res.perimeter() - 4.0 * std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn p_outside_ring_is_infeasible() {
        let ring = Ring::new(Point::new(0.0, 0.0), 1.0, 2.0);
        assert!(irlp_ring(&ring, Point::new(0.1, 0.1), &big_cell(), &OrdinaryPerimeter).is_none());
        assert!(irlp_ring(&ring, Point::new(3.0, 0.0), &big_cell(), &OrdinaryPerimeter).is_none());
    }

    #[test]
    fn cell_clipping_respected() {
        let ring = Ring::new(Point::new(0.0, 0.0), 0.5, 2.0);
        let cell = Rect::new(Point::new(0.0, -1.5), Point::new(1.5, 0.0));
        let p = Point::new(0.6, -0.6);
        let res = irlp_ring(&ring, p, &cell, &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &ring, p, &cell);
    }

    #[test]
    fn thin_ring_still_returns_something() {
        let ring = Ring::new(Point::new(0.0, 0.0), 0.999, 1.001);
        let p = Point::new(1.0, 0.0);
        let res = irlp_ring(&ring, p, &big_cell(), &OrdinaryPerimeter).unwrap();
        assert_valid(&res, &ring, p, &big_cell());
    }
}
